/root/repo/target/release/examples/quickstart-67ea857700f50208.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-67ea857700f50208: examples/quickstart.rs

examples/quickstart.rs:
