/root/repo/target/release/examples/lock_scheduling-a3b73ace386e7986.d: examples/lock_scheduling.rs

/root/repo/target/release/examples/lock_scheduling-a3b73ace386e7986: examples/lock_scheduling.rs

examples/lock_scheduling.rs:
