/root/repo/target/release/deps/tpd_storage-58cad214b49fad49.d: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

/root/repo/target/release/deps/libtpd_storage-58cad214b49fad49.rlib: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

/root/repo/target/release/deps/libtpd_storage-58cad214b49fad49.rmeta: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

crates/storage/src/lib.rs:
crates/storage/src/lru.rs:
crates/storage/src/pool.rs:
