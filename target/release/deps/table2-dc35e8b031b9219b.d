/root/repo/target/release/deps/table2-dc35e8b031b9219b.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-dc35e8b031b9219b: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
