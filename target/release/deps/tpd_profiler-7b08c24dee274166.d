/root/repo/target/release/deps/tpd_profiler-7b08c24dee274166.d: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

/root/repo/target/release/deps/libtpd_profiler-7b08c24dee274166.rlib: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

/root/repo/target/release/deps/libtpd_profiler-7b08c24dee274166.rmeta: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

crates/profiler/src/lib.rs:
crates/profiler/src/analysis.rs:
crates/profiler/src/probe.rs:
crates/profiler/src/refine.rs:
crates/profiler/src/registry.rs:
