/root/repo/target/release/deps/table3-fca5653f0b83663e.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-fca5653f0b83663e: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
