/root/repo/target/release/deps/table1-31d0dd36cfe688a9.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-31d0dd36cfe688a9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
