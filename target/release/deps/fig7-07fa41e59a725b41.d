/root/repo/target/release/deps/fig7-07fa41e59a725b41.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-07fa41e59a725b41: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
