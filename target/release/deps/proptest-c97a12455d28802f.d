/root/repo/target/release/deps/proptest-c97a12455d28802f.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c97a12455d28802f.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-c97a12455d28802f.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
