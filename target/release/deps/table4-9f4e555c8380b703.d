/root/repo/target/release/deps/table4-9f4e555c8380b703.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-9f4e555c8380b703: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
