/root/repo/target/release/deps/lock_policies-9cf5e9026cb4c353.d: crates/bench/benches/lock_policies.rs

/root/repo/target/release/deps/lock_policies-9cf5e9026cb4c353: crates/bench/benches/lock_policies.rs

crates/bench/benches/lock_policies.rs:
