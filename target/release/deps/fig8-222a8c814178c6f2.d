/root/repo/target/release/deps/fig8-222a8c814178c6f2.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-222a8c814178c6f2: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
