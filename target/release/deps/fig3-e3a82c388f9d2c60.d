/root/repo/target/release/deps/fig3-e3a82c388f9d2c60.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-e3a82c388f9d2c60: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
