/root/repo/target/release/deps/tpd_voltsim-af5418ab6f17ced5.d: crates/voltsim/src/lib.rs

/root/repo/target/release/deps/libtpd_voltsim-af5418ab6f17ced5.rlib: crates/voltsim/src/lib.rs

/root/repo/target/release/deps/libtpd_voltsim-af5418ab6f17ced5.rmeta: crates/voltsim/src/lib.rs

crates/voltsim/src/lib.rs:
