/root/repo/target/release/deps/fig5-f2a1c71abae65d8c.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f2a1c71abae65d8c: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
