/root/repo/target/release/deps/predictadb-22dbee4fff9cf524.d: src/lib.rs

/root/repo/target/release/deps/libpredictadb-22dbee4fff9cf524.rlib: src/lib.rs

/root/repo/target/release/deps/libpredictadb-22dbee4fff9cf524.rmeta: src/lib.rs

src/lib.rs:
