/root/repo/target/release/deps/tpd_workloads-dd1906948ca7718d.d: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libtpd_workloads-dd1906948ca7718d.rlib: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

/root/repo/target/release/deps/libtpd_workloads-dd1906948ca7718d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/epinions.rs:
crates/workloads/src/seats.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/tatp.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
