/root/repo/target/release/deps/fig2-f2bfee96ccd56bd2.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-f2bfee96ccd56bd2: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
