/root/repo/target/release/deps/tpd_bench-f2322d149502fb36.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/theorem1.rs crates/bench/src/harness.rs crates/bench/src/presets.rs

/root/repo/target/release/deps/libtpd_bench-f2322d149502fb36.rlib: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/theorem1.rs crates/bench/src/harness.rs crates/bench/src/presets.rs

/root/repo/target/release/deps/libtpd_bench-f2322d149502fb36.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/theorem1.rs crates/bench/src/harness.rs crates/bench/src/presets.rs

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/theorem1.rs:
crates/bench/src/harness.rs:
crates/bench/src/presets.rs:
