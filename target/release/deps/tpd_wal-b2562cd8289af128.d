/root/repo/target/release/deps/tpd_wal-b2562cd8289af128.d: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

/root/repo/target/release/deps/libtpd_wal-b2562cd8289af128.rlib: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

/root/repo/target/release/deps/libtpd_wal-b2562cd8289af128.rmeta: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

crates/wal/src/lib.rs:
crates/wal/src/mysql.rs:
crates/wal/src/pg.rs:
crates/wal/src/record.rs:
