/root/repo/target/release/deps/tpd_common-11c35ef45b0c8790.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/release/deps/libtpd_common-11c35ef45b0c8790.rlib: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/release/deps/libtpd_common-11c35ef45b0c8790.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/disk.rs:
crates/common/src/dist.rs:
crates/common/src/latency.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
