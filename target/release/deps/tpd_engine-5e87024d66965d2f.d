/root/repo/target/release/deps/tpd_engine-5e87024d66965d2f.d: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

/root/repo/target/release/deps/libtpd_engine-5e87024d66965d2f.rlib: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

/root/repo/target/release/deps/libtpd_engine-5e87024d66965d2f.rmeta: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

crates/engine/src/lib.rs:
crates/engine/src/catalog.rs:
crates/engine/src/config.rs:
crates/engine/src/engine.rs:
crates/engine/src/probes.rs:
crates/engine/src/types.rs:
