/root/repo/target/release/deps/fig6-1fa29834fb00970b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-1fa29834fb00970b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
