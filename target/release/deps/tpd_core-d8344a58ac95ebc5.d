/root/repo/target/release/deps/tpd_core-d8344a58ac95ebc5.d: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

/root/repo/target/release/deps/libtpd_core-d8344a58ac95ebc5.rlib: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

/root/repo/target/release/deps/libtpd_core-d8344a58ac95ebc5.rmeta: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/des.rs:
crates/core/src/manager.rs:
crates/core/src/mode.rs:
crates/core/src/policy.rs:
crates/core/src/types.rs:
