/root/repo/target/release/deps/repro_all-9f3c6375e9973a3e.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-9f3c6375e9973a3e: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
