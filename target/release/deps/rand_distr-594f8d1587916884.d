/root/repo/target/release/deps/rand_distr-594f8d1587916884.d: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-594f8d1587916884.rlib: vendor/rand_distr/src/lib.rs

/root/repo/target/release/deps/librand_distr-594f8d1587916884.rmeta: vendor/rand_distr/src/lib.rs

vendor/rand_distr/src/lib.rs:
