/root/repo/target/release/deps/fig4-b432d06679364d51.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-b432d06679364d51: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
