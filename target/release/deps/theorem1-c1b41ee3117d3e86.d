/root/repo/target/release/deps/theorem1-c1b41ee3117d3e86.d: crates/bench/src/bin/theorem1.rs

/root/repo/target/release/deps/theorem1-c1b41ee3117d3e86: crates/bench/src/bin/theorem1.rs

crates/bench/src/bin/theorem1.rs:
