/root/repo/target/debug/deps/fig7-8852f29704d8db43.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-8852f29704d8db43.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
