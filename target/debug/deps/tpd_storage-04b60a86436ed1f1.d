/root/repo/target/debug/deps/tpd_storage-04b60a86436ed1f1.d: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

/root/repo/target/debug/deps/libtpd_storage-04b60a86436ed1f1.rlib: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

/root/repo/target/debug/deps/libtpd_storage-04b60a86436ed1f1.rmeta: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs

crates/storage/src/lib.rs:
crates/storage/src/lru.rs:
crates/storage/src/pool.rs:
