/root/repo/target/debug/deps/variance_identity-426be683f875674c.d: crates/profiler/tests/variance_identity.rs Cargo.toml

/root/repo/target/debug/deps/libvariance_identity-426be683f875674c.rmeta: crates/profiler/tests/variance_identity.rs Cargo.toml

crates/profiler/tests/variance_identity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
