/root/repo/target/debug/deps/fig2-cd14b69d01e4559a.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-cd14b69d01e4559a.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
