/root/repo/target/debug/deps/pool_model-f4f113a6f99fd8c1.d: crates/storage/tests/pool_model.rs Cargo.toml

/root/repo/target/debug/deps/libpool_model-f4f113a6f99fd8c1.rmeta: crates/storage/tests/pool_model.rs Cargo.toml

crates/storage/tests/pool_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
