/root/repo/target/debug/deps/isolation-c6859bae95ce3bdc.d: crates/engine/tests/isolation.rs Cargo.toml

/root/repo/target/debug/deps/libisolation-c6859bae95ce3bdc.rmeta: crates/engine/tests/isolation.rs Cargo.toml

crates/engine/tests/isolation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
