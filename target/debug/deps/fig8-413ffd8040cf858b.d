/root/repo/target/debug/deps/fig8-413ffd8040cf858b.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-413ffd8040cf858b.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
