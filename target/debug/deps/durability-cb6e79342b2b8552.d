/root/repo/target/debug/deps/durability-cb6e79342b2b8552.d: crates/wal/tests/durability.rs Cargo.toml

/root/repo/target/debug/deps/libdurability-cb6e79342b2b8552.rmeta: crates/wal/tests/durability.rs Cargo.toml

crates/wal/tests/durability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
