/root/repo/target/debug/deps/fig6-86e0729f71e1c3fb.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-86e0729f71e1c3fb.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
