/root/repo/target/debug/deps/tpd_common-7d235c043721713d.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_common-7d235c043721713d.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/disk.rs:
crates/common/src/dist.rs:
crates/common/src/latency.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
