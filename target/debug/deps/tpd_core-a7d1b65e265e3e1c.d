/root/repo/target/debug/deps/tpd_core-a7d1b65e265e3e1c.d: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libtpd_core-a7d1b65e265e3e1c.rlib: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

/root/repo/target/debug/deps/libtpd_core-a7d1b65e265e3e1c.rmeta: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/des.rs:
crates/core/src/manager.rs:
crates/core/src/mode.rs:
crates/core/src/policy.rs:
crates/core/src/types.rs:
