/root/repo/target/debug/deps/recovery-a7cfab1089961da4.d: crates/engine/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-a7cfab1089961da4.rmeta: crates/engine/tests/recovery.rs Cargo.toml

crates/engine/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
