/root/repo/target/debug/deps/fig3-a3e6250cdf4d74c1.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-a3e6250cdf4d74c1.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
