/root/repo/target/debug/deps/tpd_workloads-51f20be311473088.d: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libtpd_workloads-51f20be311473088.rlib: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

/root/repo/target/debug/deps/libtpd_workloads-51f20be311473088.rmeta: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs

crates/workloads/src/lib.rs:
crates/workloads/src/epinions.rs:
crates/workloads/src/seats.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/tatp.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
