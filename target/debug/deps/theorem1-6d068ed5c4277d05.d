/root/repo/target/debug/deps/theorem1-6d068ed5c4277d05.d: crates/bench/src/bin/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-6d068ed5c4277d05.rmeta: crates/bench/src/bin/theorem1.rs Cargo.toml

crates/bench/src/bin/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
