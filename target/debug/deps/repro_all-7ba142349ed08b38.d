/root/repo/target/debug/deps/repro_all-7ba142349ed08b38.d: crates/bench/src/bin/repro_all.rs Cargo.toml

/root/repo/target/debug/deps/librepro_all-7ba142349ed08b38.rmeta: crates/bench/src/bin/repro_all.rs Cargo.toml

crates/bench/src/bin/repro_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
