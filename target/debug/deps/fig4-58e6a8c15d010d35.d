/root/repo/target/debug/deps/fig4-58e6a8c15d010d35.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-58e6a8c15d010d35.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
