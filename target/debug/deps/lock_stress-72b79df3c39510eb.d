/root/repo/target/debug/deps/lock_stress-72b79df3c39510eb.d: crates/core/tests/lock_stress.rs Cargo.toml

/root/repo/target/debug/deps/liblock_stress-72b79df3c39510eb.rmeta: crates/core/tests/lock_stress.rs Cargo.toml

crates/core/tests/lock_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
