/root/repo/target/debug/deps/tpd_core-1effd1d3bf77215f.d: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_core-1effd1d3bf77215f.rmeta: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/des.rs:
crates/core/src/manager.rs:
crates/core/src/mode.rs:
crates/core/src/policy.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
