/root/repo/target/debug/deps/predictadb-a93aff0c56ef7f8b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpredictadb-a93aff0c56ef7f8b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
