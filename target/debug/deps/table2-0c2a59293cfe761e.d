/root/repo/target/debug/deps/table2-0c2a59293cfe761e.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-0c2a59293cfe761e.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
