/root/repo/target/debug/deps/table4-95f5805b86298ab0.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-95f5805b86298ab0.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
