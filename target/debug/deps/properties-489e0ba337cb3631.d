/root/repo/target/debug/deps/properties-489e0ba337cb3631.d: crates/common/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-489e0ba337cb3631.rmeta: crates/common/tests/properties.rs Cargo.toml

crates/common/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
