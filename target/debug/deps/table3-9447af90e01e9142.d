/root/repo/target/debug/deps/table3-9447af90e01e9142.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-9447af90e01e9142.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
