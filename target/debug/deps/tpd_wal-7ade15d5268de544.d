/root/repo/target/debug/deps/tpd_wal-7ade15d5268de544.d: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_wal-7ade15d5268de544.rmeta: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs Cargo.toml

crates/wal/src/lib.rs:
crates/wal/src/mysql.rs:
crates/wal/src/pg.rs:
crates/wal/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
