/root/repo/target/debug/deps/fig3-4b6be1759e01a34c.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-4b6be1759e01a34c.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
