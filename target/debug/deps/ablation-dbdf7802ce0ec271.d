/root/repo/target/debug/deps/ablation-dbdf7802ce0ec271.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-dbdf7802ce0ec271.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
