/root/repo/target/debug/deps/fig7-31af78b983def109.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-31af78b983def109.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
