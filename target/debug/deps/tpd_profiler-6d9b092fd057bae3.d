/root/repo/target/debug/deps/tpd_profiler-6d9b092fd057bae3.d: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

/root/repo/target/debug/deps/libtpd_profiler-6d9b092fd057bae3.rlib: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

/root/repo/target/debug/deps/libtpd_profiler-6d9b092fd057bae3.rmeta: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs

crates/profiler/src/lib.rs:
crates/profiler/src/analysis.rs:
crates/profiler/src/probe.rs:
crates/profiler/src/refine.rs:
crates/profiler/src/registry.rs:
