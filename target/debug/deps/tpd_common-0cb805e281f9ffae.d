/root/repo/target/debug/deps/tpd_common-0cb805e281f9ffae.d: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/debug/deps/libtpd_common-0cb805e281f9ffae.rlib: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

/root/repo/target/debug/deps/libtpd_common-0cb805e281f9ffae.rmeta: crates/common/src/lib.rs crates/common/src/clock.rs crates/common/src/disk.rs crates/common/src/dist.rs crates/common/src/latency.rs crates/common/src/stats.rs crates/common/src/table.rs

crates/common/src/lib.rs:
crates/common/src/clock.rs:
crates/common/src/disk.rs:
crates/common/src/dist.rs:
crates/common/src/latency.rs:
crates/common/src/stats.rs:
crates/common/src/table.rs:
