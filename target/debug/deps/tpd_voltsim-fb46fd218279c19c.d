/root/repo/target/debug/deps/tpd_voltsim-fb46fd218279c19c.d: crates/voltsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_voltsim-fb46fd218279c19c.rmeta: crates/voltsim/src/lib.rs Cargo.toml

crates/voltsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
