/root/repo/target/debug/deps/proptest-87e53568e2599310.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-87e53568e2599310.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-87e53568e2599310.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
