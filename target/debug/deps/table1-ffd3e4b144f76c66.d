/root/repo/target/debug/deps/table1-ffd3e4b144f76c66.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-ffd3e4b144f76c66.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
