/root/repo/target/debug/deps/scheduling_properties-ff221abeccc05693.d: tests/scheduling_properties.rs

/root/repo/target/debug/deps/scheduling_properties-ff221abeccc05693: tests/scheduling_properties.rs

tests/scheduling_properties.rs:
