/root/repo/target/debug/deps/tpd_bench-a0494273b2fa531f.d: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/theorem1.rs crates/bench/src/harness.rs crates/bench/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_bench-a0494273b2fa531f.rmeta: crates/bench/src/lib.rs crates/bench/src/args.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/fig2.rs crates/bench/src/experiments/fig3.rs crates/bench/src/experiments/fig4.rs crates/bench/src/experiments/fig5.rs crates/bench/src/experiments/fig6.rs crates/bench/src/experiments/fig7.rs crates/bench/src/experiments/fig8.rs crates/bench/src/experiments/table1.rs crates/bench/src/experiments/table2.rs crates/bench/src/experiments/table3.rs crates/bench/src/experiments/table4.rs crates/bench/src/experiments/theorem1.rs crates/bench/src/harness.rs crates/bench/src/presets.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/args.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/fig2.rs:
crates/bench/src/experiments/fig3.rs:
crates/bench/src/experiments/fig4.rs:
crates/bench/src/experiments/fig5.rs:
crates/bench/src/experiments/fig6.rs:
crates/bench/src/experiments/fig7.rs:
crates/bench/src/experiments/fig8.rs:
crates/bench/src/experiments/table1.rs:
crates/bench/src/experiments/table2.rs:
crates/bench/src/experiments/table3.rs:
crates/bench/src/experiments/table4.rs:
crates/bench/src/experiments/theorem1.rs:
crates/bench/src/harness.rs:
crates/bench/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
