/root/repo/target/debug/deps/predictadb-a57de5ae5c495142.d: src/lib.rs

/root/repo/target/debug/deps/libpredictadb-a57de5ae5c495142.rlib: src/lib.rs

/root/repo/target/debug/deps/libpredictadb-a57de5ae5c495142.rmeta: src/lib.rs

src/lib.rs:
