/root/repo/target/debug/deps/tpd_voltsim-7a12df975694c294.d: crates/voltsim/src/lib.rs

/root/repo/target/debug/deps/libtpd_voltsim-7a12df975694c294.rlib: crates/voltsim/src/lib.rs

/root/repo/target/debug/deps/libtpd_voltsim-7a12df975694c294.rmeta: crates/voltsim/src/lib.rs

crates/voltsim/src/lib.rs:
