/root/repo/target/debug/deps/tpd_profiler-059508974c2a2cc0.d: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_profiler-059508974c2a2cc0.rmeta: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/analysis.rs:
crates/profiler/src/probe.rs:
crates/profiler/src/refine.rs:
crates/profiler/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
