/root/repo/target/debug/deps/fig5-e972e1ceaff65fab.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-e972e1ceaff65fab.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
