/root/repo/target/debug/deps/tpd_core-acf0466aade70267.d: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_core-acf0466aade70267.rmeta: crates/core/src/lib.rs crates/core/src/des.rs crates/core/src/manager.rs crates/core/src/mode.rs crates/core/src/policy.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/des.rs:
crates/core/src/manager.rs:
crates/core/src/mode.rs:
crates/core/src/policy.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
