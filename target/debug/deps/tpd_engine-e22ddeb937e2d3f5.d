/root/repo/target/debug/deps/tpd_engine-e22ddeb937e2d3f5.d: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_engine-e22ddeb937e2d3f5.rmeta: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/catalog.rs:
crates/engine/src/config.rs:
crates/engine/src/engine.rs:
crates/engine/src/probes.rs:
crates/engine/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
