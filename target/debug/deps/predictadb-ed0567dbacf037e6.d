/root/repo/target/debug/deps/predictadb-ed0567dbacf037e6.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpredictadb-ed0567dbacf037e6.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
