/root/repo/target/debug/deps/buffer_pool-dd85fa2aa45abc3f.d: crates/bench/benches/buffer_pool.rs Cargo.toml

/root/repo/target/debug/deps/libbuffer_pool-dd85fa2aa45abc3f.rmeta: crates/bench/benches/buffer_pool.rs Cargo.toml

crates/bench/benches/buffer_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
