/root/repo/target/debug/deps/wal-1dff0aa17ee98bba.d: crates/bench/benches/wal.rs Cargo.toml

/root/repo/target/debug/deps/libwal-1dff0aa17ee98bba.rmeta: crates/bench/benches/wal.rs Cargo.toml

crates/bench/benches/wal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
