/root/repo/target/debug/deps/fig8-3c271b6c50aa4910.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-3c271b6c50aa4910.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
