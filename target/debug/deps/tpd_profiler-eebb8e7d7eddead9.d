/root/repo/target/debug/deps/tpd_profiler-eebb8e7d7eddead9.d: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_profiler-eebb8e7d7eddead9.rmeta: crates/profiler/src/lib.rs crates/profiler/src/analysis.rs crates/profiler/src/probe.rs crates/profiler/src/refine.rs crates/profiler/src/registry.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/analysis.rs:
crates/profiler/src/probe.rs:
crates/profiler/src/refine.rs:
crates/profiler/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
