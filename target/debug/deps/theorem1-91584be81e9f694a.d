/root/repo/target/debug/deps/theorem1-91584be81e9f694a.d: crates/bench/src/bin/theorem1.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem1-91584be81e9f694a.rmeta: crates/bench/src/bin/theorem1.rs Cargo.toml

crates/bench/src/bin/theorem1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
