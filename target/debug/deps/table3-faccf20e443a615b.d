/root/repo/target/debug/deps/table3-faccf20e443a615b.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-faccf20e443a615b.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
