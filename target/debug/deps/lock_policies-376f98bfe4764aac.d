/root/repo/target/debug/deps/lock_policies-376f98bfe4764aac.d: crates/bench/benches/lock_policies.rs Cargo.toml

/root/repo/target/debug/deps/liblock_policies-376f98bfe4764aac.rmeta: crates/bench/benches/lock_policies.rs Cargo.toml

crates/bench/benches/lock_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
