/root/repo/target/debug/deps/predictadb-4ab1e12208cff923.d: src/lib.rs

/root/repo/target/debug/deps/predictadb-4ab1e12208cff923: src/lib.rs

src/lib.rs:
