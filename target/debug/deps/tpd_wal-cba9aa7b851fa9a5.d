/root/repo/target/debug/deps/tpd_wal-cba9aa7b851fa9a5.d: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

/root/repo/target/debug/deps/libtpd_wal-cba9aa7b851fa9a5.rlib: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

/root/repo/target/debug/deps/libtpd_wal-cba9aa7b851fa9a5.rmeta: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs

crates/wal/src/lib.rs:
crates/wal/src/mysql.rs:
crates/wal/src/pg.rs:
crates/wal/src/record.rs:
