/root/repo/target/debug/deps/tpd_wal-34b83bdcba37f91d.d: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_wal-34b83bdcba37f91d.rmeta: crates/wal/src/lib.rs crates/wal/src/mysql.rs crates/wal/src/pg.rs crates/wal/src/record.rs Cargo.toml

crates/wal/src/lib.rs:
crates/wal/src/mysql.rs:
crates/wal/src/pg.rs:
crates/wal/src/record.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
