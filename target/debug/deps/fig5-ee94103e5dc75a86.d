/root/repo/target/debug/deps/fig5-ee94103e5dc75a86.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-ee94103e5dc75a86.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
