/root/repo/target/debug/deps/tpd_engine-9497dd335587ae7d.d: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

/root/repo/target/debug/deps/libtpd_engine-9497dd335587ae7d.rlib: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

/root/repo/target/debug/deps/libtpd_engine-9497dd335587ae7d.rmeta: crates/engine/src/lib.rs crates/engine/src/catalog.rs crates/engine/src/config.rs crates/engine/src/engine.rs crates/engine/src/probes.rs crates/engine/src/types.rs

crates/engine/src/lib.rs:
crates/engine/src/catalog.rs:
crates/engine/src/config.rs:
crates/engine/src/engine.rs:
crates/engine/src/probes.rs:
crates/engine/src/types.rs:
