/root/repo/target/debug/deps/tpd_voltsim-d9f626e77c809fc3.d: crates/voltsim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_voltsim-d9f626e77c809fc3.rmeta: crates/voltsim/src/lib.rs Cargo.toml

crates/voltsim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
