/root/repo/target/debug/deps/repro_all-c538d84b8385ce3f.d: crates/bench/src/bin/repro_all.rs Cargo.toml

/root/repo/target/debug/deps/librepro_all-c538d84b8385ce3f.rmeta: crates/bench/src/bin/repro_all.rs Cargo.toml

crates/bench/src/bin/repro_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
