/root/repo/target/debug/deps/table4-6f1b82144642063a.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-6f1b82144642063a.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
