/root/repo/target/debug/deps/tpd_workloads-8fe7904b617d3754.d: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_workloads-8fe7904b617d3754.rmeta: crates/workloads/src/lib.rs crates/workloads/src/epinions.rs crates/workloads/src/seats.rs crates/workloads/src/spec.rs crates/workloads/src/tatp.rs crates/workloads/src/tpcc.rs crates/workloads/src/ycsb.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/epinions.rs:
crates/workloads/src/seats.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/tatp.rs:
crates/workloads/src/tpcc.rs:
crates/workloads/src/ycsb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
