/root/repo/target/debug/deps/engine_integration-bece4665b756e85e.d: tests/engine_integration.rs

/root/repo/target/debug/deps/engine_integration-bece4665b756e85e: tests/engine_integration.rs

tests/engine_integration.rs:
