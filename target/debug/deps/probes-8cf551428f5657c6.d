/root/repo/target/debug/deps/probes-8cf551428f5657c6.d: crates/bench/benches/probes.rs Cargo.toml

/root/repo/target/debug/deps/libprobes-8cf551428f5657c6.rmeta: crates/bench/benches/probes.rs Cargo.toml

crates/bench/benches/probes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
