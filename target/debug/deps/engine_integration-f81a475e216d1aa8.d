/root/repo/target/debug/deps/engine_integration-f81a475e216d1aa8.d: tests/engine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_integration-f81a475e216d1aa8.rmeta: tests/engine_integration.rs Cargo.toml

tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
