/root/repo/target/debug/deps/scheduling_properties-1a32010a4072d212.d: tests/scheduling_properties.rs Cargo.toml

/root/repo/target/debug/deps/libscheduling_properties-1a32010a4072d212.rmeta: tests/scheduling_properties.rs Cargo.toml

tests/scheduling_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
