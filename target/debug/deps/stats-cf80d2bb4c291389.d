/root/repo/target/debug/deps/stats-cf80d2bb4c291389.d: crates/bench/benches/stats.rs Cargo.toml

/root/repo/target/debug/deps/libstats-cf80d2bb4c291389.rmeta: crates/bench/benches/stats.rs Cargo.toml

crates/bench/benches/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
