/root/repo/target/debug/deps/tpd_storage-b34c18165983ac11.d: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/libtpd_storage-b34c18165983ac11.rmeta: crates/storage/src/lib.rs crates/storage/src/lru.rs crates/storage/src/pool.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/lru.rs:
crates/storage/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
