/root/repo/target/debug/examples/quickstart-46db4cc06f20ca10.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-46db4cc06f20ca10: examples/quickstart.rs

examples/quickstart.rs:
