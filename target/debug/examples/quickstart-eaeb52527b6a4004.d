/root/repo/target/debug/examples/quickstart-eaeb52527b6a4004.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-eaeb52527b6a4004.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
