/root/repo/target/debug/examples/tuning_sweep-7b28fd5a37998e70.d: examples/tuning_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libtuning_sweep-7b28fd5a37998e70.rmeta: examples/tuning_sweep.rs Cargo.toml

examples/tuning_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
