/root/repo/target/debug/examples/tuning_sweep-727227849888f74a.d: examples/tuning_sweep.rs

/root/repo/target/debug/examples/tuning_sweep-727227849888f74a: examples/tuning_sweep.rs

examples/tuning_sweep.rs:
