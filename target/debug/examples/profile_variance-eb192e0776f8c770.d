/root/repo/target/debug/examples/profile_variance-eb192e0776f8c770.d: examples/profile_variance.rs Cargo.toml

/root/repo/target/debug/examples/libprofile_variance-eb192e0776f8c770.rmeta: examples/profile_variance.rs Cargo.toml

examples/profile_variance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
