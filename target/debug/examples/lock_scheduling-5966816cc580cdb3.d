/root/repo/target/debug/examples/lock_scheduling-5966816cc580cdb3.d: examples/lock_scheduling.rs

/root/repo/target/debug/examples/lock_scheduling-5966816cc580cdb3: examples/lock_scheduling.rs

examples/lock_scheduling.rs:
