/root/repo/target/debug/examples/profile_variance-41355d50a19b27d6.d: examples/profile_variance.rs

/root/repo/target/debug/examples/profile_variance-41355d50a19b27d6: examples/profile_variance.rs

examples/profile_variance.rs:
