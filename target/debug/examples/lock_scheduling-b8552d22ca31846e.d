/root/repo/target/debug/examples/lock_scheduling-b8552d22ca31846e.d: examples/lock_scheduling.rs Cargo.toml

/root/repo/target/debug/examples/liblock_scheduling-b8552d22ca31846e.rmeta: examples/lock_scheduling.rs Cargo.toml

examples/lock_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
