//! Isolation-level tests for the engine: strict 2PL must prevent dirty
//! reads, non-repeatable reads, and lost updates; aborts must be invisible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, EngineError, Policy};

fn engine() -> Arc<Engine> {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(10_000),
        ns_per_byte: 0.0,
        seed: 21,
    };
    Engine::new(EngineConfig {
        data_disk: quick.clone(),
        log_disks: vec![quick],
        ..EngineConfig::mysql(Policy::Vats)
    })
}

#[test]
fn no_dirty_reads() {
    let e = engine();
    let t = e.catalog().create_table("t", 16);
    {
        let mut setup = e.begin(0);
        setup.insert(t, vec![0]).expect("insert");
        setup.commit().expect("commit");
    }
    let dirty_seen = Arc::new(AtomicBool::new(false));
    let writer_holding = Arc::new(AtomicBool::new(false));

    let e2 = e.clone();
    let writer_holding2 = writer_holding.clone();
    let writer = std::thread::spawn(move || {
        let mut w = e2.begin(0);
        w.update(t, 0, |r| r[0] = 666).expect("update");
        writer_holding2.store(true, Ordering::Release);
        std::thread::sleep(Duration::from_millis(20));
        w.abort(); // the dirty value must never have escaped
    });
    while !writer_holding.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // Reader blocks on the X lock; when it gets through, the abort has
    // already rolled the value back.
    let mut r = e.begin(0);
    let val = r.read(t, 0).expect("read")[0];
    if val == 666 {
        dirty_seen.store(true, Ordering::Release);
    }
    r.commit().expect("commit");
    writer.join().expect("writer");
    assert!(!dirty_seen.load(Ordering::Acquire), "dirty read observed");
    let mut check = e.begin(0);
    assert_eq!(check.read(t, 0).expect("read")[0], 0);
    check.commit().expect("commit");
}

#[test]
fn repeatable_reads_within_transaction() {
    let e = engine();
    let t = e.catalog().create_table("t", 16);
    {
        let mut setup = e.begin(0);
        setup.insert(t, vec![7]).expect("insert");
        setup.commit().expect("commit");
    }
    let mut reader = e.begin(0);
    let first = reader.read(t, 0).expect("read");
    // A concurrent writer must block on our S lock rather than change the
    // value under us.
    let e2 = e.clone();
    let writer = std::thread::spawn(move || {
        let mut w = e2.begin(0);
        match w.update(t, 0, |r| r[0] = 8) {
            Ok(()) => w.commit().expect("commit"),
            Err(EngineError::Deadlock | EngineError::LockTimeout) => {}
            Err(other) => panic!("unexpected {other}"),
        }
    });
    std::thread::sleep(Duration::from_millis(10));
    let second = reader.read(t, 0).expect("reread");
    assert_eq!(first, second, "value changed under an S lock");
    reader.commit().expect("commit");
    writer.join().expect("writer");
}

#[test]
fn no_lost_updates_with_read_modify_write() {
    let e = engine();
    let t = e.catalog().create_table("t", 16);
    {
        let mut setup = e.begin(0);
        setup.insert(t, vec![0]).expect("insert");
        setup.commit().expect("commit");
    }
    let attempts = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let e = e.clone();
            let attempts = attempts.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    loop {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        let mut txn = e.begin(0);
                        // read_for_update takes X up front: RMW is atomic.
                        let cur = match txn.read_for_update(t, 0) {
                            Ok(row) => row[0],
                            Err(_) => continue,
                        };
                        if txn.update(t, 0, |r| r[0] = cur + 1).is_err() {
                            continue;
                        }
                        if txn.commit().is_ok() {
                            break;
                        }
                    }
                }
            });
        }
    });
    let mut check = e.begin(0);
    assert_eq!(
        check.read(t, 0).expect("read")[0],
        120,
        "all increments kept"
    );
    check.commit().expect("commit");
}

#[test]
fn aborted_inserts_never_visible_to_scans() {
    let e = engine();
    let t = e.catalog().create_table("t", 16);
    {
        let mut setup = e.begin(0);
        for i in 0..10 {
            setup.insert(t, vec![i]).expect("insert");
        }
        setup.commit().expect("commit");
    }
    // Writer inserts then aborts, concurrently with scanning readers.
    std::thread::scope(|scope| {
        let e2 = e.clone();
        scope.spawn(move || {
            for _ in 0..20 {
                let mut w = e2.begin(0);
                w.insert(t, vec![-1]).expect("insert");
                w.abort();
            }
        });
        let e3 = e.clone();
        scope.spawn(move || {
            for _ in 0..20 {
                let mut r = e3.begin(0);
                if let Ok(rows) = r.scan(t, 0, 1000, 1000) {
                    for (_, row) in rows {
                        assert_ne!(row[0], -1, "aborted insert leaked into a scan");
                    }
                }
                let _ = r.commit();
            }
        });
    });
    // Final state: exactly the 10 committed rows.
    assert_eq!(e.catalog().table(t).len(), 10);
}

#[test]
fn deadlock_victims_leave_no_partial_effects() {
    let e = engine();
    let t = e.catalog().create_table("t", 16);
    {
        let mut setup = e.begin(0);
        setup.insert(t, vec![0]).expect("a");
        setup.insert(t, vec![0]).expect("b");
        setup.commit().expect("commit");
    }
    // Opposite-order writers; every commit applies both updates or none.
    std::thread::scope(|scope| {
        for dir in 0..2u64 {
            let e = e.clone();
            scope.spawn(move || {
                let (first, second) = if dir == 0 { (0, 1) } else { (1, 0) };
                for _ in 0..30 {
                    let mut txn = e.begin(0);
                    if txn.update(t, first, |r| r[0] += 1).is_err() {
                        continue;
                    }
                    if txn.update(t, second, |r| r[0] += 1).is_err() {
                        continue;
                    }
                    let _ = txn.commit();
                }
            });
        }
    });
    let mut check = e.begin(0);
    let a = check.read(t, 0).expect("a")[0];
    let b = check.read(t, 1).expect("b")[0];
    check.commit().expect("commit");
    assert_eq!(a, b, "atomic pairs: {a} vs {b}");
}
