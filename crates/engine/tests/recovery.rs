//! Crash/recovery tests: the durability half of the flush-policy trade-off
//! (Section 7.5 / Appendix B), made executable.
//!
//! * Eager flush: every acknowledged commit survives a crash.
//! * Lazy write (long flusher interval): a crash immediately after a burst
//!   of commits loses recent ones, but recovery is *prefix-consistent* —
//!   recovered transactions are whole, never partial.

use std::sync::Arc;
use std::time::Duration;

use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, Policy, TableId};
use tpd_wal::FlushPolicy;

fn config(policy: FlushPolicy, flush_interval: Duration) -> EngineConfig {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(5_000),
        ns_per_byte: 0.0,
        seed: 31,
    };
    let mut cfg = EngineConfig::mysql(Policy::Fcfs);
    cfg.data_disk = quick.clone();
    cfg.log_disks = vec![quick];
    cfg.flush_policy = policy;
    cfg.flush_interval = flush_interval;
    cfg
}

/// Run `n` transfer transactions (each updates two rows and inserts a
/// journal row) and return the table ids.
fn run_transfers(engine: &Arc<Engine>, n: u64) -> (TableId, TableId) {
    let accounts = engine.catalog().create_table("accounts", 16);
    let journal = engine.catalog().create_table("journal", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(accounts, vec![1000]).expect("a");
        setup.insert(accounts, vec![1000]).expect("b");
        setup.commit().expect("setup");
    }
    for i in 0..n {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![i as i64]).expect("journal");
        txn.commit().expect("commit");
    }
    (accounts, journal)
}

#[test]
fn eager_flush_loses_nothing() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let (accounts, journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();
    assert!(!log.is_empty());

    // Recover into a fresh engine with the same schema.
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 26, "setup + 25 transfers");
    assert_eq!(report.records_skipped, 0);

    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 1000 - 25);
    assert_eq!(acc.get(1).expect("b")[0], 1000 + 25);
    assert_eq!(recovered.catalog().table(journal).len(), 25);
}

#[test]
fn lazy_write_can_lose_recent_commits_but_stays_consistent() {
    // Flusher effectively never runs: a crash right after the burst sees
    // whatever the (never-run) flusher made durable — nothing.
    let engine = Engine::new(config(FlushPolicy::LazyWrite, Duration::from_secs(3600)));
    let (accounts, _journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert!(
        report.committed_txns < 26,
        "lazy write must lose forward progress here: {report:?}"
    );

    // Prefix consistency: if any transfer survived, its paired updates
    // both survived (sum of balances preserved among recovered rows).
    let acc = recovered.catalog().table(accounts);
    if let (Some(a), Some(b)) = (acc.get(0), acc.get(1)) {
        assert_eq!(a[0] + b[0], 2000, "transfers are atomic in recovery");
    }
}

#[test]
fn lazy_flush_recovers_after_flusher_catches_up() {
    let engine = Engine::new(config(FlushPolicy::LazyFlush, Duration::from_millis(5)));
    let (accounts, journal) = run_transfers(&engine, 10);
    // Give the background flusher time to make everything durable.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let log = engine.simulate_crash();
        let committed = tpd_wal::committed_txns(&log).len();
        if committed == 11 {
            let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
            recovered.catalog().create_table("accounts", 16);
            recovered.catalog().create_table("journal", 16);
            recovered.recover_from(&log);
            assert_eq!(
                recovered.catalog().table(accounts).get(0).expect("a")[0],
                990
            );
            assert_eq!(recovered.catalog().table(journal).len(), 10);
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "flusher never made the burst durable ({committed}/11)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn aborted_transactions_never_reach_the_durable_log() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let t = engine.catalog().create_table("t", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(t, vec![1]).expect("insert");
        setup.commit().expect("commit");
    }
    {
        let mut doomed = engine.begin(0);
        doomed.update(t, 0, |r| r[0] = 999).expect("update");
        doomed.abort();
    }
    let log = engine.simulate_crash();
    for r in &log {
        if let tpd_wal::LogRecord::Update { after, .. } = &r.record {
            assert_ne!(after[0], 999, "aborted update leaked into the log");
        }
    }
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("t", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 1);
    assert_eq!(recovered.catalog().table(t).get(0).expect("row")[0], 1);
}

#[test]
fn torn_tail_recovery_stops_at_the_tear_without_panicking() {
    // Manual-flush lazy-write log with torn tails armed: flush after the
    // first few transfers, leave the rest in flight, crash.
    let mut cfg = config(FlushPolicy::LazyWrite, Duration::from_secs(3600));
    cfg.wal_manual_flush = true;
    cfg.wal_faults = Some(tpd_wal::WalFaultPlan {
        torn_tail: true,
        ..Default::default()
    });
    let engine = Engine::new(cfg.clone());
    let (accounts, journal) = run_transfers(&engine, 3);
    engine.wal_flush_now(); // setup + 3 transfers durable
    for i in 0..4 {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![100 + i]).expect("journal");
        txn.commit().expect("commit");
    }
    let log = engine.simulate_crash();
    let last = log.last().expect("snapshot not empty");
    assert!(
        matches!(last.record, tpd_wal::LogRecord::Torn { .. }),
        "in-flight records leave a torn tail: {last:?}"
    );

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 4, "setup + 3 pre-tear transfers");
    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 997, "post-tear debits lost");
    assert_eq!(acc.get(1).expect("b")[0], 1003);
    assert_eq!(recovered.catalog().table(journal).len(), 3);
}

#[test]
fn recovery_is_idempotent() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let (accounts, _) = run_transfers(&engine, 5);
    let log = engine.simulate_crash();
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    recovered.recover_from(&log);
    let once = recovered.catalog().table(accounts).get(0);
    recovered.recover_from(&log); // replay again
    let twice = recovered.catalog().table(accounts).get(0);
    assert_eq!(once, twice, "physical redo replays idempotently");
}

#[test]
fn two_log_writers_recover_every_eager_commit() {
    let engine =
        Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)).with_log_writers(2));
    let (accounts, journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(
        report.committed_txns, 26,
        "setup + 25 transfers across 2 logs"
    );
    assert_eq!(report.records_skipped, 0);

    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 1000 - 25);
    assert_eq!(acc.get(1).expect("b")[0], 1000 + 25);
    assert_eq!(recovered.catalog().table(journal).len(), 25);
}

#[test]
fn mutex_append_mode_recovers_the_same_state_as_lockfree() {
    let run = |mode: tpd_engine::AppendMode| {
        let engine = Engine::new(
            config(FlushPolicy::Eager, Duration::from_millis(10)).with_wal_append(mode),
        );
        let (accounts, journal) = run_transfers(&engine, 12);
        let log = engine.simulate_crash();
        let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
        recovered.catalog().create_table("accounts", 16);
        recovered.catalog().create_table("journal", 16);
        let report = recovered.recover_from(&log);
        let acc = recovered.catalog().table(accounts);
        (
            report.committed_txns,
            acc.get(0).expect("a")[0],
            acc.get(1).expect("b")[0],
            recovered.catalog().table(journal).len(),
        )
    };
    let mutex = run(tpd_engine::AppendMode::Mutex);
    let lockfree = run(tpd_engine::AppendMode::Lockfree);
    assert_eq!(mutex, lockfree, "both append paths recover identical state");
    assert_eq!(mutex.0, 13, "setup + 12 transfers");
}
