//! Crash/recovery tests: the durability half of the flush-policy trade-off
//! (Section 7.5 / Appendix B), made executable.
//!
//! * Eager flush: every acknowledged commit survives a crash.
//! * Lazy write (long flusher interval): a crash immediately after a burst
//!   of commits loses recent ones, but recovery is *prefix-consistent* —
//!   recovered transactions are whole, never partial.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use tpd_common::clock::VirtualClock;
use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, Personality, Policy, TableId};
use tpd_wal::FlushPolicy;

fn config(policy: FlushPolicy, flush_interval: Duration) -> EngineConfig {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(5_000),
        ns_per_byte: 0.0,
        seed: 31,
    };
    let mut cfg = EngineConfig::mysql(Policy::Fcfs);
    cfg.data_disk = quick.clone();
    cfg.log_disks = vec![quick];
    cfg.flush_policy = policy;
    cfg.flush_interval = flush_interval;
    cfg
}

/// Run `n` transfer transactions (each updates two rows and inserts a
/// journal row) and return the table ids.
fn run_transfers(engine: &Arc<Engine>, n: u64) -> (TableId, TableId) {
    let accounts = engine.catalog().create_table("accounts", 16);
    let journal = engine.catalog().create_table("journal", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(accounts, vec![1000]).expect("a");
        setup.insert(accounts, vec![1000]).expect("b");
        setup.commit().expect("setup");
    }
    for i in 0..n {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![i as i64]).expect("journal");
        txn.commit().expect("commit");
    }
    (accounts, journal)
}

#[test]
fn eager_flush_loses_nothing() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let (accounts, journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();
    assert!(!log.is_empty());

    // Recover into a fresh engine with the same schema.
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 26, "setup + 25 transfers");
    assert_eq!(report.records_skipped, 0);

    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 1000 - 25);
    assert_eq!(acc.get(1).expect("b")[0], 1000 + 25);
    assert_eq!(recovered.catalog().table(journal).len(), 25);
}

#[test]
fn lazy_write_can_lose_recent_commits_but_stays_consistent() {
    // Flusher effectively never runs: a crash right after the burst sees
    // whatever the (never-run) flusher made durable — nothing.
    let engine = Engine::new(config(FlushPolicy::LazyWrite, Duration::from_secs(3600)));
    let (accounts, _journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert!(
        report.committed_txns < 26,
        "lazy write must lose forward progress here: {report:?}"
    );

    // Prefix consistency: if any transfer survived, its paired updates
    // both survived (sum of balances preserved among recovered rows).
    let acc = recovered.catalog().table(accounts);
    if let (Some(a), Some(b)) = (acc.get(0), acc.get(1)) {
        assert_eq!(a[0] + b[0], 2000, "transfers are atomic in recovery");
    }
}

#[test]
fn lazy_flush_recovers_after_flusher_catches_up() {
    let engine = Engine::new(config(FlushPolicy::LazyFlush, Duration::from_millis(5)));
    let (accounts, journal) = run_transfers(&engine, 10);
    // Give the background flusher time to make everything durable.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let log = engine.simulate_crash();
        let committed = tpd_wal::committed_txns(&log).len();
        if committed == 11 {
            let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
            recovered.catalog().create_table("accounts", 16);
            recovered.catalog().create_table("journal", 16);
            recovered.recover_from(&log);
            assert_eq!(
                recovered.catalog().table(accounts).get(0).expect("a")[0],
                990
            );
            assert_eq!(recovered.catalog().table(journal).len(), 10);
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "flusher never made the burst durable ({committed}/11)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn aborted_transactions_never_reach_the_durable_log() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let t = engine.catalog().create_table("t", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(t, vec![1]).expect("insert");
        setup.commit().expect("commit");
    }
    {
        let mut doomed = engine.begin(0);
        doomed.update(t, 0, |r| r[0] = 999).expect("update");
        doomed.abort();
    }
    let log = engine.simulate_crash();
    for r in &log {
        if let tpd_wal::LogRecord::Update { after, .. } = &r.record {
            assert_ne!(after[0], 999, "aborted update leaked into the log");
        }
    }
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("t", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 1);
    assert_eq!(recovered.catalog().table(t).get(0).expect("row")[0], 1);
}

#[test]
fn torn_tail_recovery_stops_at_the_tear_without_panicking() {
    // Manual-flush lazy-write log with torn tails armed: flush after the
    // first few transfers, leave the rest in flight, crash.
    let mut cfg = config(FlushPolicy::LazyWrite, Duration::from_secs(3600));
    cfg.wal_manual_flush = true;
    cfg.wal_faults = Some(tpd_wal::WalFaultPlan {
        torn_tail: true,
        ..Default::default()
    });
    let engine = Engine::new(cfg.clone());
    let (accounts, journal) = run_transfers(&engine, 3);
    engine.wal_flush_now(); // setup + 3 transfers durable
    for i in 0..4 {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![100 + i]).expect("journal");
        txn.commit().expect("commit");
    }
    let log = engine.simulate_crash();
    let last = log.last().expect("snapshot not empty");
    assert!(
        matches!(last.record, tpd_wal::LogRecord::Torn { .. }),
        "in-flight records leave a torn tail: {last:?}"
    );

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(report.committed_txns, 4, "setup + 3 pre-tear transfers");
    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 997, "post-tear debits lost");
    assert_eq!(acc.get(1).expect("b")[0], 1003);
    assert_eq!(recovered.catalog().table(journal).len(), 3);
}

#[test]
fn recovery_is_idempotent() {
    let engine = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    let (accounts, _) = run_transfers(&engine, 5);
    let log = engine.simulate_crash();
    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    recovered.recover_from(&log);
    let once = recovered.catalog().table(accounts).get(0);
    recovered.recover_from(&log); // replay again
    let twice = recovered.catalog().table(accounts).get(0);
    assert_eq!(once, twice, "physical redo replays idempotently");
}

#[test]
fn two_log_writers_recover_every_eager_commit() {
    let engine =
        Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)).with_log_writers(2));
    let (accounts, journal) = run_transfers(&engine, 25);
    let log = engine.simulate_crash();

    let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
    recovered.catalog().create_table("accounts", 16);
    recovered.catalog().create_table("journal", 16);
    let report = recovered.recover_from(&log);
    assert_eq!(
        report.committed_txns, 26,
        "setup + 25 transfers across 2 logs"
    );
    assert_eq!(report.records_skipped, 0);

    let acc = recovered.catalog().table(accounts);
    assert_eq!(acc.get(0).expect("a")[0], 1000 - 25);
    assert_eq!(acc.get(1).expect("b")[0], 1000 + 25);
    assert_eq!(recovered.catalog().table(journal).len(), 25);
}

// ---------------------------------------------------------------------------
// File backend: real segments, checkpoints, redo-on-open.
// ---------------------------------------------------------------------------

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tpd-recovery-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn file_config(personality: Personality, writers: usize, dir: &Path) -> EngineConfig {
    let mut cfg = match personality {
        Personality::Mysql => config(FlushPolicy::Eager, Duration::from_millis(10))
            .with_log_writers(writers)
            .with_manual_wal_flush(),
        Personality::Postgres => {
            let quick = DiskConfig {
                service: ServiceTime::Fixed(5_000),
                ns_per_byte: 0.0,
                seed: 31,
            };
            let mut c = EngineConfig::postgres().with_parallel_logging(writers);
            c.data_disk = quick.clone();
            c
        }
    };
    cfg = cfg.with_file_backend(dir.to_path_buf());
    cfg
}

/// Create the transfer tables, seed them in one committed transaction, and
/// write the bootstrap checkpoint (schema operations are not logged, so
/// file-mode recovery can only recreate tables a checkpoint captured).
fn setup_file_tables(engine: &Arc<Engine>) -> (TableId, TableId) {
    let accounts = engine.catalog().create_table("accounts", 16);
    let journal = engine.catalog().create_table("journal", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(accounts, vec![1000]).expect("a");
        setup.insert(accounts, vec![1000]).expect("b");
        setup.commit().expect("setup");
    }
    engine.checkpoint().expect("bootstrap checkpoint");
    (accounts, journal)
}

fn transfer_burst(engine: &Arc<Engine>, accounts: TableId, journal: TableId, n: u64) {
    for i in 0..n {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![i as i64]).expect("journal");
        txn.commit().expect("commit");
    }
}

/// One table's state: name, next-key hint, and every row.
type TableState = (String, u64, Vec<(u64, Vec<i64>)>);

/// Full engine-visible state: every table's rows plus its key allocator.
fn table_state(engine: &Arc<Engine>) -> Vec<TableState> {
    (0..engine.catalog().len())
        .map(|i| {
            let t = engine.catalog().table(TableId(i as u32));
            let rows = t
                .range_keys(0, u64::MAX, usize::MAX)
                .into_iter()
                .filter_map(|k| t.get(k).map(|r| (k, r)))
                .collect();
            (t.name.clone(), t.next_key_hint(), rows)
        })
        .collect()
}

#[test]
fn file_backend_recovers_committed_transfers_across_reboot() {
    for personality in [Personality::Mysql, Personality::Postgres] {
        let dir = temp_dir("reboot");
        {
            let engine = Engine::new(file_config(personality, 1, &dir));
            engine.recover_from_disk();
            let (a, j) = setup_file_tables(&engine);
            transfer_burst(&engine, a, j, 10);
            // Dropped without a checkpoint: the segment frames are the
            // only copy of the burst.
        }
        let engine = Engine::new(file_config(personality, 1, &dir));
        let rec = engine.recover_from_disk().expect("file backend");
        assert!(rec.restored_checkpoint, "{personality:?}");
        assert_eq!(rec.report.committed_txns, 10, "{personality:?}");
        assert_eq!(rec.torn_truncated, 0, "{personality:?}");
        let acc = engine.catalog().table(TableId(0));
        assert_eq!(acc.get(0).expect("a")[0], 990, "{personality:?}");
        assert_eq!(acc.get(1).expect("b")[0], 1010, "{personality:?}");
        assert_eq!(engine.catalog().table(TableId(1)).len(), 10);
        assert!(
            engine.recover_from_disk().is_none(),
            "second recovery on the same engine is a no-op"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn file_backend_two_writers_recover_the_full_burst() {
    let dir = temp_dir("two-writers");
    {
        let engine = Engine::new(file_config(Personality::Mysql, 2, &dir));
        engine.recover_from_disk();
        let (a, j) = setup_file_tables(&engine);
        transfer_burst(&engine, a, j, 25);
    }
    // Recover with the same stripe count.
    let engine = Engine::new(file_config(Personality::Mysql, 2, &dir));
    let rec = engine.recover_from_disk().expect("file backend");
    assert_eq!(rec.report.committed_txns, 25);
    let acc = engine.catalog().table(TableId(0));
    assert_eq!(acc.get(0).expect("a")[0], 975);
    assert_eq!(acc.get(1).expect("b")[0], 1025);
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovering the same segment set twice — two boots, each running the
/// full restore-replay-checkpoint cycle — must yield identical engine
/// state and an identical metrics snapshot, for both personalities at one
/// and two parallel logs. Under the virtual clock every recorded duration
/// is logical, so the JSON rendering is byte-comparable.
#[test]
fn file_recovery_twice_is_idempotent_in_state_and_metrics() {
    let _clock = VirtualClock::enable(1);
    for personality in [Personality::Mysql, Personality::Postgres] {
        for writers in [1usize, 2] {
            let dir = temp_dir("idem");
            {
                let engine = Engine::new(file_config(personality, writers, &dir));
                engine.recover_from_disk();
                let (a, j) = setup_file_tables(&engine);
                transfer_burst(&engine, a, j, 8);
            }
            let observe = || {
                let engine = Engine::new(file_config(personality, writers, &dir));
                engine.recover_from_disk().expect("file backend");
                (table_state(&engine), engine.metrics_snapshot().to_json())
            };
            let first = observe();
            let second = observe();
            assert_eq!(
                first.0, second.0,
                "{personality:?}/{writers}: recovered state must be identical"
            );
            assert_eq!(
                first.1, second.1,
                "{personality:?}/{writers}: metrics snapshots must be identical"
            );
            assert_eq!(
                first.0[0].2[0].1[0], 992,
                "{personality:?}/{writers}: the burst itself survived"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn file_backend_crash_gate_drops_unacked_commits_soundly() {
    let dir = temp_dir("gate");
    let committed_before_gate;
    {
        let engine = Engine::new(file_config(Personality::Mysql, 1, &dir));
        engine.recover_from_disk();
        let (a, j) = setup_file_tables(&engine);
        let wal = engine.file_wal().expect("file backend").clone();
        // Crash in the middle of the burst, leaving a torn prefix of the
        // fatal frame.
        wal.set_crash_after(wal.frames_written() + 7, 5);
        let mut acked = 0u64;
        for i in 0..10u64 {
            let mut txn = engine.begin(0);
            txn.update(a, 0, |r| r[0] -= 1).expect("debit");
            txn.update(a, 1, |r| r[0] += 1).expect("credit");
            txn.insert(j, vec![i as i64]).expect("journal");
            let ok = txn.commit().is_ok();
            // A commit is acknowledged only if the wal was still alive
            // when it returned; afterwards it is in-doubt.
            if ok && !wal.crashed() {
                acked += 1;
            }
        }
        assert!(wal.crashed(), "the gate must have fired mid-burst");
        committed_before_gate = acked;
        assert!(acked < 10, "some commits landed after the crash point");
    }
    let engine = Engine::new(file_config(Personality::Mysql, 1, &dir));
    let rec = engine.recover_from_disk().expect("file backend");
    // Complete: every acked commit survived. Sound: nothing acked can be
    // missing, and the recovered count never exceeds what was attempted.
    assert!(
        rec.report.committed_txns >= committed_before_gate,
        "acked {committed_before_gate}, recovered {}",
        rec.report.committed_txns
    );
    assert!(rec.report.committed_txns <= 10);
    let n = rec.report.committed_txns as i64;
    let acc = engine.catalog().table(TableId(0));
    assert_eq!(acc.get(0).expect("a")[0], 1000 - n, "transfers are atomic");
    assert_eq!(acc.get(1).expect("b")[0], 1000 + n);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutex_append_mode_recovers_the_same_state_as_lockfree() {
    let run = |mode: tpd_engine::AppendMode| {
        let engine = Engine::new(
            config(FlushPolicy::Eager, Duration::from_millis(10)).with_wal_append(mode),
        );
        let (accounts, journal) = run_transfers(&engine, 12);
        let log = engine.simulate_crash();
        let recovered = Engine::new(config(FlushPolicy::Eager, Duration::from_millis(10)));
        recovered.catalog().create_table("accounts", 16);
        recovered.catalog().create_table("journal", 16);
        let report = recovered.recover_from(&log);
        let acc = recovered.catalog().table(accounts);
        (
            report.committed_txns,
            acc.get(0).expect("a")[0],
            acc.get(1).expect("b")[0],
            recovered.catalog().table(journal).len(),
        )
    };
    let mutex = run(tpd_engine::AppendMode::Mutex);
    let lockfree = run(tpd_engine::AppendMode::Lockfree);
    assert_eq!(mutex, lockfree, "both append paths recover identical state");
    assert_eq!(mutex.0, 13, "setup + 12 transfers");
}
