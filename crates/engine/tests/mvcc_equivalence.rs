//! Property test: on a single session, the mvcc engine is observationally
//! equivalent to the s2pl engine. With no concurrency the version chains
//! are pure bookkeeping — every snapshot read must see the latest commit,
//! aborts must unwind tentative versions exactly as undo records do, and
//! the final committed state must match row-for-row.

use std::sync::Arc;

use proptest::prelude::*;

use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Concurrency, Engine, EngineConfig, Policy};

/// One statement of the generated stream. Transaction boundaries are part
/// of the stream so aborts and multi-statement transactions both appear.
#[derive(Debug, Clone, Copy)]
enum Op {
    Read(u64),
    ReadForUpdate(u64),
    Update(u64, i64),
    Insert(i64),
    Scan(u64, u64),
    Commit,
    Abort,
}

/// Decode one raw draw into a statement. The vendored proptest stand-in
/// has no `prop_oneof`, so the discriminant is an explicit field.
fn decode(&(kind, key, val): &(u8, u64, u64)) -> Op {
    match kind {
        0 | 1 => Op::Read(key),
        2 => Op::ReadForUpdate(key),
        3 | 4 => Op::Update(key, val as i64),
        5 => Op::Insert(val as i64),
        6 => Op::Scan(key, 1 + val % 3),
        7 => Op::Commit,
        _ => Op::Abort,
    }
}

fn engine(concurrency: Concurrency) -> Arc<Engine> {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(10_000),
        ns_per_byte: 0.0,
        seed: 77,
    };
    Engine::new(
        EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(Policy::Fcfs)
        }
        .with_concurrency(concurrency),
    )
}

/// Apply the stream on one session; return every observable result as a
/// rendered string plus the final committed table contents.
fn run_stream(concurrency: Concurrency, ops: &[Op]) -> (Vec<String>, Vec<Option<Vec<i64>>>) {
    let e = engine(concurrency);
    let tid = e.catalog().create_table("prop", 16);
    {
        let mut setup = e.begin(0);
        for k in 0..8i64 {
            setup.insert(tid, vec![k]).expect("seed insert");
        }
        setup.commit().expect("seed commit");
    }
    let mut observed = Vec::new();
    let mut txn = None;
    for op in ops {
        let t = txn.get_or_insert_with(|| e.begin(0));
        match *op {
            Op::Read(k) => observed.push(format!("read {k}: {:?}", t.read(tid, k))),
            Op::ReadForUpdate(k) => {
                observed.push(format!("rfu {k}: {:?}", t.read_for_update(tid, k)))
            }
            Op::Update(k, v) => {
                observed.push(format!("upd {k}: {:?}", t.update(tid, k, |r| r[0] = v)))
            }
            Op::Insert(v) => observed.push(format!("ins: {:?}", t.insert(tid, vec![v]))),
            Op::Scan(lo, len) => observed.push(format!(
                "scan {lo}+{len}: {:?}",
                t.scan(tid, lo, lo + len, 16)
            )),
            Op::Commit => observed.push(format!("commit: {:?}", txn.take().unwrap().commit())),
            Op::Abort => {
                txn.take().unwrap().abort();
                observed.push("abort".to_string());
            }
        }
    }
    if let Some(t) = txn.take() {
        t.abort();
    }
    assert_eq!(e.active_snapshots(), 0, "stream leaked snapshot pins");
    assert_eq!(e.locks().outstanding(), (0, 0), "stream leaked locks");
    let table = e.catalog().table(tid);
    let state = (0..64u64).map(|k| table.get(k)).collect();
    (observed, state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_session_mvcc_is_equivalent_to_s2pl(
        raw in collection::vec((0u8..9, 0u64..12, 0u64..256), 1..48),
    ) {
        let ops: Vec<Op> = raw.iter().map(decode).collect();
        let (obs_s2pl, state_s2pl) = run_stream(Concurrency::S2pl, &ops);
        let (obs_mvcc, state_mvcc) = run_stream(Concurrency::Mvcc, &ops);
        prop_assert_eq!(obs_s2pl, obs_mvcc, "per-statement results diverged: {:?}", ops);
        prop_assert_eq!(state_s2pl, state_mvcc, "final committed state diverged: {:?}", ops);
    }
}
