//! The mini transactional engine the study runs on.
//!
//! A strict-2PL row store assembled from the workspace substrates, with two
//! *personalities* matching the systems the paper profiled:
//!
//! * [`Personality::Mysql`] — thread-per-connection execution, record locks
//!   scheduled by the pluggable policy (FCFS / VATS / RS), an InnoDB-style
//!   buffer pool with young/old LRU (optionally the paper's Lazy LRU
//!   Update), and redo logging with the three
//!   `innodb_flush_log_at_trx_commit` policies.
//! * [`Personality::Postgres`] — same row store, but commits serialize on a
//!   global `WALWriteLock` (optionally the paper's parallel logging), and
//!   range scans take predicate locks released in a
//!   `ReleasePredicateLocks` phase at commit.
//!
//! Every function the paper's Tables 1–2 name is a probe site wired to
//! TProfiler: `os_event_wait` (under `lock_wait_suspend_thread`),
//! `row_ins_clust_index_entry_low`, `buf_pool_mutex_enter`,
//! `btr_cur_search_to_nth_level`, `fil_flush`, `LWLockAcquireOrWait`,
//! `ReleasePredicateLocks`.

pub mod catalog;
pub mod config;
pub mod engine;
pub mod probes;
pub mod session;
pub mod types;

pub use catalog::{Catalog, TableInfo, VersionRead};
pub use config::{Concurrency, DiskBackend, EngineConfig, Personality};
pub use engine::{AgeRemainingSample, DiskRecovery, Engine, EngineStats, RecoveryReport, Txn};
pub use probes::EngineProbes;
pub use session::{Session, SessionError};
pub use types::{EngineError, Row, RowKey, TableId, TxnType};

// Re-exports so workloads and binaries need not depend on tpd-core directly.
pub use tpd_core::{LockMode, Policy, VictimPolicy};
pub use tpd_wal::AppendMode;
