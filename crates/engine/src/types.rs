//! Engine-level identifiers, rows, and errors.

/// A table identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// A row key within a table (clustered-index key).
pub type RowKey = u64;

/// A row: a vector of integer columns. The engines under study are timing
/// models; integer columns capture sizes and update semantics without
/// string-handling noise.
pub type Row = Vec<i64>;

/// A workload-defined transaction-type index (e.g. TPC-C NewOrder = 0).
pub type TxnType = u8;

/// Errors surfaced to workload drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The transaction was aborted as a deadlock victim; the engine has
    /// already rolled it back. The driver should retry with a new
    /// transaction.
    Deadlock,
    /// Lock wait timeout; rolled back like a deadlock.
    LockTimeout,
    /// The requested row does not exist.
    RowNotFound {
        /// Table queried.
        table: TableId,
        /// Missing key.
        key: RowKey,
    },
    /// Operation on a transaction that already ended.
    TxnFinished,
    /// The transaction's snapshot fell behind version-chain GC (the chain
    /// cap forced out a version this reader still needed); the engine has
    /// already rolled it back. MVCC mode only. Retry with a fresh
    /// transaction, which pins a current snapshot.
    SnapshotTooOld,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Deadlock => f.write_str("deadlock victim; transaction rolled back"),
            EngineError::LockTimeout => f.write_str("lock wait timeout; transaction rolled back"),
            EngineError::RowNotFound { table, key } => {
                write!(f, "row {key} not found in table {}", table.0)
            }
            EngineError::TxnFinished => f.write_str("transaction already finished"),
            EngineError::SnapshotTooOld => f.write_str("snapshot too old; transaction rolled back"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Estimated wire/redo size of a row, in bytes.
pub fn row_bytes(row: &Row) -> u64 {
    (row.len() as u64) * 8 + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EngineError::Deadlock.to_string().contains("deadlock"));
        let e = EngineError::RowNotFound {
            table: TableId(3),
            key: 42,
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn row_size_estimate() {
        assert_eq!(row_bytes(&vec![1, 2, 3]), 40);
        assert_eq!(row_bytes(&Vec::new()), 16);
    }
}
