//! The engine's instrumented call graph, using the paper's function names.
//!
//! Static parents determine heights/specificity (eq. 2); at run time each
//! event also records its *dynamic* parent span, which is how TProfiler
//! distinguishes `os_event_wait [A]` (select path) from `os_event_wait [B]`
//! (update path) in Table 1 — same function, different call sites.

use tpd_profiler::{CallGraphBuilder, FuncId, Profiler};

/// Probe ids for every instrumented engine function.
#[derive(Debug, Clone, Copy)]
pub struct EngineProbes {
    /// Root: one transaction's execution.
    pub execute_transaction: FuncId,
    /// Read path (MySQL's `row_search_for_mysql`).
    pub row_search_for_mysql: FuncId,
    /// Update path (MySQL's `row_upd_step`).
    pub row_upd_step: FuncId,
    /// Insert into the clustered index; body variance is inherent
    /// (page splits), per Section 4.1.
    pub row_ins_clust_index_entry_low: FuncId,
    /// Index descent; runtime varies with tree depth (inherent).
    pub btr_cur_search_to_nth_level: FuncId,
    /// Suspension of a transaction waiting for a record lock.
    pub lock_wait_suspend_thread: FuncId,
    /// The low-level event wait inside the suspension — the paper's #1
    /// variance source.
    pub os_event_wait: FuncId,
    /// Buffer-pool page access wrapper (`buf_page_get`).
    pub buf_page_get: FuncId,
    /// Wait for the buffer-pool LRU mutex (`buf_pool_mutex_enter`).
    pub buf_pool_mutex_enter: FuncId,
    /// Page read/write I/O on a pool miss.
    pub buf_page_io: FuncId,
    /// Commit processing.
    pub trx_commit: FuncId,
    /// Redo fsync on the commit path (MySQL).
    pub fil_flush: FuncId,
    /// WALWriteLock acquisition (Postgres).
    pub lwlock_acquire_or_wait: FuncId,
    /// Predicate-lock release phase at commit (Postgres).
    pub release_predicate_locks: FuncId,
    /// Waiting for the client's next statement (inter-statement round
    /// trip); inherent client-side time, attributed so it cannot be
    /// mistaken for a server pathology.
    pub net_read_packet: FuncId,
}

impl EngineProbes {
    /// Build the call graph and a profiler over it.
    pub fn build() -> (Profiler, EngineProbes) {
        let mut b = CallGraphBuilder::new();
        let execute_transaction = b.register("execute_transaction", None);
        let row_search_for_mysql = b.register("row_search_for_mysql", Some(execute_transaction));
        let row_upd_step = b.register("row_upd_step", Some(execute_transaction));
        let row_ins_clust_index_entry_low =
            b.register("row_ins_clust_index_entry_low", Some(execute_transaction));
        let btr_cur_search_to_nth_level =
            b.register("btr_cur_search_to_nth_level", Some(row_search_for_mysql));
        let lock_wait_suspend_thread =
            b.register("lock_wait_suspend_thread", Some(row_search_for_mysql));
        let os_event_wait = b.register("os_event_wait", Some(lock_wait_suspend_thread));
        let buf_page_get = b.register("buf_page_get", Some(row_search_for_mysql));
        let buf_pool_mutex_enter = b.register("buf_pool_mutex_enter", Some(buf_page_get));
        let buf_page_io = b.register("buf_page_io", Some(buf_page_get));
        let trx_commit = b.register("trx_commit", Some(execute_transaction));
        let fil_flush = b.register("fil_flush", Some(trx_commit));
        let lwlock_acquire_or_wait = b.register("LWLockAcquireOrWait", Some(trx_commit));
        let release_predicate_locks = b.register("ReleasePredicateLocks", Some(trx_commit));
        let net_read_packet = b.register("net_read_packet", Some(execute_transaction));
        // Multi-caller edges: the update and insert paths reach the same
        // index/lock/pool machinery as the read path.
        for parent in [row_upd_step, row_ins_clust_index_entry_low] {
            b.add_caller(btr_cur_search_to_nth_level, parent);
            b.add_caller(lock_wait_suspend_thread, parent);
            b.add_caller(buf_page_get, parent);
        }
        let profiler = Profiler::new(b.build());
        (
            profiler,
            EngineProbes {
                execute_transaction,
                row_search_for_mysql,
                row_upd_step,
                row_ins_clust_index_entry_low,
                btr_cur_search_to_nth_level,
                lock_wait_suspend_thread,
                os_event_wait,
                buf_page_get,
                buf_pool_mutex_enter,
                buf_page_io,
                trx_commit,
                fil_flush,
                lwlock_acquire_or_wait,
                release_predicate_locks,
                net_read_packet,
            },
        )
    }

    /// All probe ids (to enable full instrumentation in experiments).
    pub fn all(&self) -> Vec<FuncId> {
        vec![
            self.execute_transaction,
            self.row_search_for_mysql,
            self.row_upd_step,
            self.row_ins_clust_index_entry_low,
            self.btr_cur_search_to_nth_level,
            self.lock_wait_suspend_thread,
            self.os_event_wait,
            self.buf_page_get,
            self.buf_pool_mutex_enter,
            self.buf_page_io,
            self.trx_commit,
            self.fil_flush,
            self.lwlock_acquire_or_wait,
            self.release_predicate_locks,
            self.net_read_packet,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_paper_names_and_sane_heights() {
        let (p, probes) = EngineProbes::build();
        let g = p.graph();
        assert_eq!(g.lookup("os_event_wait"), Some(probes.os_event_wait));
        assert_eq!(g.lookup("fil_flush"), Some(probes.fil_flush));
        assert_eq!(
            g.lookup("buf_pool_mutex_enter"),
            Some(probes.buf_pool_mutex_enter)
        );
        // Root is the least specific; os_event_wait is deep and specific.
        assert_eq!(g.specificity(probes.execute_transaction), 0.0);
        assert!(g.specificity(probes.os_event_wait) > g.specificity(probes.row_search_for_mysql));
        assert_eq!(g.height(probes.execute_transaction), g.graph_height());
        assert!(g.is_leaf(probes.os_event_wait));
        assert_eq!(probes.all().len(), g.len());
    }
}
