//! Engine configuration: personality, scheduling, storage, and logging
//! knobs — every tuning parameter the paper sweeps has a field here.

use std::path::PathBuf;
use std::time::Duration;

use tpd_core::{Policy, VictimPolicy};
use tpd_storage::{MutexPolicy, PoolConfig};
use tpd_wal::{AppendMode, FlushPolicy, WalFaultPlan, WalWriterConfig};

use tpd_common::dist::ServiceTime;
use tpd_common::{DiskConfig, FaultPlan};

/// Which system the engine imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// InnoDB-style: per-record lock scheduling, buffer pool, redo flush
    /// policies.
    Mysql,
    /// Postgres-style: WALWriteLock commit path, predicate locks.
    Postgres,
}

/// Where the log physically lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskBackend {
    /// Simulated devices with service-time models — deterministic under
    /// the virtual clock, byte-identical digests across runs. The default.
    #[default]
    Sim,
    /// Real files: CRC-framed append-only segments plus a checkpoint under
    /// [`EngineConfig::data_dir`], with ARIES-style redo on reopen.
    File,
}

impl std::str::FromStr for DiskBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(DiskBackend::Sim),
            "file" => Ok(DiskBackend::File),
            other => Err(format!("unknown disk backend: {other:?} (sim|file)")),
        }
    }
}

/// Concurrency-control mode for the read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Concurrency {
    /// Strict two-phase locking for everything — the paper-faithful mode:
    /// reads take IS/S record locks and hold them to commit. The default.
    #[default]
    S2pl,
    /// MVCC-lite: plain reads and scans resolve against a begin-timestamp
    /// snapshot over per-record version chains and never touch the lock
    /// manager. Writes (and `read_for_update`) keep strict 2PL, so
    /// write-write conflicts behave exactly as under [`Concurrency::S2pl`];
    /// new versions are stamped with the commit timestamp at commit. See
    /// DESIGN.md §13.
    Mvcc,
}

impl std::str::FromStr for Concurrency {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "s2pl" | "2pl" => Ok(Concurrency::S2pl),
            "mvcc" => Ok(Concurrency::Mvcc),
            other => Err(format!("unknown concurrency mode: {other:?} (s2pl|mvcc)")),
        }
    }
}

impl std::fmt::Display for Concurrency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Concurrency::S2pl => "s2pl",
            Concurrency::Mvcc => "mvcc",
        })
    }
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// MySQL or Postgres behaviour on the commit/locking paths.
    pub personality: Personality,
    /// Lock scheduling policy (the paper's FCFS / VATS / RS).
    pub lock_policy: Policy,
    /// Deadlock victim selection.
    pub victim: VictimPolicy,
    /// Lock wait timeout (liveness fallback).
    pub lock_timeout: Option<Duration>,
    /// Lock-table shards (`0` = auto: `min(16, cores)` as a power of two).
    /// The paper presets pin this to `1` — the single lock-system-mutex
    /// layout of the InnoDB 5.6 the paper profiled.
    pub lock_shards: usize,
    /// Buffer-pool configuration (frames, old/young split, LLU).
    pub pool: PoolConfig,
    /// MySQL redo durability policy.
    pub flush_policy: FlushPolicy,
    /// Background flusher period for lazy policies.
    pub flush_interval: Duration,
    /// WAL append path (both personalities): `Mutex` reproduces the
    /// paper's serialized append, `Lockfree` the reserve-then-copy
    /// buffer. The paper-faithful presets pin `Mutex`.
    pub wal_append: AppendMode,
    /// Parallel redo logs for the MySQL personality (lockfree path only;
    /// records stripe by txn id, epoch-ordered commit acks). The
    /// Postgres analogue is [`WalWriterConfig::sets`].
    pub log_writers: usize,
    /// Let committers park and share another committer's fsync
    /// (lockfree path only).
    pub wal_group_commit: bool,
    /// Postgres WAL configuration (sets, block size).
    pub wal: WalWriterConfig,
    /// Whether the WAL lives on simulated devices or real segment files.
    pub disk_backend: DiskBackend,
    /// Data directory for [`DiskBackend::File`] (segments + checkpoint).
    /// Required when the backend is `File`; ignored for `Sim`.
    pub data_dir: Option<PathBuf>,
    /// Segment rotation size for [`DiskBackend::File`].
    pub wal_rotate_bytes: u64,
    /// Data device model.
    pub data_disk: DiskConfig,
    /// Log device model(s); one per WAL set (Postgres) or the first one
    /// (MySQL).
    pub log_disks: Vec<DiskConfig>,
    /// B-tree fanout used to derive index depth from table size.
    pub index_fanout: u64,
    /// CPU work units per index level descended.
    pub work_per_index_level: u64,
    /// Extra CPU work on inserts that trigger a (modeled) page split.
    pub page_split_work: u64,
    /// A page split is charged every `split_period` inserts per table.
    pub split_period: u64,
    /// Redo bytes written per logical row byte (real engines log images,
    /// index entries, and headers far larger than the row delta; Postgres
    /// additionally logs full pages after checkpoints). Drives how many WAL
    /// blocks a commit spans in the Fig. 4 block-size sweep.
    pub redo_amplification: u64,
    /// Per-statement client round-trip model: each statement (read, update,
    /// insert, scan) pauses this long before touching the engine, modeling
    /// the SQL-over-network execution of the paper's OLTP-Bench setup.
    /// Locks are therefore held across round trips — the regime in which
    /// lock scheduling matters. `None` disables (embedded execution).
    pub statement_rtt: Option<ServiceTime>,
    /// Record the (age, remaining-time) samples for Fig. 8.
    pub record_age_remaining: bool,
    /// Rng seed for the engine's internal randomness.
    pub seed: u64,
    /// Fault plan for the data device (stalls, spikes).
    pub data_faults: Option<FaultPlan>,
    /// Fault plan for the log device(s).
    pub log_faults: Option<FaultPlan>,
    /// WAL-level faults (crash-at-LSN, torn tails, ack-before-flush).
    pub wal_faults: Option<WalFaultPlan>,
    /// Suppress the redo log's background flusher; the harness flushes at
    /// seeded points via [`crate::Engine::wal_flush_now`] so lazy-policy
    /// runs stay deterministic.
    pub wal_manual_flush: bool,
    /// Seeded bug: bypass all lock acquisition. Statements execute with no
    /// isolation whatsoever, so interleaved transactions produce lost
    /// updates and dirty reads. Exists so the torture harness can prove
    /// its serializability checker catches real violations.
    pub skip_locking: bool,
    /// Concurrency-control mode for the read path: strict 2PL (default,
    /// paper-faithful) or snapshot reads over version chains (`mvcc`).
    pub concurrency: Concurrency,
    /// Maximum committed versions retained per record under
    /// [`Concurrency::Mvcc`], beyond what the GC low-water mark would keep.
    /// A chain forced below a live snapshot's horizon turns that reader's
    /// next access into [`crate::EngineError::SnapshotTooOld`].
    pub mvcc_chain_cap: usize,
    /// Seeded bug: under [`Concurrency::Mvcc`], snapshot reads ignore the
    /// visibility rule and return the newest version — including other
    /// transactions' uncommitted writes. Dirty/non-repeatable reads the
    /// torture checker must flag (the mvcc analogue of `skip_locking`).
    pub broken_snapshots: bool,
    /// Footprints at or above this (Q16 fixed point) classify a
    /// transaction as *predicted hot* under [`Policy::Predictive`] — the
    /// input to `sched.predicted_conflicts` and the admission
    /// controller's defer-hot gate. Ignored by every other policy.
    pub predict_hot_threshold: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let log_disk = DiskConfig {
            // Log devices: sequential writes, modest variability.
            service: ServiceTime::LogNormal {
                median: 150_000,
                sigma: 0.35,
            },
            ns_per_byte: 1.0,
            seed: 0x10F5,
        };
        EngineConfig {
            personality: Personality::Mysql,
            lock_policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            lock_timeout: Some(Duration::from_secs(10)),
            lock_shards: 0,
            pool: PoolConfig::default(),
            flush_policy: FlushPolicy::Eager,
            flush_interval: Duration::from_millis(10),
            wal_append: AppendMode::Lockfree,
            log_writers: 1,
            wal_group_commit: true,
            wal: WalWriterConfig::default(),
            disk_backend: DiskBackend::Sim,
            data_dir: None,
            wal_rotate_bytes: tpd_wal::FileWal::DEFAULT_ROTATE_BYTES,
            data_disk: DiskConfig {
                service: ServiceTime::LogNormal {
                    median: 200_000,
                    sigma: 0.4,
                },
                ns_per_byte: 2.0,
                seed: 0xDA7A,
            },
            log_disks: vec![log_disk],
            index_fanout: 64,
            work_per_index_level: 96,
            page_split_work: 4096,
            split_period: 32,
            redo_amplification: 1,
            statement_rtt: None,
            record_age_remaining: false,
            seed: 0x5EED,
            data_faults: None,
            log_faults: None,
            wal_faults: None,
            wal_manual_flush: false,
            skip_locking: false,
            concurrency: Concurrency::S2pl,
            mvcc_chain_cap: 16,
            broken_snapshots: false,
            predict_hot_threshold: tpd_core::PredictorConfig::default().hot_threshold,
        }
    }
}

impl EngineConfig {
    /// MySQL personality with the given lock policy (the Table 4 matrix).
    pub fn mysql(policy: Policy) -> Self {
        EngineConfig {
            personality: Personality::Mysql,
            lock_policy: policy,
            ..Default::default()
        }
    }

    /// Postgres personality (FCFS locks, single WAL set).
    pub fn postgres() -> Self {
        EngineConfig {
            personality: Personality::Postgres,
            ..Default::default()
        }
    }

    /// Memory-pressured variant (the paper's 2-WH setup): a pool far
    /// smaller than the working set.
    pub fn with_pool_frames(mut self, frames: usize) -> Self {
        self.pool.frames = frames;
        self
    }

    /// Use the paper's Lazy LRU Update with the given spin budget.
    pub fn with_llu(mut self, spin_budget: Duration) -> Self {
        self.pool.mutex_policy = MutexPolicy::Llu { spin_budget };
        self
    }

    /// Set the redo flush policy (MySQL).
    pub fn with_flush_policy(mut self, policy: FlushPolicy) -> Self {
        self.flush_policy = policy;
        self
    }

    /// Enable the paper's parallel logging (Postgres) with `sets` log sets.
    pub fn with_parallel_logging(mut self, sets: usize) -> Self {
        self.wal.sets = sets;
        while self.log_disks.len() < sets {
            let mut d = self.log_disks[0].clone();
            d.seed = d.seed.wrapping_add(self.log_disks.len() as u64 * 7919);
            self.log_disks.push(d);
        }
        self.log_disks.truncate(sets.max(1));
        self
    }

    /// Select the WAL append path (both personalities).
    pub fn with_wal_append(mut self, mode: AppendMode) -> Self {
        self.wal_append = mode;
        self
    }

    /// Run `k` parallel redo logs (MySQL personality, lockfree append),
    /// provisioning one log device per writer.
    pub fn with_log_writers(mut self, k: usize) -> Self {
        self.log_writers = k.max(1);
        while self.log_disks.len() < self.log_writers {
            let mut d = self.log_disks[0].clone();
            d.seed = d.seed.wrapping_add(self.log_disks.len() as u64 * 7919);
            self.log_disks.push(d);
        }
        self
    }

    /// Set the lock-table shard count (`0` = auto).
    pub fn with_lock_shards(mut self, shards: usize) -> Self {
        self.lock_shards = shards;
        self
    }

    /// Set the WAL block size (Postgres, Fig. 4 right).
    pub fn with_block_size(mut self, bytes: u64) -> Self {
        self.wal.block_size = bytes;
        self
    }

    /// Enable the per-statement round-trip model with a fixed delay.
    pub fn with_statement_rtt(mut self, rtt: std::time::Duration) -> Self {
        self.statement_rtt = Some(ServiceTime::Fixed(rtt.as_nanos() as u64));
        self
    }

    /// Inject device faults: `data` perturbs the data disk, `log` every
    /// log disk.
    pub fn with_disk_faults(mut self, data: Option<FaultPlan>, log: Option<FaultPlan>) -> Self {
        self.data_faults = data;
        self.log_faults = log;
        self
    }

    /// Inject WAL-level faults (crash points, torn tails, commit-ack bugs).
    pub fn with_wal_faults(mut self, plan: WalFaultPlan) -> Self {
        self.wal_faults = Some(plan);
        self
    }

    /// Disable the redo log's background flusher (deterministic harness
    /// mode); flush via [`crate::Engine::wal_flush_now`].
    pub fn with_manual_wal_flush(mut self) -> Self {
        self.wal_manual_flush = true;
        self
    }

    /// Select the concurrency-control mode (see [`Concurrency`]).
    pub fn with_concurrency(mut self, mode: Concurrency) -> Self {
        self.concurrency = mode;
        self
    }

    /// Put the WAL on real segment files under `dir` (see
    /// [`DiskBackend::File`]). The engine recovers any existing log there
    /// on construction; call [`crate::Engine::recover_from_disk`] to apply
    /// what it found.
    pub fn with_file_backend(mut self, dir: impl Into<PathBuf>) -> Self {
        self.disk_backend = DiskBackend::File;
        self.data_dir = Some(dir.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = EngineConfig::mysql(Policy::Vats)
            .with_pool_frames(64)
            .with_llu(Duration::from_micros(10))
            .with_flush_policy(FlushPolicy::LazyFlush)
            .with_lock_shards(4);
        assert_eq!(c.lock_policy, Policy::Vats);
        assert_eq!(c.pool.frames, 64);
        assert_eq!(c.lock_shards, 4);
        assert!(matches!(c.pool.mutex_policy, MutexPolicy::Llu { .. }));
        assert_eq!(c.flush_policy, FlushPolicy::LazyFlush);
    }

    #[test]
    fn parallel_logging_provisions_disks() {
        let c = EngineConfig::postgres().with_parallel_logging(2);
        assert_eq!(c.wal.sets, 2);
        assert_eq!(c.log_disks.len(), 2);
        assert_ne!(c.log_disks[0].seed, c.log_disks[1].seed);
    }

    #[test]
    fn default_is_mysql_fcfs() {
        let c = EngineConfig::default();
        assert_eq!(c.personality, Personality::Mysql);
        assert_eq!(c.lock_policy, tpd_core::Policy::Fcfs);
        assert_eq!(c.concurrency, Concurrency::S2pl);
    }

    #[test]
    fn predictive_policy_carries_the_hot_threshold() {
        let c = EngineConfig::mysql(Policy::Predictive);
        assert_eq!(c.lock_policy, Policy::Predictive);
        assert_eq!(
            c.predict_hot_threshold,
            tpd_core::PredictorConfig::default().hot_threshold
        );
    }

    #[test]
    fn concurrency_parses_and_displays() {
        assert_eq!("s2pl".parse::<Concurrency>(), Ok(Concurrency::S2pl));
        assert_eq!("mvcc".parse::<Concurrency>(), Ok(Concurrency::Mvcc));
        assert!("si".parse::<Concurrency>().is_err());
        assert_eq!(Concurrency::Mvcc.to_string(), "mvcc");
        let c = EngineConfig::default().with_concurrency(Concurrency::Mvcc);
        assert_eq!(c.concurrency, Concurrency::Mvcc);
    }
}
