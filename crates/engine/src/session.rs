//! A connection-owned transaction handle.
//!
//! [`Txn`] is a scoped, by-value API: `commit(self)` consumes it and the
//! borrow checker ties it to one stack frame. A network front end needs
//! the opposite shape — a long-lived object that a connection thread owns
//! across many request frames, where "is a transaction open" is runtime
//! state. [`Session`] is that wrapper: a state machine over `Option<Txn>`
//! with typed errors for out-of-order operations, and the guarantee that
//! dropping the session (connection death, server shutdown) rolls back
//! any open transaction and releases every lock — the engine side of the
//! "a killed client must not leak lock-queue entries" contract.

use std::sync::Arc;

use crate::engine::{Engine, Txn};
use crate::types::{EngineError, Row, RowKey, TableId, TxnType};

/// Errors from the session state machine (wrapping engine errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// A statement or commit/abort arrived with no open transaction.
    NoActiveTxn,
    /// BEGIN arrived while a transaction was already open.
    TxnAlreadyActive,
    /// The engine failed the operation. For [`EngineError::Deadlock`],
    /// [`EngineError::LockTimeout`], and [`EngineError::SnapshotTooOld`]
    /// the transaction has already been rolled back and the session is
    /// back in the idle state.
    Engine(EngineError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoActiveTxn => f.write_str("no open transaction"),
            SessionError::TxnAlreadyActive => f.write_str("transaction already open"),
            SessionError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> Self {
        SessionError::Engine(e)
    }
}

/// A long-lived per-connection handle owning at most one open [`Txn`].
///
/// All statements run on the calling thread (the engine's profiler
/// attributes spans thread-locally), so a session must stay on one thread
/// for the lifetime of each transaction — the thread-per-connection
/// server upholds this by construction.
#[derive(Debug)]
pub struct Session {
    engine: Arc<Engine>,
    txn: Option<Txn>,
}

impl Session {
    /// A new idle session on `engine`.
    pub fn new(engine: Arc<Engine>) -> Self {
        Session { engine, txn: None }
    }

    /// The engine this session executes against.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// The open transaction's id, if any.
    pub fn txn_id(&self) -> Option<u64> {
        self.txn.as_ref().map(|t| t.id())
    }

    /// Open a transaction; errors if one is already open.
    pub fn begin(&mut self, ty: TxnType) -> Result<u64, SessionError> {
        if self.txn.is_some() {
            return Err(SessionError::TxnAlreadyActive);
        }
        let txn = self.engine.begin(ty);
        let id = txn.id();
        self.txn = Some(txn);
        Ok(id)
    }

    /// Run `op` on the open transaction, translating an abort-with-
    /// rollback (deadlock victim, lock timeout) into the idle state: the
    /// engine has already rolled the transaction back, so keeping the dead
    /// `Txn` would turn every later statement into `TxnFinished` noise.
    fn stmt<T>(
        &mut self,
        op: impl FnOnce(&mut Txn) -> Result<T, EngineError>,
    ) -> Result<T, SessionError> {
        let txn = self.txn.as_mut().ok_or(SessionError::NoActiveTxn)?;
        match op(txn) {
            Ok(v) => Ok(v),
            Err(
                e
                @ (EngineError::Deadlock | EngineError::LockTimeout | EngineError::SnapshotTooOld),
            ) => {
                // The engine already rolled back (and, under mvcc, unpinned
                // the snapshot); drop the dead Txn so the session is idle.
                self.txn = None;
                Err(SessionError::Engine(e))
            }
            Err(other) => Err(SessionError::Engine(other)),
        }
    }

    /// Read a row under a shared lock.
    pub fn read(&mut self, table: TableId, key: RowKey) -> Result<Row, SessionError> {
        self.stmt(|t| t.read(table, key))
    }

    /// Overwrite a row under an exclusive lock.
    pub fn update_row(
        &mut self,
        table: TableId,
        key: RowKey,
        row: Row,
    ) -> Result<(), SessionError> {
        self.stmt(|t| t.update(table, key, |r| *r = row))
    }

    /// Insert a row; returns the assigned key.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<RowKey, SessionError> {
        self.stmt(|t| t.insert(table, row))
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), SessionError> {
        let txn = self.txn.take().ok_or(SessionError::NoActiveTxn)?;
        txn.commit().map_err(SessionError::Engine)
    }

    /// Roll back the open transaction.
    pub fn abort(&mut self) -> Result<(), SessionError> {
        let txn = self.txn.take().ok_or(SessionError::NoActiveTxn)?;
        txn.abort();
        Ok(())
    }

    /// Roll back any open transaction (idempotent); the explicit form of
    /// what dropping the session does.
    pub fn reset(&mut self) {
        if let Some(txn) = self.txn.take() {
            txn.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_core::{LockMode, ObjectId, Policy};

    fn engine_with_table() -> (Arc<Engine>, TableId) {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 11,
        };
        let e = Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(Policy::Fcfs)
        });
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..20 {
                setup.insert(t, vec![i, 0]).expect("insert");
            }
            setup.commit().expect("setup");
        }
        (e, t)
    }

    #[test]
    fn state_machine_rejects_out_of_order_frames() {
        let (e, t) = engine_with_table();
        let mut s = Session::new(e);
        assert_eq!(s.read(t, 1).err(), Some(SessionError::NoActiveTxn));
        assert_eq!(s.commit().err(), Some(SessionError::NoActiveTxn));
        assert_eq!(s.abort().err(), Some(SessionError::NoActiveTxn));
        s.begin(0).expect("begin");
        assert_eq!(s.begin(0).err(), Some(SessionError::TxnAlreadyActive));
        s.commit().expect("commit");
        assert!(!s.in_txn());
    }

    #[test]
    fn statements_span_calls_and_commit_persists() {
        let (e, t) = engine_with_table();
        let mut s = Session::new(e.clone());
        s.begin(0).expect("begin");
        assert_eq!(s.read(t, 3).expect("read"), vec![3, 0]);
        s.update_row(t, 3, vec![3, 42]).expect("update");
        let key = s.insert(t, vec![99, 99]).expect("insert");
        s.commit().expect("commit");
        let mut check = e.begin(0);
        assert_eq!(check.read(t, 3).expect("reread"), vec![3, 42]);
        assert_eq!(check.read(t, key).expect("inserted"), vec![99, 99]);
        check.commit().expect("check commit");
    }

    #[test]
    fn drop_mid_txn_rolls_back_and_releases_locks() {
        let (e, t) = engine_with_table();
        let obj = ObjectId::new(t.0 + 1, 5);
        {
            let mut s = Session::new(e.clone());
            s.begin(0).expect("begin");
            s.update_row(t, 5, vec![5, 77]).expect("update");
            assert_eq!(e.locks().granted_count(obj), 1, "X lock held");
            // Session dropped here — the connection died.
        }
        assert_eq!(e.locks().granted_count(obj), 0, "lock released on drop");
        assert_eq!(e.locks().outstanding(), (0, 0), "lock table fully clean");
        assert_eq!(e.active_snapshots(), 0, "no pinned snapshots under s2pl");
        assert_eq!(e.stats().aborts, 1);
        let mut check = e.begin(0);
        assert_eq!(check.read(t, 5).expect("read"), vec![5, 0], "rolled back");
        check.commit().expect("commit");
    }

    #[test]
    fn deadlock_resets_session_to_idle() {
        let (e, t) = engine_with_table();
        // Session A locks 1 then wants 2; raw txn B locks 2 then wants 1.
        let mut a = Session::new(e.clone());
        a.begin(0).expect("begin");
        a.update_row(t, 1, vec![1, 1]).expect("lock 1");
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            let mut b = Session::new(e2);
            b.begin(0).expect("begin");
            b.update_row(t, 2, vec![2, 2]).expect("lock 2");
            // One side will deadlock; either outcome leaves both sessions
            // consistent.
            let r = b.update_row(t, 1, vec![1, 9]);
            match r {
                Ok(()) => {
                    assert!(b.in_txn());
                    b.commit().expect("commit");
                }
                Err(SessionError::Engine(EngineError::Deadlock | EngineError::LockTimeout)) => {
                    assert!(!b.in_txn(), "victim session is idle again");
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        });
        // Give B time to grab 2, then collide.
        std::thread::sleep(std::time::Duration::from_millis(5));
        match a.update_row(t, 2, vec![2, 9]) {
            Ok(()) => a.commit().expect("commit"),
            Err(SessionError::Engine(EngineError::Deadlock | EngineError::LockTimeout)) => {
                assert!(!a.in_txn(), "victim session is idle again");
                // Idle session is immediately reusable.
                a.begin(0).expect("fresh begin");
                a.commit().expect("empty commit");
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
        h.join().expect("worker");
        assert_eq!(e.locks().outstanding(), (0, 0), "no leaked entries");
    }

    #[test]
    fn mvcc_session_exit_paths_unpin_snapshots() {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 11,
        };
        let e = Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            concurrency: crate::config::Concurrency::Mvcc,
            ..EngineConfig::mysql(Policy::Fcfs)
        });
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..8 {
                setup.insert(t, vec![i, 0]).expect("insert");
            }
            setup.commit().expect("setup");
        }
        assert_eq!(e.active_snapshots(), 0);
        // Commit path unpins.
        let mut s = Session::new(e.clone());
        s.begin(0).expect("begin");
        assert_eq!(e.active_snapshots(), 1, "begin pins a snapshot");
        s.update_row(t, 3, vec![3, 1]).expect("update");
        s.commit().expect("commit");
        assert_eq!(e.active_snapshots(), 0, "commit unpins");
        // Abort path unpins.
        s.begin(0).expect("begin");
        s.update_row(t, 3, vec![3, 2]).expect("update");
        s.abort().expect("abort");
        assert_eq!(e.active_snapshots(), 0, "abort unpins");
        // Drop mid-transaction (connection death) unpins — the GC
        // low-water-mark leak this audit exists to catch.
        {
            let mut dead = Session::new(e.clone());
            dead.begin(0).expect("begin");
            dead.update_row(t, 3, vec![3, 9]).expect("update");
        }
        assert_eq!(e.active_snapshots(), 0, "session drop unpins");
        assert_eq!(e.locks().outstanding(), (0, 0), "no leaked locks either");
        let mut check = Session::new(e.clone());
        check.begin(0).expect("begin");
        assert_eq!(check.read(t, 3).expect("read"), vec![3, 1], "rolled back");
        check.commit().expect("commit");
    }

    #[test]
    fn row_not_found_keeps_txn_open() {
        let (e, t) = engine_with_table();
        let mut s = Session::new(e);
        s.begin(0).expect("begin");
        assert_eq!(
            s.read(t, 9999).err(),
            Some(SessionError::Engine(EngineError::RowNotFound {
                table: t,
                key: 9999
            }))
        );
        assert!(s.in_txn(), "txn survives a missing row");
        assert!(s.read(t, 1).is_ok());
        s.commit().expect("commit");
    }

    #[test]
    fn sessions_hold_x_locks_across_calls() {
        let (e, t) = engine_with_table();
        let held = ObjectId::new(t.0 + 1, 7);
        let mut s = Session::new(e.clone());
        s.begin(0).expect("begin");
        s.update_row(t, 7, vec![7, 1]).expect("update");
        assert_eq!(
            e.locks()
                .held_mode(tpd_core::TxnId(s.txn_id().expect("id")), held),
            Some(LockMode::X),
            "lock survives between session calls"
        );
        s.commit().expect("commit");
        assert_eq!(e.locks().granted_count(held), 0);
    }
}
