//! The catalog and row store.
//!
//! Committed row values live in an ordered in-memory store per table (the
//! buffer pool is the *timing* model for page residency; the store is the
//! *content* model). Keys map deterministically onto data pages
//! (`rows_per_page` per page), and each table's B-tree depth is derived
//! from its size and the configured fanout, so index descents touch the
//! right number of (pool-resident) index pages.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use tpd_storage::PageId;

use crate::types::{Row, RowKey, TableId};

/// Static information about one table.
#[derive(Debug)]
pub struct TableInfo {
    /// Table id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Rows stored per data page.
    pub rows_per_page: u64,
    rows: RwLock<BTreeMap<RowKey, Row>>,
    next_key: AtomicU64,
}

impl TableInfo {
    /// Number of rows currently in the table.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }

    /// Read a committed row.
    pub fn get(&self, key: RowKey) -> Option<Row> {
        self.rows.read().get(&key).cloned()
    }

    /// Install or replace a row value (caller must hold the record X lock).
    pub fn put(&self, key: RowKey, row: Row) {
        let mut rows = self.rows.write();
        rows.insert(key, row);
        // Keep the allocator ahead of explicit keys.
        let next = self.next_key.load(Ordering::Relaxed);
        if key >= next {
            self.next_key.store(key + 1, Ordering::Relaxed);
        }
    }

    /// Remove a row (abort path for inserts).
    pub fn remove(&self, key: RowKey) -> Option<Row> {
        self.rows.write().remove(&key)
    }

    /// Allocate the next row key for an insert.
    pub fn allocate_key(&self) -> RowKey {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }

    /// The next key [`TableInfo::allocate_key`] would hand out.
    pub fn next_key_hint(&self) -> RowKey {
        self.next_key.load(Ordering::Relaxed)
    }

    /// Raise the key allocator to at least `at_least` (checkpoint restore:
    /// the allocator may sit past the highest stored key when inserts were
    /// rolled back).
    pub fn ensure_next_key(&self, at_least: RowKey) {
        self.next_key.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Keys in `[lo, hi)`, up to `limit`.
    pub fn range_keys(&self, lo: RowKey, hi: RowKey, limit: usize) -> Vec<RowKey> {
        self.rows
            .read()
            .range(lo..hi)
            .take(limit)
            .map(|(k, _)| *k)
            .collect()
    }

    /// The data page holding `key`.
    pub fn data_page(&self, key: RowKey) -> PageId {
        PageId(((self.id.0 as u64) << 40) | (key / self.rows_per_page))
    }

    /// The index page touched at `level` while descending to `key`
    /// (level 0 = root; pages coalesce by key range as depth grows).
    pub fn index_page(&self, key: RowKey, level: u32, fanout: u64) -> PageId {
        // Root covers everything; each level partitions the key space.
        let span = self
            .rows_per_page
            .saturating_mul(fanout.saturating_pow(level));
        let bucket = if span == 0 { 0 } else { key / span.max(1) };
        PageId(((self.id.0 as u64) << 40) | (1 << 39) | ((level as u64) << 32) | bucket)
    }

    /// B-tree depth implied by current size and `fanout`: number of levels
    /// to descend (≥ 1 for nonempty tables).
    pub fn index_depth(&self, fanout: u64) -> u32 {
        let pages = (self.len() as u64 / self.rows_per_page.max(1)).max(1);
        let mut depth = 1;
        let mut reach = fanout;
        while reach < pages {
            depth += 1;
            reach = reach.saturating_mul(fanout);
        }
        depth
    }
}

/// The set of tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<Vec<std::sync::Arc<TableInfo>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; names are for diagnostics and need not be unique.
    pub fn create_table(&self, name: &str, rows_per_page: u64) -> TableId {
        assert!(rows_per_page > 0);
        let mut tables = self.tables.write();
        let id = TableId(u32::try_from(tables.len()).expect("too many tables"));
        tables.push(std::sync::Arc::new(TableInfo {
            id,
            name: name.to_string(),
            rows_per_page,
            rows: RwLock::new(BTreeMap::new()),
            next_key: AtomicU64::new(0),
        }));
        id
    }

    /// Get a table handle.
    pub fn table(&self, id: TableId) -> std::sync::Arc<TableInfo> {
        self.tables.read()[id.0 as usize].clone()
    }

    /// Find a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<std::sync::Arc<TableInfo>> {
        self.tables.read().iter().find(|t| t.name == name).cloned()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Whether there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let c = Catalog::new();
        let t = c.create_table("warehouse", 16);
        assert_eq!(t, TableId(0));
        assert_eq!(c.table(t).name, "warehouse");
        assert!(c.table_by_name("warehouse").is_some());
        assert!(c.table_by_name("nope").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        assert!(t.get(5).is_none());
        t.put(5, vec![1, 2]);
        assert_eq!(t.get(5), Some(vec![1, 2]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(5), Some(vec![1, 2]));
        assert!(t.is_empty());
    }

    #[test]
    fn key_allocation_skips_explicit_keys() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        t.put(100, vec![0]);
        let k = t.allocate_key();
        assert!(k > 100, "allocator moved past explicit key: {k}");
        let k2 = t.allocate_key();
        assert_eq!(k2, k + 1);
    }

    #[test]
    fn page_mapping_is_stable_and_distinct() {
        let c = Catalog::new();
        let t0 = c.table(c.create_table("a", 4));
        let t1 = c.table(c.create_table("b", 4));
        assert_eq!(t0.data_page(0), t0.data_page(3));
        assert_ne!(t0.data_page(3), t0.data_page(4));
        assert_ne!(t0.data_page(0), t1.data_page(0), "tables do not collide");
        // Index pages are distinct from data pages.
        assert_ne!(t0.index_page(0, 0, 64), t0.data_page(0));
    }

    #[test]
    fn index_depth_grows_with_size() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 1));
        assert_eq!(t.index_depth(4), 1);
        for k in 0..64 {
            t.put(k, vec![0]);
        }
        // 64 pages at fanout 4: 4^1 < 64 <= 4^3 → depth 3.
        assert_eq!(t.index_depth(4), 3);
    }

    #[test]
    fn range_keys_respects_bounds_and_limit() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        for k in 0..20 {
            t.put(k, vec![k as i64]);
        }
        assert_eq!(t.range_keys(5, 10, 100), vec![5, 6, 7, 8, 9]);
        assert_eq!(t.range_keys(5, 10, 2), vec![5, 6]);
        assert!(t.range_keys(50, 60, 10).is_empty());
    }
}
