//! The catalog and row store.
//!
//! Committed row values live in an ordered in-memory store per table (the
//! buffer pool is the *timing* model for page residency; the store is the
//! *content* model). Keys map deterministically onto data pages
//! (`rows_per_page` per page), and each table's B-tree depth is derived
//! from its size and the configured fanout, so index descents touch the
//! right number of (pool-resident) index pages.
//!
//! Each record is a small version chain (newest first). Under strict 2PL
//! the chain never grows past one entry and the legacy [`TableInfo::get`] /
//! [`TableInfo::put`] surface behaves exactly as a plain map. Under the
//! `mvcc` concurrency mode writers push tentative versions that the commit
//! path stamps with a commit timestamp, and snapshot readers walk the
//! chain for the newest version at or below their begin timestamp — see
//! DESIGN.md §13 for the visibility rule and the GC low-water mark.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use tpd_storage::PageId;

use crate::types::{Row, RowKey, TableId};

/// Stamp marking a version whose writer has not committed yet; larger than
/// any real commit timestamp, so the uniform "newest stamp ≤ snapshot"
/// walk skips it without a special case.
const TENTATIVE: u64 = u64::MAX;

/// One entry in a record's version chain.
#[derive(Debug, Clone)]
struct Version {
    /// Commit timestamp, or [`TENTATIVE`] while the writer is in flight.
    stamp: u64,
    row: Row,
}

/// A record: its version chain, newest first. `versions[0]` is the current
/// value (possibly tentative); older committed versions follow in
/// descending stamp order.
#[derive(Debug)]
struct VersionedRow {
    versions: Vec<Version>,
    /// Transaction id holding the tentative `versions[0]`, or 0. The
    /// record X lock makes at most one writer possible.
    writer: u64,
    /// The chain cap forced out history: readers whose snapshot predates
    /// the oldest retained version get `SnapshotTooOld` instead of
    /// silently missing the record.
    capped: bool,
}

impl VersionedRow {
    fn committed(row: Row, stamp: u64) -> Self {
        VersionedRow {
            versions: vec![Version { stamp, row }],
            writer: 0,
            capped: false,
        }
    }
}

/// Outcome of a snapshot read against one record's version chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VersionRead {
    /// The visible version (the reader's own tentative write, or the
    /// newest committed version at or below the snapshot).
    Visible(Row),
    /// No version is visible at this snapshot: the record was created
    /// after the snapshot, or never existed.
    NotVisible,
    /// The chain was capped past this snapshot's horizon; the reader must
    /// abort with `SnapshotTooOld`.
    TooOld,
}

/// Static information about one table.
#[derive(Debug)]
pub struct TableInfo {
    /// Table id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Rows stored per data page.
    pub rows_per_page: u64,
    rows: RwLock<BTreeMap<RowKey, VersionedRow>>,
    next_key: AtomicU64,
}

impl TableInfo {
    /// Number of rows currently in the table.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.read().is_empty()
    }

    /// Read the current (newest) version of a row. Under 2PL the record
    /// lock guarantees this is the committed value; mvcc writers holding
    /// the X lock see their own tentative write here.
    pub fn get(&self, key: RowKey) -> Option<Row> {
        self.rows
            .read()
            .get(&key)
            .map(|v| v.versions[0].row.clone())
    }

    /// Install or replace a row value in place as a single committed
    /// version (caller must hold the record X lock). This is the 2PL write
    /// path and the bootstrap/recovery/checkpoint-restore store; it never
    /// grows a chain.
    pub fn put(&self, key: RowKey, row: Row) {
        let mut rows = self.rows.write();
        rows.insert(key, VersionedRow::committed(row, 0));
        // Keep the allocator ahead of explicit keys.
        let next = self.next_key.load(Ordering::Relaxed);
        if key >= next {
            self.next_key.store(key + 1, Ordering::Relaxed);
        }
    }

    /// Remove a row (abort path for inserts).
    pub fn remove(&self, key: RowKey) -> Option<Row> {
        self.rows
            .write()
            .remove(&key)
            .map(|mut v| v.versions.swap_remove(0).row)
    }

    /// Install a tentative write for `txn` (mvcc write path; caller holds
    /// the record X lock). The first write to a record pushes a new
    /// tentative version in front of the committed chain; repeat writes by
    /// the same transaction overwrite it in place. A missing record is
    /// created with a single tentative version (insert path). Returns
    /// whether this was the transaction's first write to the record — the
    /// caller tracks first-writes for commit stamping and abort.
    pub fn write_version(&self, key: RowKey, row: Row, txn: u64) -> bool {
        let mut rows = self.rows.write();
        match rows.get_mut(&key) {
            Some(rec) => {
                if rec.writer == txn {
                    rec.versions[0].row = row;
                    false
                } else {
                    debug_assert_eq!(rec.writer, 0, "two writers under one X lock");
                    rec.versions.insert(
                        0,
                        Version {
                            stamp: TENTATIVE,
                            row,
                        },
                    );
                    rec.writer = txn;
                    true
                }
            }
            None => {
                let mut rec = VersionedRow::committed(row, TENTATIVE);
                rec.writer = txn;
                rows.insert(key, rec);
                let next = self.next_key.load(Ordering::Relaxed);
                if key >= next {
                    self.next_key.store(key + 1, Ordering::Relaxed);
                }
                true
            }
        }
    }

    /// Commit `txn`'s tentative version of `key` at timestamp `ts`, then
    /// garbage-collect the chain: every version newer than `floor` (the
    /// oldest active snapshot) is kept, plus one at or below it; beyond
    /// that, `cap` bounds the chain and marks it capped. Returns the chain
    /// length after stamping (pre-GC) and how many versions GC reclaimed.
    pub fn commit_version(
        &self,
        key: RowKey,
        txn: u64,
        ts: u64,
        floor: u64,
        cap: usize,
    ) -> (usize, u64) {
        let mut rows = self.rows.write();
        let rec = rows.get_mut(&key).expect("committing a vanished record");
        debug_assert_eq!(rec.writer, txn, "committing someone else's write");
        rec.versions[0].stamp = ts;
        rec.writer = 0;
        let len = rec.versions.len();
        // Keep everything a live snapshot could still need: all versions
        // with stamp > floor, plus the first at or below floor.
        let keep = rec
            .versions
            .iter()
            .position(|v| v.stamp <= floor)
            .map(|i| i + 1)
            .unwrap_or(rec.versions.len());
        rec.versions.truncate(keep);
        if rec.versions.len() > cap.max(1) {
            rec.versions.truncate(cap.max(1));
            rec.capped = true;
        }
        (len, (len - rec.versions.len()) as u64)
    }

    /// Discard `txn`'s tentative version of `key` (mvcc abort path; caller
    /// still holds the record X lock). A record whose only version was the
    /// tentative one (an aborted insert) is removed entirely.
    pub fn abort_version(&self, key: RowKey, txn: u64) {
        let mut rows = self.rows.write();
        if let Some(rec) = rows.get_mut(&key) {
            if rec.writer != txn {
                return;
            }
            rec.versions.remove(0);
            rec.writer = 0;
            if rec.versions.is_empty() {
                rows.remove(&key);
            }
        }
    }

    /// Resolve `key` at `snapshot` for reader `txn` (mvcc read path — no
    /// record lock taken). The reader's own tentative write is visible;
    /// otherwise the newest committed version with stamp ≤ snapshot wins
    /// (a tentative stamp is `u64::MAX`, so foreign in-flight writes are
    /// skipped by the same comparison).
    pub fn read_version(&self, key: RowKey, snapshot: u64, txn: u64) -> VersionRead {
        let rows = self.rows.read();
        let Some(rec) = rows.get(&key) else {
            return VersionRead::NotVisible;
        };
        if rec.writer == txn {
            return VersionRead::Visible(rec.versions[0].row.clone());
        }
        for v in &rec.versions {
            if v.stamp <= snapshot {
                return VersionRead::Visible(v.row.clone());
            }
        }
        if rec.capped {
            VersionRead::TooOld
        } else {
            VersionRead::NotVisible
        }
    }

    /// Current chain length of `key` (diagnostics/tests).
    pub fn chain_len(&self, key: RowKey) -> usize {
        self.rows.read().get(&key).map_or(0, |v| v.versions.len())
    }

    /// Allocate the next row key for an insert.
    pub fn allocate_key(&self) -> RowKey {
        self.next_key.fetch_add(1, Ordering::Relaxed)
    }

    /// The next key [`TableInfo::allocate_key`] would hand out.
    pub fn next_key_hint(&self) -> RowKey {
        self.next_key.load(Ordering::Relaxed)
    }

    /// Raise the key allocator to at least `at_least` (checkpoint restore:
    /// the allocator may sit past the highest stored key when inserts were
    /// rolled back).
    pub fn ensure_next_key(&self, at_least: RowKey) {
        self.next_key.fetch_max(at_least, Ordering::Relaxed);
    }

    /// Keys in `[lo, hi)`, up to `limit`.
    pub fn range_keys(&self, lo: RowKey, hi: RowKey, limit: usize) -> Vec<RowKey> {
        self.rows
            .read()
            .range(lo..hi)
            .take(limit)
            .map(|(k, _)| *k)
            .collect()
    }

    /// The data page holding `key`.
    pub fn data_page(&self, key: RowKey) -> PageId {
        PageId(((self.id.0 as u64) << 40) | (key / self.rows_per_page))
    }

    /// The index page touched at `level` while descending to `key`
    /// (level 0 = root; pages coalesce by key range as depth grows).
    pub fn index_page(&self, key: RowKey, level: u32, fanout: u64) -> PageId {
        // Root covers everything; each level partitions the key space.
        let span = self
            .rows_per_page
            .saturating_mul(fanout.saturating_pow(level));
        let bucket = if span == 0 { 0 } else { key / span.max(1) };
        PageId(((self.id.0 as u64) << 40) | (1 << 39) | ((level as u64) << 32) | bucket)
    }

    /// B-tree depth implied by current size and `fanout`: number of levels
    /// to descend (≥ 1 for nonempty tables).
    pub fn index_depth(&self, fanout: u64) -> u32 {
        let pages = (self.len() as u64 / self.rows_per_page.max(1)).max(1);
        let mut depth = 1;
        let mut reach = fanout;
        while reach < pages {
            depth += 1;
            reach = reach.saturating_mul(fanout);
        }
        depth
    }
}

/// The set of tables.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<Vec<std::sync::Arc<TableInfo>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table; names are for diagnostics and need not be unique.
    pub fn create_table(&self, name: &str, rows_per_page: u64) -> TableId {
        assert!(rows_per_page > 0);
        let mut tables = self.tables.write();
        let id = TableId(u32::try_from(tables.len()).expect("too many tables"));
        tables.push(std::sync::Arc::new(TableInfo {
            id,
            name: name.to_string(),
            rows_per_page,
            rows: RwLock::new(BTreeMap::new()),
            next_key: AtomicU64::new(0),
        }));
        id
    }

    /// Get a table handle.
    pub fn table(&self, id: TableId) -> std::sync::Arc<TableInfo> {
        self.tables.read()[id.0 as usize].clone()
    }

    /// Find a table by name.
    pub fn table_by_name(&self, name: &str) -> Option<std::sync::Arc<TableInfo>> {
        self.tables.read().iter().find(|t| t.name == name).cloned()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// Whether there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup() {
        let c = Catalog::new();
        let t = c.create_table("warehouse", 16);
        assert_eq!(t, TableId(0));
        assert_eq!(c.table(t).name, "warehouse");
        assert!(c.table_by_name("warehouse").is_some());
        assert!(c.table_by_name("nope").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        assert!(t.get(5).is_none());
        t.put(5, vec![1, 2]);
        assert_eq!(t.get(5), Some(vec![1, 2]));
        assert_eq!(t.len(), 1);
        assert_eq!(t.remove(5), Some(vec![1, 2]));
        assert!(t.is_empty());
    }

    #[test]
    fn key_allocation_skips_explicit_keys() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        t.put(100, vec![0]);
        let k = t.allocate_key();
        assert!(k > 100, "allocator moved past explicit key: {k}");
        let k2 = t.allocate_key();
        assert_eq!(k2, k + 1);
    }

    #[test]
    fn page_mapping_is_stable_and_distinct() {
        let c = Catalog::new();
        let t0 = c.table(c.create_table("a", 4));
        let t1 = c.table(c.create_table("b", 4));
        assert_eq!(t0.data_page(0), t0.data_page(3));
        assert_ne!(t0.data_page(3), t0.data_page(4));
        assert_ne!(t0.data_page(0), t1.data_page(0), "tables do not collide");
        // Index pages are distinct from data pages.
        assert_ne!(t0.index_page(0, 0, 64), t0.data_page(0));
    }

    #[test]
    fn index_depth_grows_with_size() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 1));
        assert_eq!(t.index_depth(4), 1);
        for k in 0..64 {
            t.put(k, vec![0]);
        }
        // 64 pages at fanout 4: 4^1 < 64 <= 4^3 → depth 3.
        assert_eq!(t.index_depth(4), 3);
    }

    #[test]
    fn version_chain_visibility_and_commit() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        t.put(1, vec![10]);
        // Writer 7 installs a tentative version.
        assert!(t.write_version(1, vec![11], 7));
        assert!(!t.write_version(1, vec![12], 7), "repeat write in place");
        assert_eq!(t.chain_len(1), 2);
        // Own write visible; foreign snapshot sees the committed base.
        assert_eq!(t.read_version(1, 0, 7), VersionRead::Visible(vec![12]));
        assert_eq!(t.read_version(1, 5, 9), VersionRead::Visible(vec![10]));
        // Commit at ts 3 with no snapshot older than 3 pinned: the chain
        // collapses to the new version (floor-GC reclaims the base).
        let (len, reclaimed) = t.commit_version(1, 7, 3, 3, 16);
        assert_eq!((len, reclaimed), (2, 1));
        assert_eq!(t.chain_len(1), 1);
        assert_eq!(t.read_version(1, 3, 9), VersionRead::Visible(vec![12]));
    }

    #[test]
    fn version_chain_floor_retention_and_abort() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        t.put(1, vec![0]);
        // Three commits while a snapshot at ts 0 stays pinned (floor 0).
        for ts in 1..=3u64 {
            t.write_version(1, vec![ts as i64], ts);
            t.commit_version(1, ts, ts, 0, 16);
        }
        assert_eq!(t.chain_len(1), 4, "floor retains history");
        assert_eq!(t.read_version(1, 0, 99), VersionRead::Visible(vec![0]));
        assert_eq!(t.read_version(1, 2, 99), VersionRead::Visible(vec![2]));
        // Aborted write leaves the chain untouched.
        t.write_version(1, vec![77], 50);
        t.abort_version(1, 50);
        assert_eq!(t.read_version(1, 3, 99), VersionRead::Visible(vec![3]));
        // Aborted insert removes the record.
        t.write_version(9, vec![9], 51);
        t.abort_version(9, 51);
        assert!(t.get(9).is_none());
    }

    #[test]
    fn capped_chain_reports_too_old() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        t.put(1, vec![0]);
        // Floor stuck at 0 but cap 2: history is force-dropped.
        for ts in 1..=5u64 {
            t.write_version(1, vec![ts as i64], ts);
            t.commit_version(1, ts, ts, 0, 2);
        }
        assert_eq!(t.chain_len(1), 2);
        assert_eq!(t.read_version(1, 0, 99), VersionRead::TooOld);
        assert_eq!(t.read_version(1, 5, 99), VersionRead::Visible(vec![5]));
    }

    #[test]
    fn range_keys_respects_bounds_and_limit() {
        let c = Catalog::new();
        let t = c.table(c.create_table("t", 16));
        for k in 0..20 {
            t.put(k, vec![k as i64]);
        }
        assert_eq!(t.range_keys(5, 10, 100), vec![5, 6, 7, 8, 9]);
        assert_eq!(t.range_keys(5, 10, 2), vec![5, 6]);
        assert!(t.range_keys(50, 60, 10).is_empty());
    }
}
