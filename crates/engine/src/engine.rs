//! The engine proper: transactions, 2PL, WAL, and the instrumented
//! execution paths.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tpd_common::clock::{cpu_work, now_nanos};
use tpd_common::disk::{DiskDevice, FileDisk, SimDisk};
use tpd_common::Nanos;
use tpd_core::predictor::{WEIGHT_ABORT, WEIGHT_WAIT};
use tpd_core::{
    ConflictPredictor, LockError, LockManager, LockManagerConfig, LockMode, ObjectId, Policy,
    PredictorConfig, TxnToken,
};
use tpd_metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
use tpd_profiler::{OwnedSpanGuard, OwnedTxnGuard, Profiler};
use tpd_storage::{BufferPool, PoolProbes};
use tpd_wal::{
    committed_txns, CheckpointData, CheckpointTable, FileWal, LogRecord, Lsn, MysqlWalProbes,
    PgWalProbes, RecoveredLog, RedoLog, RedoLogConfig, StampedRecord, WalWriter,
};

use crate::catalog::{Catalog, TableInfo, VersionRead};
use crate::config::{Concurrency, DiskBackend, EngineConfig, Personality};
use crate::probes::EngineProbes;
use crate::types::{row_bytes, EngineError, Row, RowKey, TableId, TxnType};

/// Lock namespace 0 is table-level locks; rows use `table_id + 1`.
const TABLE_LOCK_SPACE: u32 = 0;

/// Predicate-lock bucket width (keys per bucket).
const PREDICATE_BUCKET: u64 = 1024;

/// One (age, remaining-time) observation at a blocking event — the data
/// behind Appendix C.2 / Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgeRemainingSample {
    /// Transaction type.
    pub txn_type: TxnType,
    /// Transaction age when it blocked, ns.
    pub age_ns: f64,
    /// Time from the blocking instant to commit, ns.
    pub remaining_ns: f64,
}

/// Outcome of [`Engine::recover_from_disk`]: the replay report plus the
/// raw frames that replayed, for harnesses auditing exactly which
/// transactions survived.
#[derive(Debug)]
pub struct DiskRecovery {
    /// What the replay applied.
    pub report: RecoveryReport,
    /// The recovered frames above the checkpoint floor, seq-ordered.
    pub records: Vec<StampedRecord>,
    /// Whether a checkpoint was restored.
    pub restored_checkpoint: bool,
    /// Segment files truncated at a torn or corrupt frame.
    pub torn_truncated: u64,
}

/// Outcome of replaying a durable log prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions whose commit marker survived.
    pub committed_txns: u64,
    /// Update/insert records applied.
    pub records_applied: u64,
    /// Records of uncommitted transactions skipped.
    pub records_skipped: u64,
}

/// Engine-level counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (all causes).
    pub aborts: u64,
    /// Aborts due to deadlock victimization.
    pub deadlock_aborts: u64,
    /// Aborts due to lock timeouts.
    pub timeout_aborts: u64,
}

#[derive(Debug)]
enum WalBackend {
    Mysql(Arc<RedoLog>),
    Pg(Box<WalWriter>),
}

/// The engine. Construct with [`Engine::new`], create schema through
/// [`Engine::catalog`], then drive transactions with [`Engine::begin`].
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    catalog: Catalog,
    locks: LockManager,
    pool: BufferPool,
    wal: WalBackend,
    /// File-backed segment log (`disk_backend = file` only).
    file_wal: Option<Arc<FileWal>>,
    /// What [`FileWal::open`] recovered, held until
    /// [`Engine::recover_from_disk`] consumes it.
    recovered: Mutex<Option<RecoveredLog>>,
    profiler: Arc<Profiler>,
    probes: EngineProbes,
    next_txn: AtomicU64,
    /// Postgres predicate locks: (table, key bucket) → holders.
    predicate: Mutex<HashMap<(TableId, u64), Vec<u64>>>,
    /// MVCC commit timestamp: the publish point for stamped versions.
    /// Readers snapshot it at BEGIN; committers bump it after stamping.
    commit_ts: AtomicU64,
    /// MVCC pinned snapshots: begin timestamp → pin count. The smallest
    /// key is the GC low-water mark; the map doubles as the commit mutex
    /// (timestamp allocation + stamping + publish run under its lock).
    snapshots: Mutex<BTreeMap<u64, usize>>,
    /// Version-chain length observed at each mvcc commit stamping.
    mvcc_chain_len: Histogram,
    mvcc_gc_reclaimed: AtomicU64,
    mvcc_snapshot_reads: AtomicU64,
    mvcc_too_old: AtomicU64,
    age_remaining: Mutex<Vec<AgeRemainingSample>>,
    commits: AtomicU64,
    aborts: AtomicU64,
    deadlock_aborts: AtomicU64,
    timeout_aborts: AtomicU64,
    /// Conflict predictor — present iff `lock_policy == Predictive`. Fed
    /// from the lock-wait/deadlock/timeout events in [`Txn::acquire`];
    /// consulted at BEGIN to stamp each [`TxnToken`]'s footprint.
    predictor: Option<Arc<ConflictPredictor>>,
    /// Transactions whose BEGIN-time footprint crossed the hot threshold.
    sched_predicted_hot: AtomicU64,
    /// Finished transactions whose hot/cold prediction matched whether
    /// they actually conflicted (waited or aborted on a lock).
    sched_prediction_hits: AtomicU64,
    /// Finished transactions scored for prediction accuracy.
    sched_prediction_total: AtomicU64,
    /// Per-[`TxnType`] end-to-end latency histograms (begin → commit and
    /// begin → rollback), indexed by type clamped to the last slot. Fixed
    /// arrays so the commit path records without locks or lookups.
    commit_latency: [Histogram; TXN_TYPE_SLOTS],
    abort_latency: [Histogram; TXN_TYPE_SLOTS],
    /// Named instruments beyond the built-in families (callers may hang
    /// their own counters/histograms off the engine).
    registry: MetricsRegistry,
}

/// Distinct [`TxnType`] latency slots; types ≥ 15 share the last slot.
const TXN_TYPE_SLOTS: usize = 16;

fn txn_type_slot(ty: TxnType) -> usize {
    (ty as usize).min(TXN_TYPE_SLOTS - 1)
}

impl Engine {
    /// Build an engine from a configuration.
    pub fn new(config: EngineConfig) -> Arc<Self> {
        let (profiler, probes) = EngineProbes::build();
        let profiler = Arc::new(profiler);
        let data_disk = Arc::new(SimDisk::with_faults(
            config.data_disk.clone(),
            config.data_faults.clone(),
        ));
        let pool = BufferPool::new(
            config.pool.clone(),
            data_disk,
            Some(PoolProbes {
                profiler: profiler.clone(),
                mutex_enter: probes.buf_pool_mutex_enter,
                page_io: probes.buf_page_io,
            }),
        );
        // File backend: open (and recover) the segment log first, so its
        // per-stripe devices can stand in for the simulated log disks.
        let stripes = match config.personality {
            Personality::Mysql => match config.wal_append {
                tpd_wal::AppendMode::Mutex => 1,
                tpd_wal::AppendMode::Lockfree => config.log_writers.max(1),
            },
            Personality::Postgres => config.wal.sets.max(1),
        };
        let (file_wal, recovered) = match config.disk_backend {
            DiskBackend::Sim => (None, None),
            DiskBackend::File => {
                let dir = config
                    .data_dir
                    .as_ref()
                    .expect("disk_backend = file requires a data_dir");
                let (wal, rec) = FileWal::open(dir, stripes, config.wal_rotate_bytes)
                    .expect("open file-backed wal");
                (Some(wal), Some(rec))
            }
        };
        let wal = match config.personality {
            Personality::Mysql => {
                // One device per parallel log writer (the mutex append
                // path always runs one log). Extra devices are derived
                // deterministically when the config lists too few.
                let writers = stripes;
                let disks: Vec<Arc<dyn DiskDevice>> = match &file_wal {
                    Some(wal) => (0..writers)
                        .map(|k| wal.stripe_disk(k) as Arc<dyn DiskDevice>)
                        .collect(),
                    None => {
                        let mut disk_configs = config.log_disks.clone();
                        while disk_configs.len() < writers {
                            let mut d = disk_configs[0].clone();
                            d.seed = d.seed.wrapping_add(disk_configs.len() as u64 * 7919);
                            disk_configs.push(d);
                        }
                        disk_configs
                            .into_iter()
                            .take(writers)
                            .map(|d| {
                                Arc::new(SimDisk::with_faults(d, config.log_faults.clone()))
                                    as Arc<dyn DiskDevice>
                            })
                            .collect()
                    }
                };
                WalBackend::Mysql(RedoLog::with_disks(
                    RedoLogConfig {
                        policy: config.flush_policy,
                        flush_interval: config.flush_interval,
                        faults: config.wal_faults.clone(),
                        manual_flush: config.wal_manual_flush,
                        append: config.wal_append,
                        writers,
                        group_commit: config.wal_group_commit,
                        sink: file_wal.clone(),
                    },
                    disks,
                    Some(MysqlWalProbes {
                        profiler: profiler.clone(),
                        fil_flush: probes.fil_flush,
                    }),
                ))
            }
            Personality::Postgres => {
                // The pg writer only counts bytes and flushes, so in file
                // mode its sets get scratch files — never the
                // frame-carrying segments, which the commit path writes
                // through `FileWal::append_auto` instead.
                let disks: Vec<Arc<dyn DiskDevice>> = match (&file_wal, &config.data_dir) {
                    (Some(_), Some(dir)) => (0..config.log_disks.len().max(1))
                        .map(|k| {
                            Arc::new(
                                FileDisk::create(dir.join(format!("pg-set-{k}.dat")))
                                    .expect("create pg scratch log"),
                            ) as Arc<dyn DiskDevice>
                        })
                        .collect(),
                    _ => config
                        .log_disks
                        .iter()
                        .map(|d| {
                            Arc::new(SimDisk::with_faults(d.clone(), config.log_faults.clone()))
                                as Arc<dyn DiskDevice>
                        })
                        .collect(),
                };
                let mut wal_config = config.wal.clone();
                wal_config.faults = config.wal_faults.clone();
                wal_config.append = config.wal_append;
                wal_config.group_commit = config.wal_group_commit;
                WalBackend::Pg(Box::new(WalWriter::new(
                    wal_config,
                    disks,
                    Some(PgWalProbes {
                        profiler: profiler.clone(),
                        lwlock_acquire: probes.lwlock_acquire_or_wait,
                    }),
                )))
            }
        };
        let locks = LockManager::new(LockManagerConfig {
            policy: config.lock_policy,
            victim: config.victim,
            wait_timeout: config.lock_timeout,
            shards: config.lock_shards,
            rng_seed: config.seed,
        });
        Arc::new(Engine {
            catalog: Catalog::new(),
            locks,
            pool,
            wal,
            file_wal,
            recovered: Mutex::new(recovered),
            profiler,
            probes,
            next_txn: AtomicU64::new(1),
            predicate: Mutex::new(HashMap::new()),
            commit_ts: AtomicU64::new(0),
            snapshots: Mutex::new(BTreeMap::new()),
            mvcc_chain_len: Histogram::new(),
            mvcc_gc_reclaimed: AtomicU64::new(0),
            mvcc_snapshot_reads: AtomicU64::new(0),
            mvcc_too_old: AtomicU64::new(0),
            age_remaining: Mutex::new(Vec::new()),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            deadlock_aborts: AtomicU64::new(0),
            timeout_aborts: AtomicU64::new(0),
            predictor: (config.lock_policy == Policy::Predictive).then(|| {
                Arc::new(ConflictPredictor::new(PredictorConfig {
                    hot_threshold: config.predict_hot_threshold,
                }))
            }),
            sched_predicted_hot: AtomicU64::new(0),
            sched_prediction_hits: AtomicU64::new(0),
            sched_prediction_total: AtomicU64::new(0),
            commit_latency: std::array::from_fn(|_| Histogram::new()),
            abort_latency: std::array::from_fn(|_| Histogram::new()),
            registry: MetricsRegistry::new(),
            config,
        })
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The profiler (enable probes / drain traces through this).
    pub fn profiler(&self) -> &Arc<Profiler> {
        &self.profiler
    }

    /// The probe-site ids.
    pub fn probes(&self) -> &EngineProbes {
        &self.probes
    }

    /// The lock manager (for stats and introspection).
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// The buffer pool (for stats).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// MySQL redo-log stats, if running the MySQL personality.
    pub fn redo_stats(&self) -> Option<tpd_wal::RedoStats> {
        match &self.wal {
            WalBackend::Mysql(r) => Some(r.stats()),
            WalBackend::Pg(_) => None,
        }
    }

    /// Postgres WAL stats, if running the Postgres personality.
    pub fn pg_wal_stats(&self) -> Option<tpd_wal::WalWriterStats> {
        match &self.wal {
            WalBackend::Pg(w) => Some(w.stats()),
            WalBackend::Mysql(_) => None,
        }
    }

    /// Enable every probe and start collecting traces.
    pub fn enable_full_profiling(&self) {
        self.profiler.enable_only(&self.probes.all());
        self.profiler.set_collecting(true);
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            deadlock_aborts: self.deadlock_aborts.load(Ordering::Relaxed),
            timeout_aborts: self.timeout_aborts.load(Ordering::Relaxed),
        }
    }

    /// The engine's metrics registry, for caller-defined instruments.
    /// Anything registered here appears in [`Engine::metrics_snapshot`].
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Number of pinned begin-snapshots (mvcc mode; always 0 under s2pl).
    /// The leak-check twin of [`tpd_core::LockManager::outstanding`]: a
    /// nonzero value with no transaction in flight means some exit path
    /// failed to unpin and version-chain GC is stuck at an old low-water
    /// mark.
    pub fn active_snapshots(&self) -> usize {
        self.snapshots.lock().values().sum()
    }

    /// The current mvcc commit timestamp (0 until the first mvcc commit).
    pub fn commit_timestamp(&self) -> u64 {
        self.commit_ts.load(Ordering::Acquire)
    }

    /// Assemble one snapshot of every metric family the engine exposes:
    /// `lock.*` (acquires, waits, deadlocks, per-shard contention, wait
    /// latency), `pool.*` (hits, misses, evictions, LLU backlog depth),
    /// `wal.*` (appends, flushes, group commits, fsync latency, flush
    /// batch sizes), `txn.*` (commit/abort latency per [`TxnType`]), plus
    /// anything registered via [`Engine::metrics_registry`].
    ///
    /// Under the virtual clock every recorded duration is logical, so for
    /// a fixed seed the snapshot (and its JSON rendering) is
    /// byte-deterministic — the torture harness diffs it across doubled
    /// runs as a reproducibility witness.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut m = self.registry.snapshot();

        let ls = self.locks.stats();
        m.set_counter("lock.acquires", ls.acquires);
        m.set_counter("lock.immediate", ls.immediate);
        m.set_counter("lock.waits", ls.waited);
        m.set_counter("lock.upgrades", ls.upgrades);
        m.set_counter("lock.deadlocks", ls.deadlocks);
        m.set_counter("lock.timeouts", ls.timeouts);
        m.set_counter("lock.wait_ns_total", ls.wait_ns);
        m.set_histogram("lock.wait_ns", self.locks.wait_histogram());
        for (i, n) in self.locks.shard_wait_counts().into_iter().enumerate() {
            m.set_counter(format!("lock.shard{i:02}.waits"), n);
        }

        let ps = self.pool.stats();
        m.set_counter("pool.hits", ps.hits);
        m.set_counter("pool.misses", ps.misses);
        m.set_counter("pool.evictions", ps.evictions);
        m.set_counter("pool.dirty_writebacks", ps.dirty_writebacks);
        m.set_counter("pool.make_young", ps.make_young);
        m.set_counter("pool.deferred_updates", ps.deferred_updates);
        m.set_counter("pool.backlog_applied", ps.backlog_applied);
        m.set_counter("pool.mutex_wait_ns_total", ps.mutex_wait_ns);
        m.set_histogram("pool.backlog_depth", self.pool.backlog_depth_histogram());

        match &self.wal {
            WalBackend::Mysql(r) => {
                let s = r.stats();
                m.set_counter("wal.bytes_appended", s.bytes_appended);
                m.set_counter("wal.commits", s.commits);
                m.set_counter("wal.flushes", s.flushes);
                m.set_counter("wal.group_commits", s.group_commits);
                m.set_counter("wal.bytes_written", s.bytes_written);
                m.set_counter("wal.commit_wait_ns_total", s.commit_wait_ns);
                m.set_counter("wal.log_writers", r.writers() as u64);
                m.set_histogram("wal.fsync_ns", r.fsync_histogram());
                m.set_histogram("wal.flush_batch_bytes", r.batch_histogram());
                m.set_histogram("wal.reserve_ns", r.reserve_histogram());
                m.set_histogram("wal.group_commit_batch", r.group_commit_batch_histogram());
            }
            WalBackend::Pg(w) => {
                let s = w.stats();
                m.set_counter("wal.commits", s.commits);
                m.set_counter("wal.flushes", s.flushes);
                m.set_counter("wal.group_commits", s.group_commits);
                m.set_counter("wal.blocks_written", s.blocks_written);
                m.set_counter("wal.bytes_requested", s.bytes_requested);
                m.set_counter("wal.lock_wait_ns_total", s.lock_wait_ns);
                m.set_histogram("wal.lwlock_wait_ns", w.lock_wait_histogram());
                m.set_histogram("wal.flush_batch_blocks", w.batch_histogram());
                m.set_histogram("wal.reserve_ns", w.reserve_histogram());
                m.set_histogram("wal.group_commit_batch", w.group_commit_batch_histogram());
            }
        }

        if self.config.concurrency == Concurrency::Mvcc {
            m.set_counter(
                "mvcc.snapshot_reads",
                self.mvcc_snapshot_reads.load(Ordering::Relaxed),
            );
            m.set_counter(
                "mvcc.gc_reclaimed_total",
                self.mvcc_gc_reclaimed.load(Ordering::Relaxed),
            );
            m.set_counter(
                "mvcc.snapshot_too_old_total",
                self.mvcc_too_old.load(Ordering::Relaxed),
            );
            m.set_counter("mvcc.commit_ts", self.commit_ts.load(Ordering::Relaxed));
            m.set_histogram("mvcc.version_chain_len", self.mvcc_chain_len.snapshot());
        }

        if let Some(p) = &self.predictor {
            let hits = self.sched_prediction_hits.load(Ordering::Relaxed);
            let total = self.sched_prediction_total.load(Ordering::Relaxed);
            m.set_counter(
                "sched.predicted_conflicts",
                self.sched_predicted_hot.load(Ordering::Relaxed),
            );
            m.set_counter("sched.prediction_hits", hits);
            m.set_counter("sched.prediction_total", total);
            // Integer percent so the snapshot stays byte-deterministic.
            m.set_counter(
                "sched.prediction_hit_rate",
                if total > 0 { hits * 100 / total } else { 0 },
            );
            m.set_counter("sched.conflict_events", p.events());
        }

        m.set_counter("txn.commits", self.commits.load(Ordering::Relaxed));
        m.set_counter("txn.aborts", self.aborts.load(Ordering::Relaxed));
        m.set_counter(
            "txn.deadlock_aborts",
            self.deadlock_aborts.load(Ordering::Relaxed),
        );
        m.set_counter(
            "txn.timeout_aborts",
            self.timeout_aborts.load(Ordering::Relaxed),
        );
        // Only types that ran: 16 always-empty families per personality
        // would be noise in the JSON and the Prometheus scrape alike.
        for (i, h) in self.commit_latency.iter().enumerate() {
            let snap = h.snapshot();
            if snap.count > 0 {
                m.set_histogram(format!("txn.type{i:02}.commit_ns"), snap);
            }
        }
        for (i, h) in self.abort_latency.iter().enumerate() {
            let snap = h.snapshot();
            if snap.count > 0 {
                m.set_histogram(format!("txn.type{i:02}.abort_ns"), snap);
            }
        }
        m
    }

    /// Drain the Fig. 8 (age, remaining) samples.
    pub fn drain_age_remaining(&self) -> Vec<AgeRemainingSample> {
        std::mem::take(&mut self.age_remaining.lock())
    }

    /// Simulate a crash: return the redo records that were durable at this
    /// instant (MySQL personality). Under the eager flush policy this
    /// covers every acknowledged commit; under the lazy policies recent
    /// commits may be missing — the forward-progress loss the paper's
    /// flush-policy tuning accepts.
    pub fn simulate_crash(&self) -> Vec<StampedRecord> {
        match &self.wal {
            WalBackend::Mysql(redo) => redo.simulate_crash(),
            // The Postgres personality flushes synchronously at commit, so
            // everything acknowledged is durable; typed-record retention is
            // a MySQL-path feature here.
            WalBackend::Pg(_) => Vec::new(),
        }
    }

    /// Flush pending redo now (MySQL personality; no-op for Postgres,
    /// whose commits flush synchronously). The deterministic harness calls
    /// this at seeded points in place of the background flusher — see
    /// [`EngineConfig::wal_manual_flush`].
    pub fn wal_flush_now(&self) {
        if let WalBackend::Mysql(redo) = &self.wal {
            redo.flush_now();
        }
    }

    /// Whether an injected crash-at-LSN point has been reached (see
    /// [`tpd_wal::WalFaultPlan::crash_at_lsn`]). The harness polls this
    /// between operations and crashes the engine when it fires.
    pub fn wal_crash_armed(&self) -> bool {
        match &self.wal {
            WalBackend::Mysql(redo) => redo.crash_armed(),
            WalBackend::Pg(_) => false,
        }
    }

    /// Replay a durable log prefix into this (freshly created, same-schema)
    /// engine: apply every record of every transaction whose commit marker
    /// survived. Physical redo with full after-images, so replay is
    /// idempotent.
    ///
    /// A torn tail record ends the readable log: replay stops at the tear
    /// (a checksum-verifying reader cannot see past it) and everything
    /// before it is applied normally. Never panics on a torn input.
    pub fn recover_from(&self, records: &[StampedRecord]) -> RecoveryReport {
        let records = tpd_wal::durable_prefix(records);
        let committed = committed_txns(records);
        let mut applied = 0u64;
        let mut skipped = 0u64;
        for r in records {
            match &r.record {
                LogRecord::Update {
                    txn,
                    table,
                    key,
                    after,
                }
                | LogRecord::Insert {
                    txn,
                    table,
                    key,
                    row: after,
                } => {
                    // Schema operations are not logged: a record naming a
                    // table the catalog does not have (log older than the
                    // schema, or no bootstrap checkpoint) is skipped, not
                    // a panic.
                    if (*table as usize) >= self.catalog.len() {
                        skipped += 1;
                    } else if committed.contains(txn) {
                        self.catalog.table(TableId(*table)).put(*key, after.clone());
                        applied += 1;
                    } else {
                        skipped += 1;
                    }
                }
                LogRecord::Commit { .. } => {}
                // durable_prefix cuts before the first tear; nothing to do.
                LogRecord::Torn { .. } => {}
            }
        }
        RecoveryReport {
            committed_txns: committed.len() as u64,
            records_applied: applied,
            records_skipped: skipped,
        }
    }

    /// The file-backed segment log, when `disk_backend = file` (crash-gate
    /// control and frame accounting for the crash-point harness).
    pub fn file_wal(&self) -> Option<&Arc<FileWal>> {
        self.file_wal.as_ref()
    }

    /// Apply what the file-backed WAL recovered at open: restore the
    /// checkpoint's table images (creating tables in id order when the
    /// catalog does not have them yet), replay the log tail above the
    /// floor, then write a fresh checkpoint so the next boot starts from a
    /// clean floor — transaction ids restart at 1 every boot, so pruning
    /// the replayed frames is what keeps ids from colliding across epochs.
    ///
    /// Returns `None` on the sim backend, or if already consumed. Calling
    /// it again after recovery (or on a fresh directory) is a no-op, which
    /// is what makes recovery idempotent at the API level; replay itself
    /// is idempotent because redo carries full after-images.
    pub fn recover_from_disk(&self) -> Option<DiskRecovery> {
        self.file_wal.as_ref()?;
        let rec = self.recovered.lock().take()?;
        let restored_checkpoint = rec.checkpoint.is_some();
        if let Some(ckpt) = &rec.checkpoint {
            for ct in &ckpt.tables {
                let table = if (ct.id as usize) < self.catalog.len() {
                    self.catalog.table(TableId(ct.id))
                } else {
                    let id = self.catalog.create_table(&ct.name, ct.rows_per_page);
                    assert_eq!(id.0, ct.id, "checkpoint tables are id-ordered");
                    self.catalog.table(id)
                };
                for (key, row) in &ct.rows {
                    table.put(*key, row.clone());
                }
                table.ensure_next_key(ct.next_key);
            }
        }
        let report = self.recover_from(&rec.records);
        self.checkpoint().expect("post-recovery checkpoint");
        Some(DiskRecovery {
            report,
            records: rec.records,
            restored_checkpoint,
            torn_truncated: rec.torn_truncated,
        })
    }

    /// Write a fuzzy checkpoint (file backend; no-op on sim): flush
    /// pending redo so the floor covers every record reflected in the
    /// tables, snapshot every table, atomically install `checkpoint.ckpt`,
    /// and prune the covered segments. The caller must be write-quiescent
    /// (no transactions in flight) — the checkpoint carries no undo.
    pub fn checkpoint(&self) -> std::io::Result<()> {
        let Some(wal) = &self.file_wal else {
            return Ok(());
        };
        self.wal_flush_now();
        let mut tables = Vec::with_capacity(self.catalog.len());
        for i in 0..self.catalog.len() {
            let t = self.catalog.table(TableId(i as u32));
            let keys = t.range_keys(0, u64::MAX, usize::MAX);
            let rows = keys
                .into_iter()
                .filter_map(|k| t.get(k).map(|row| (k, row)))
                .collect();
            tables.push(CheckpointTable {
                id: t.id.0,
                name: t.name.clone(),
                rows_per_page: t.rows_per_page,
                next_key: t.next_key_hint(),
                rows,
            });
        }
        wal.checkpoint(&CheckpointData {
            next_seq: wal.next_seq(),
            tables,
        })
    }

    /// Begin a transaction of the given workload type.
    pub fn begin(self: &Arc<Self>, ty: TxnType) -> Txn {
        self.begin_with_keys(ty, &[])
    }

    /// Begin a transaction, declaring a hot-key sample: up to a handful
    /// of `(table, row)` pairs the transaction expects to touch. Under
    /// [`Policy::Predictive`] the conflict predictor folds their learned
    /// conflict rates (plus the type's own rate) into the token's
    /// footprint; under every other policy the sample is ignored.
    pub fn begin_with_keys(self: &Arc<Self>, ty: TxnType, keys: &[(TableId, RowKey)]) -> Txn {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let mut token = TxnToken::new(id, now_nanos());
        let mut predicted_hot = false;
        if let Some(p) = &self.predictor {
            let objs: Vec<ObjectId> = keys
                .iter()
                .map(|&(table, key)| Txn::row_lock_obj(table, key))
                .collect();
            let footprint = p.predict(ty, &objs);
            token = token.with_footprint(footprint);
            if p.is_hot(footprint) {
                predicted_hot = true;
                self.sched_predicted_hot.fetch_add(1, Ordering::Relaxed);
            }
        }
        let txn_guard = self.profiler.begin_txn_arc(ty);
        let root_span = self.profiler.probe_arc(self.probes.execute_transaction);
        // Per-txn RNG derived from (engine seed, txn id): statement timing
        // is then a pure function of the seed, independent of which OS
        // thread runs the transaction.
        let rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // MVCC: pin a begin-timestamp snapshot. Taking `commit_ts` under
        // the snapshots mutex orders BEGIN against the commit critical
        // section, so a pinned snapshot S always has every version stamped
        // ≤ S already published.
        let snapshot = match self.config.concurrency {
            Concurrency::S2pl => None,
            Concurrency::Mvcc => {
                let mut pins = self.snapshots.lock();
                let ts = self.commit_ts.load(Ordering::Acquire);
                *pins.entry(ts).or_insert(0) += 1;
                Some(ts)
            }
        };
        Txn {
            _root_span: Some(root_span),
            _txn_guard: Some(txn_guard),
            engine: self.clone(),
            token,
            ty,
            rng,
            undo: Vec::new(),
            snapshot,
            writes: Vec::new(),
            predicate_buckets: Vec::new(),
            redo_bytes: 0,
            redo_records: Vec::new(),
            block_instants: Vec::new(),
            predicted_hot,
            conflicted: false,
            finished: false,
        }
    }

    /// The conflict predictor, present iff the lock policy is
    /// [`Policy::Predictive`]. Servers use it to classify BEGINs as hot
    /// for the admission controller's defer gate.
    pub fn predictor(&self) -> Option<&Arc<ConflictPredictor>> {
        self.predictor.as_ref()
    }

    /// Drop one pin on snapshot `ts`, advancing the GC low-water mark.
    fn unpin_snapshot(&self, ts: u64) {
        let mut pins = self.snapshots.lock();
        if let Some(n) = pins.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&ts);
            }
        }
    }
}

#[derive(Debug)]
enum Undo {
    Update {
        table: TableId,
        key: RowKey,
        old: Row,
    },
    Insert {
        table: TableId,
        key: RowKey,
    },
}

/// A live transaction. Obtain via [`Engine::begin`]; drop without
/// [`Txn::commit`] rolls back.
#[derive(Debug)]
pub struct Txn {
    // RAII only — never read. Declared before `_txn_guard` so the root
    // span closes first on drop (fields drop in declaration order).
    _root_span: Option<OwnedSpanGuard>,
    _txn_guard: Option<OwnedTxnGuard>,
    engine: Arc<Engine>,
    token: TxnToken,
    ty: TxnType,
    /// Seeded from (engine seed, txn id); drives statement-RTT sampling.
    rng: SmallRng,
    undo: Vec<Undo>,
    /// MVCC begin-timestamp snapshot (`None` under s2pl). Unpinned on
    /// every exit path — commit, rollback, and drop.
    snapshot: Option<u64>,
    /// MVCC first-writes (table, key): the tentative versions to stamp at
    /// commit or discard at rollback. Empty under s2pl (undo serves there).
    writes: Vec<(TableId, RowKey)>,
    predicate_buckets: Vec<(TableId, u64)>,
    redo_bytes: u64,
    redo_records: Vec<LogRecord>,
    /// Instants at which this transaction blocked on a lock (Fig. 8).
    block_instants: Vec<Nanos>,
    /// Whether the predictor classified this transaction as hot at BEGIN
    /// (always false without a predictor).
    predicted_hot: bool,
    /// Whether the transaction actually conflicted: waited on a lock, or
    /// aborted as a deadlock/timeout victim. Scored against
    /// `predicted_hot` at commit/rollback for the prediction hit rate.
    conflicted: bool,
    finished: bool,
}

impl Txn {
    /// The transaction's id.
    pub fn id(&self) -> u64 {
        self.token.id.0
    }

    /// The transaction's birth timestamp (ns).
    pub fn birth(&self) -> Nanos {
        self.token.birth
    }

    /// The predicted conflict footprint stamped at BEGIN (Q16; zero
    /// unless the lock policy is [`Policy::Predictive`]).
    pub fn footprint(&self) -> u64 {
        self.token.footprint
    }

    /// Whether the predictor classified this transaction as hot at BEGIN.
    pub fn predicted_hot(&self) -> bool {
        self.predicted_hot
    }

    fn check_active(&self) -> Result<(), EngineError> {
        if self.finished {
            Err(EngineError::TxnFinished)
        } else {
            Ok(())
        }
    }

    /// Model the client round trip that precedes each statement. Attributed
    /// to `net_read_packet` so TProfiler sees it as client-side time.
    ///
    /// Draws from the per-txn seeded RNG and advances via the clock layer,
    /// so under the virtual clock the delay is a deterministic logical bump
    /// rather than a wall-clock sleep — same seed, same trace, same
    /// metrics.
    fn statement_rtt(&mut self) {
        if let Some(st) = &self.engine.config.statement_rtt {
            let e = &self.engine;
            let _span = e.profiler.probe(e.probes.net_read_packet);
            let ns = st.sample(&mut self.rng);
            if ns > 0 {
                tpd_common::clock::advance(ns);
            }
        }
    }

    fn table_lock_obj(table: TableId) -> ObjectId {
        ObjectId::new(TABLE_LOCK_SPACE, table.0 as u64)
    }

    fn row_lock_obj(table: TableId, key: RowKey) -> ObjectId {
        ObjectId::new(table.0 + 1, key)
    }

    /// Acquire a lock, mapping failures to engine errors (with rollback)
    /// and feeding wait time to the `os_event_wait` probe.
    fn acquire(&mut self, obj: ObjectId, mode: LockMode) -> Result<(), EngineError> {
        if self.engine.config.skip_locking {
            // Seeded bug (EngineConfig::skip_locking): no isolation at all.
            return Ok(());
        }
        let e = self.engine.clone();
        let result = {
            let _suspend = e.profiler.probe(e.probes.lock_wait_suspend_thread);
            let result = e.locks.acquire(self.token, obj, mode);
            if let Ok(outcome) = &result {
                // Attribute the suspension while the suspend span is open,
                // so `os_event_wait` nests under `lock_wait_suspend_thread`
                // (its call site is then the enclosing statement span).
                let waited = outcome.waited();
                if waited > 0 {
                    let now = now_nanos();
                    e.profiler
                        .add_event(e.probes.os_event_wait, now - waited, waited);
                    if e.config.record_age_remaining {
                        self.block_instants.push(now - waited);
                    }
                    if let Some(p) = &e.predictor {
                        p.observe(self.ty, obj, WEIGHT_WAIT);
                    }
                    self.conflicted = true;
                }
            }
            result
        };
        match result {
            Ok(_) => Ok(()),
            Err(LockError::Deadlock) => {
                self.note_conflict_abort(obj);
                self.engine.deadlock_aborts.fetch_add(1, Ordering::Relaxed);
                self.rollback();
                Err(EngineError::Deadlock)
            }
            Err(LockError::Timeout) => {
                self.note_conflict_abort(obj);
                self.engine.timeout_aborts.fetch_add(1, Ordering::Relaxed);
                self.rollback();
                Err(EngineError::LockTimeout)
            }
        }
    }

    /// Feed a deadlock/timeout abort on `obj` to the conflict predictor
    /// (the strongest conflict signal it learns from).
    fn note_conflict_abort(&mut self, obj: ObjectId) {
        if let Some(p) = &self.engine.predictor {
            p.observe(self.ty, obj, WEIGHT_ABORT);
        }
        self.conflicted = true;
    }

    /// Walk the index to `key`: touches the internal index pages and burns
    /// CPU proportional to the depth (inherent variance per Section 4.1).
    fn index_descent(&self, table: &TableInfo, key: RowKey) {
        let e = &self.engine;
        let _span = e.profiler.probe(e.probes.btr_cur_search_to_nth_level);
        let fanout = e.config.index_fanout;
        let depth = table.index_depth(fanout);
        for level in (1..=depth).rev() {
            e.pool.access(table.index_page(key, level, fanout), false);
        }
        cpu_work(depth as u64 * e.config.work_per_index_level);
    }

    /// Access the data page through the buffer pool.
    fn page_access(&self, table: &TableInfo, key: RowKey, write: bool) {
        let e = &self.engine;
        let _span = e.profiler.probe(e.probes.buf_page_get);
        e.pool.access(table.data_page(key), write);
    }

    /// Resolve one key against the version chain at this transaction's
    /// snapshot (mvcc read path — the lock manager is never consulted).
    /// `TooOld` aborts the transaction: its snapshot fell off a capped
    /// chain, so no consistent read is possible anymore.
    fn snapshot_read(
        &mut self,
        table: TableId,
        key: RowKey,
        snapshot: u64,
    ) -> Result<Option<Row>, EngineError> {
        let e = self.engine.clone();
        let t = e.catalog.table(table);
        e.mvcc_snapshot_reads.fetch_add(1, Ordering::Relaxed);
        if e.config.broken_snapshots {
            // Seeded bug (EngineConfig::broken_snapshots): read the newest
            // version regardless of stamp or writer — dirty reads.
            return Ok(t.get(key));
        }
        match t.read_version(key, snapshot, self.token.id.0) {
            VersionRead::Visible(row) => Ok(Some(row)),
            VersionRead::NotVisible => Ok(None),
            VersionRead::TooOld => {
                e.mvcc_too_old.fetch_add(1, Ordering::Relaxed);
                self.rollback();
                Err(EngineError::SnapshotTooOld)
            }
        }
    }

    /// Read a row: under a shared lock (s2pl), or lock-free against the
    /// begin-timestamp snapshot (mvcc).
    pub fn read(&mut self, table: TableId, key: RowKey) -> Result<Row, EngineError> {
        self.check_active()?;
        self.statement_rtt();
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.row_search_for_mysql);
        if let Some(snapshot) = self.snapshot {
            let t = e.catalog.table(table);
            self.index_descent(&t, key);
            self.page_access(&t, key, false);
            return self
                .snapshot_read(table, key, snapshot)?
                .ok_or(EngineError::RowNotFound { table, key });
        }
        self.acquire(Self::table_lock_obj(table), LockMode::IS)?;
        let t = e.catalog.table(table);
        self.index_descent(&t, key);
        self.acquire(Self::row_lock_obj(table, key), LockMode::S)?;
        self.page_access(&t, key, false);
        t.get(key).ok_or(EngineError::RowNotFound { table, key })
    }

    /// Read a row under an exclusive lock (select ... for update).
    pub fn read_for_update(&mut self, table: TableId, key: RowKey) -> Result<Row, EngineError> {
        self.check_active()?;
        self.statement_rtt();
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.row_search_for_mysql);
        self.acquire(Self::table_lock_obj(table), LockMode::IX)?;
        let t = e.catalog.table(table);
        self.index_descent(&t, key);
        self.acquire(Self::row_lock_obj(table, key), LockMode::X)?;
        self.page_access(&t, key, false);
        t.get(key).ok_or(EngineError::RowNotFound { table, key })
    }

    /// Update a row in place under an exclusive lock.
    pub fn update<F: FnOnce(&mut Row)>(
        &mut self,
        table: TableId,
        key: RowKey,
        mutate: F,
    ) -> Result<(), EngineError> {
        self.check_active()?;
        self.statement_rtt();
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.row_upd_step);
        self.acquire(Self::table_lock_obj(table), LockMode::IX)?;
        let t = e.catalog.table(table);
        self.index_descent(&t, key);
        self.acquire(Self::row_lock_obj(table, key), LockMode::X)?;
        self.page_access(&t, key, true);
        // A current read: the X lock means no other writer is in flight,
        // so `get` is the committed latest (or this txn's own write) in
        // both modes — write-write conflicts keep 2PL semantics.
        let mut row = t.get(key).ok_or(EngineError::RowNotFound { table, key })?;
        if self.snapshot.is_none() {
            self.undo.push(Undo::Update {
                table,
                key,
                old: row.clone(),
            });
        }
        mutate(&mut row);
        self.redo_bytes += row_bytes(&row) * e.config.redo_amplification;
        self.redo_records.push(LogRecord::Update {
            txn: self.token.id.0,
            table: table.0,
            key,
            after: row.clone(),
        });
        if self.snapshot.is_some() {
            // Tentative version, stamped with the commit ts at commit.
            if t.write_version(key, row, self.token.id.0) {
                self.writes.push((table, key));
            }
        } else {
            t.put(key, row);
        }
        Ok(())
    }

    /// Insert a row; returns its assigned key.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<RowKey, EngineError> {
        self.check_active()?;
        self.statement_rtt();
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.row_ins_clust_index_entry_low);
        self.acquire(Self::table_lock_obj(table), LockMode::IX)?;
        let t = e.catalog.table(table);
        let key = t.allocate_key();
        self.acquire(Self::row_lock_obj(table, key), LockMode::X)?;
        // Inherent body variance: periodic page splits cost extra CPU
        // (Section 4.1's `row_ins_clust_index_entry_low` finding).
        if e.config.split_period > 0 && key.is_multiple_of(e.config.split_period) {
            cpu_work(e.config.page_split_work);
        } else {
            cpu_work(e.config.work_per_index_level);
        }
        self.page_access(&t, key, true);
        self.redo_bytes += row_bytes(&row) * e.config.redo_amplification;
        self.redo_records.push(LogRecord::Insert {
            txn: self.token.id.0,
            table: table.0,
            key,
            row: row.clone(),
        });
        if self.snapshot.is_some() {
            // Invisible to concurrent snapshots until stamped at commit.
            if t.write_version(key, row, self.token.id.0) {
                self.writes.push((table, key));
            }
        } else {
            self.undo.push(Undo::Insert { table, key });
            t.put(key, row);
        }
        Ok(key)
    }

    /// Range scan `[lo, hi)` with shared locks on each returned row; in the
    /// Postgres personality also takes predicate locks on the range.
    pub fn scan(
        &mut self,
        table: TableId,
        lo: RowKey,
        hi: RowKey,
        limit: usize,
    ) -> Result<Vec<(RowKey, Row)>, EngineError> {
        self.check_active()?;
        self.statement_rtt();
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.row_search_for_mysql);
        if let Some(snapshot) = self.snapshot {
            // Snapshot scan: no table/record locks, and no predicate locks
            // either — visibility replaces the phantom guard, since keys
            // committed after the snapshot simply are not visible.
            let t = e.catalog.table(table);
            self.index_descent(&t, lo);
            let keys = t.range_keys(lo, hi, limit);
            let mut out = Vec::with_capacity(keys.len());
            for key in keys {
                self.page_access(&t, key, false);
                if let Some(row) = self.snapshot_read(table, key, snapshot)? {
                    out.push((key, row));
                }
            }
            return Ok(out);
        }
        self.acquire(Self::table_lock_obj(table), LockMode::IS)?;
        let t = e.catalog.table(table);
        self.index_descent(&t, lo);
        if e.config.personality == Personality::Postgres {
            let mut preds = e.predicate.lock();
            for bucket in (lo / PREDICATE_BUCKET)..=(hi.saturating_sub(1) / PREDICATE_BUCKET) {
                let entry = preds.entry((table, bucket)).or_default();
                if !entry.contains(&self.token.id.0) {
                    entry.push(self.token.id.0);
                    self.predicate_buckets.push((table, bucket));
                }
            }
        }
        let keys = t.range_keys(lo, hi, limit);
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            self.acquire(Self::row_lock_obj(table, key), LockMode::S)?;
            self.page_access(&t, key, false);
            if let Some(row) = t.get(key) {
                out.push((key, row));
            }
        }
        Ok(out)
    }

    /// Commit: make redo durable per policy, release predicate locks
    /// (Postgres), then release record locks.
    pub fn commit(mut self) -> Result<(), EngineError> {
        self.check_active()?;
        let e = self.engine.clone();
        {
            let _span = e.profiler.probe(e.probes.trx_commit);
            if self.redo_bytes > 0 {
                match &e.wal {
                    WalBackend::Mysql(redo) => {
                        let mut records = std::mem::take(&mut self.redo_records);
                        records.push(LogRecord::Commit {
                            txn: self.token.id.0,
                        });
                        let typed: u64 = records.iter().map(LogRecord::encoded_len).sum();
                        let extra = self.redo_bytes.saturating_sub(typed);
                        let lsn = redo.append_records(records, extra);
                        redo.commit(lsn);
                    }
                    WalBackend::Pg(w) => {
                        // File mode: the pg writer models timing only, so
                        // the typed frames go straight to the segment log
                        // here, with an explicit durability barrier on the
                        // stripe we wrote (the writer's internal set choice
                        // flushes its own scratch device).
                        if let Some(wal) = &e.file_wal {
                            let mut records = std::mem::take(&mut self.redo_records);
                            records.push(LogRecord::Commit {
                                txn: self.token.id.0,
                            });
                            let stripe = (self.token.id.0 as usize) % wal.stripes();
                            for record in records {
                                wal.append_auto(
                                    stripe,
                                    &StampedRecord {
                                        end: Lsn(0),
                                        record,
                                    },
                                );
                            }
                            w.commit(self.redo_bytes);
                            wal.sync(stripe);
                        } else {
                            w.commit(self.redo_bytes);
                        }
                    }
                }
            }
            if e.config.personality == Personality::Postgres {
                self.release_predicate_locks();
            }
            // MVCC: stamp this transaction's tentative versions with the
            // next commit timestamp and publish it — all under the
            // snapshots mutex, so BEGIN never observes a timestamp whose
            // stamps are still being written, and still holding the X
            // locks, so no new writer can slip under an unstamped version.
            if !self.writes.is_empty() {
                let pins = e.snapshots.lock();
                let ts = e.commit_ts.load(Ordering::Relaxed) + 1;
                let floor = pins.keys().next().copied().unwrap_or(ts);
                let cap = e.config.mvcc_chain_cap;
                let mut reclaimed = 0u64;
                for (table, key) in std::mem::take(&mut self.writes) {
                    let t = e.catalog.table(table);
                    let (len, r) = t.commit_version(key, self.token.id.0, ts, floor, cap);
                    e.mvcc_chain_len.record(len as u64);
                    reclaimed += r;
                }
                e.commit_ts.store(ts, Ordering::Release);
                drop(pins);
                if reclaimed > 0 {
                    e.mvcc_gc_reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
                }
            }
        }
        if let Some(s) = self.snapshot.take() {
            e.unpin_snapshot(s);
        }
        e.locks.release_all(self.token.id);
        let commit_time = now_nanos();
        if e.config.record_age_remaining && !self.block_instants.is_empty() {
            let mut samples = e.age_remaining.lock();
            for &at in &self.block_instants {
                samples.push(AgeRemainingSample {
                    txn_type: self.ty,
                    age_ns: at.saturating_sub(self.token.birth) as f64,
                    remaining_ns: commit_time.saturating_sub(at) as f64,
                });
            }
        }
        e.commits.fetch_add(1, Ordering::Relaxed);
        e.commit_latency[txn_type_slot(self.ty)]
            .record(commit_time.saturating_sub(self.token.birth));
        self.score_prediction();
        self.finished = true;
        Ok(())
    }

    /// Score the BEGIN-time hot/cold prediction against what actually
    /// happened (predictive policy only). Runs exactly once per
    /// transaction: commit and rollback are mutually exclusive exits.
    fn score_prediction(&self) {
        let e = &self.engine;
        if e.predictor.is_some() {
            e.sched_prediction_total.fetch_add(1, Ordering::Relaxed);
            if self.predicted_hot == self.conflicted {
                e.sched_prediction_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Explicit rollback.
    pub fn abort(mut self) {
        if !self.finished {
            self.rollback();
        }
    }

    /// The `ReleasePredicateLocks` phase: drop this transaction's predicate
    /// entries, charging work per conflict discovered (Section 4.2).
    fn release_predicate_locks(&mut self) {
        let e = self.engine.clone();
        let _span = e.profiler.probe(e.probes.release_predicate_locks);
        let mut preds = e.predicate.lock();
        for (table, bucket) in self.predicate_buckets.drain(..) {
            if let Some(holders) = preds.get_mut(&(table, bucket)) {
                holders.retain(|&h| h != self.token.id.0);
                let conflicts = holders.len() as u64;
                cpu_work(64 * (1 + conflicts));
                if holders.is_empty() {
                    preds.remove(&(table, bucket));
                }
            }
        }
    }

    /// Undo all changes and release locks.
    fn rollback(&mut self) {
        if self.finished {
            return;
        }
        let e = self.engine.clone();
        self.redo_records.clear();
        for undo in self.undo.drain(..).rev() {
            match undo {
                Undo::Update { table, key, old } => {
                    e.catalog.table(table).put(key, old);
                }
                Undo::Insert { table, key } => {
                    e.catalog.table(table).remove(key);
                }
            }
        }
        // MVCC: pop this transaction's tentative versions (the committed
        // chain below them is untouched, so no undo images are needed),
        // then unpin the snapshot so GC's low-water mark can advance.
        for (table, key) in std::mem::take(&mut self.writes).into_iter().rev() {
            e.catalog.table(table).abort_version(key, self.token.id.0);
        }
        if let Some(s) = self.snapshot.take() {
            e.unpin_snapshot(s);
        }
        if e.config.personality == Personality::Postgres {
            let mut preds = e.predicate.lock();
            for (table, bucket) in self.predicate_buckets.drain(..) {
                if let Some(holders) = preds.get_mut(&(table, bucket)) {
                    holders.retain(|&h| h != self.token.id.0);
                    if holders.is_empty() {
                        preds.remove(&(table, bucket));
                    }
                }
            }
        }
        e.locks.release_all(self.token.id);
        e.aborts.fetch_add(1, Ordering::Relaxed);
        e.abort_latency[txn_type_slot(self.ty)]
            .record(now_nanos().saturating_sub(self.token.birth));
        self.score_prediction();
        self.finished = true;
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            self.rollback();
        }
        // Guards close in field order: root span, then the trace guard.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_core::Policy;

    fn fast_config() -> EngineConfig {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(20_000),
            ns_per_byte: 0.0,
            seed: 5,
        };
        EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(Policy::Fcfs)
        }
    }

    fn engine_with_table() -> (Arc<Engine>, TableId) {
        let e = Engine::new(fast_config());
        let t = e.catalog().create_table("t", 16);
        {
            let mut txn = e.begin(0);
            for i in 0..50 {
                txn.insert(t, vec![i, 0]).expect("insert");
            }
            txn.commit().expect("setup commit");
        }
        (e, t)
    }

    #[test]
    fn crud_roundtrip() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin(0);
        let row = txn.read(t, 5).expect("read");
        assert_eq!(row, vec![5, 0]);
        txn.update(t, 5, |r| r[1] = 99).expect("update");
        assert_eq!(txn.read(t, 5).expect("reread"), vec![5, 99]);
        let new_key = txn.insert(t, vec![123, 0]).expect("insert");
        assert!(new_key >= 50);
        txn.commit().expect("commit");
        assert_eq!(e.stats().commits, 2);
    }

    #[test]
    fn missing_row_errors_without_poisoning_txn() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin(0);
        let err = txn.read(t, 9999).expect_err("missing row");
        assert!(matches!(err, EngineError::RowNotFound { .. }));
        // Transaction still usable.
        assert!(txn.read(t, 1).is_ok());
        txn.commit().expect("commit");
    }

    #[test]
    fn drop_without_commit_rolls_back() {
        let (e, t) = engine_with_table();
        {
            let mut txn = e.begin(0);
            txn.update(t, 3, |r| r[1] = 7).expect("update");
            // dropped here
        }
        let mut check = e.begin(0);
        assert_eq!(check.read(t, 3).expect("read"), vec![3, 0], "rolled back");
        check.commit().expect("commit");
        assert_eq!(e.stats().aborts, 1);
    }

    #[test]
    fn abort_undoes_insert() {
        let (e, t) = engine_with_table();
        let before = e.catalog.table(t).len();
        let mut txn = e.begin(0);
        txn.insert(t, vec![1, 1]).expect("insert");
        txn.abort();
        assert_eq!(e.catalog.table(t).len(), before);
    }

    #[test]
    fn scan_returns_range() {
        let (e, t) = engine_with_table();
        let mut txn = e.begin(0);
        let rows = txn.scan(t, 10, 15, 100).expect("scan");
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, 10);
        txn.commit().expect("commit");
    }

    #[test]
    fn concurrent_increments_are_serializable() {
        let (e, t) = engine_with_table();
        let threads = 4;
        let per_thread = 10;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let e = e.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let mut txn = e.begin(0);
                        match txn.update(t, 0, |r| r[1] += 1) {
                            Ok(()) => {
                                txn.commit().expect("commit");
                                break;
                            }
                            Err(EngineError::Deadlock | EngineError::LockTimeout) => {
                                continue; // retry with a fresh txn
                            }
                            Err(other) => panic!("unexpected {other:?}"),
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let mut check = e.begin(0);
        let row = check.read(t, 0).expect("read");
        assert_eq!(row[1], (threads * per_thread) as i64);
        check.commit().expect("commit");
    }

    #[test]
    fn deadlocks_are_detected_and_recovered() {
        let (e, t) = engine_with_table();
        // Two transactions locking {1,2} in opposite orders, repeatedly.
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            for _ in 0..20 {
                let mut txn = e2.begin(0);
                if txn.update(t, 1, |r| r[1] += 1).is_ok()
                    && txn.update(t, 2, |r| r[1] += 1).is_ok()
                {
                    let _ = txn.commit();
                }
            }
        });
        for _ in 0..20 {
            let mut txn = e.begin(0);
            if txn.update(t, 2, |r| r[1] += 1).is_ok() && txn.update(t, 1, |r| r[1] += 1).is_ok() {
                let _ = txn.commit();
            }
        }
        h.join().expect("worker");
        // No hang is the main assertion; typically some deadlocks occurred.
        let s = e.stats();
        assert!(s.commits > 0);
        // Rows 1 and 2 saw the same number of successful +1s.
        let mut check = e.begin(0);
        let r1 = check.read(t, 1).expect("r1");
        let r2 = check.read(t, 2).expect("r2");
        assert_eq!(r1[1], r2[1], "atomicity under deadlock aborts");
        check.commit().expect("commit");
    }

    #[test]
    fn read_only_commit_skips_wal() {
        let (e, t) = engine_with_table();
        let flushes_before = e.redo_stats().expect("mysql").flushes;
        let mut txn = e.begin(0);
        txn.read(t, 1).expect("read");
        txn.commit().expect("commit");
        assert_eq!(e.redo_stats().expect("mysql").flushes, flushes_before);
    }

    #[test]
    fn postgres_personality_predicate_locks_cycle() {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(20_000),
            ns_per_byte: 0.0,
            seed: 5,
        };
        let cfg = EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::postgres()
        };
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..10 {
                setup.insert(t, vec![i]).expect("insert");
            }
            setup.commit().expect("commit");
        }
        let mut txn = e.begin(0);
        txn.scan(t, 0, 10, 100).expect("scan");
        assert!(!e.predicate.lock().is_empty(), "predicate lock registered");
        txn.commit().expect("commit");
        assert!(e.predicate.lock().is_empty(), "predicate locks released");
        assert!(e.pg_wal_stats().is_some());
        assert!(e.redo_stats().is_none());
    }

    #[test]
    fn age_remaining_sampling() {
        let mut cfg = fast_config();
        cfg.record_age_remaining = true;
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            setup.insert(t, vec![0, 0]).expect("insert");
            setup.commit().expect("commit");
        }
        // Create one blocking wait.
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            let mut a = e2.begin(1);
            a.update(t, 0, |r| r[1] += 1).expect("lock");
            std::thread::sleep(std::time::Duration::from_millis(10));
            a.commit().expect("commit");
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        let mut b = e.begin(2);
        b.update(t, 0, |r| r[1] += 1).expect("blocked then granted");
        b.commit().expect("commit");
        h.join().expect("holder");
        let samples = e.drain_age_remaining();
        assert!(!samples.is_empty(), "blocking produced a sample");
        let s = samples
            .iter()
            .find(|s| s.txn_type == 2)
            .expect("blocked txn sampled");
        assert!(s.remaining_ns > 0.0);
    }

    fn mvcc_config() -> EngineConfig {
        EngineConfig {
            concurrency: Concurrency::Mvcc,
            ..fast_config()
        }
    }

    #[test]
    fn mvcc_snapshot_reads_bypass_locks_and_skip_writers() {
        let e = Engine::new(mvcc_config());
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..10 {
                setup.insert(t, vec![i, 0]).expect("insert");
            }
            setup.commit().expect("setup");
        }
        // Writer holds an X lock on key 5 across the reader's statements.
        let mut w = e.begin(0);
        w.update(t, 5, |r| r[1] = 99).expect("update");
        let acquires_before = e.locks().stats().acquires;
        let mut r = e.begin(0);
        // Under s2pl this read would block on the X lock; here it returns
        // the committed version immediately, without touching the manager.
        assert_eq!(r.read(t, 5).expect("read"), vec![5, 0]);
        assert_eq!(r.scan(t, 0, 10, 100).expect("scan").len(), 10);
        assert_eq!(
            e.locks().stats().acquires,
            acquires_before,
            "snapshot reads took no locks"
        );
        w.commit().expect("writer commit");
        assert_eq!(
            r.read(t, 5).expect("reread"),
            vec![5, 0],
            "repeatable read: commit after my begin stays invisible"
        );
        r.commit().expect("reader commit");
        let mut r2 = e.begin(0);
        assert_eq!(r2.read(t, 5).expect("read"), vec![5, 99], "fresh snapshot");
        r2.commit().expect("commit");
        assert_eq!(e.active_snapshots(), 0, "all snapshots unpinned");
    }

    #[test]
    fn mvcc_insert_invisible_until_commit_and_to_older_snapshots() {
        let e = Engine::new(mvcc_config());
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..3 {
                setup.insert(t, vec![i]).expect("insert");
            }
            setup.commit().expect("setup");
        }
        let mut r = e.begin(0);
        let mut w = e.begin(0);
        let k = w.insert(t, vec![7]).expect("insert");
        assert!(matches!(r.read(t, k), Err(EngineError::RowNotFound { .. })));
        assert!(
            r.scan(t, 0, k + 1, 100)
                .expect("scan")
                .iter()
                .all(|(key, _)| *key != k),
            "tentative insert filtered from scans"
        );
        w.commit().expect("writer commit");
        assert!(
            matches!(r.read(t, k), Err(EngineError::RowNotFound { .. })),
            "committed insert still invisible to the older snapshot"
        );
        r.commit().expect("reader commit");
        let mut r2 = e.begin(0);
        assert_eq!(r2.read(t, k).expect("read"), vec![7]);
        r2.commit().expect("commit");
    }

    #[test]
    fn mvcc_rollback_restores_chain_and_unpins() {
        let e = Engine::new(mvcc_config());
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            setup.insert(t, vec![0, 0]).expect("insert");
            setup.commit().expect("setup");
        }
        let before = e.catalog.table(t).len();
        {
            let mut txn = e.begin(0);
            txn.update(t, 0, |r| r[1] = 5).expect("update");
            txn.insert(t, vec![9, 9]).expect("insert");
            assert_eq!(e.active_snapshots(), 1);
            // dropped: rollback
        }
        assert_eq!(e.active_snapshots(), 0, "rollback unpinned the snapshot");
        assert_eq!(e.catalog.table(t).len(), before, "insert vanished");
        assert_eq!(e.catalog.table(t).chain_len(0), 1, "tentative popped");
        let mut check = e.begin(0);
        assert_eq!(check.read(t, 0).expect("read"), vec![0, 0]);
        check.commit().expect("commit");
    }

    #[test]
    fn mvcc_chain_cap_forces_snapshot_too_old() {
        let mut cfg = mvcc_config();
        cfg.mvcc_chain_cap = 2;
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            setup.insert(t, vec![0, 0]).expect("insert");
            setup.commit().expect("setup");
        }
        let mut old = e.begin(0); // pins the pre-update snapshot
        for i in 0..5 {
            let mut w = e.begin(0);
            w.update(t, 0, |r| r[1] = i).expect("update");
            w.commit().expect("commit");
        }
        let err = old
            .read(t, 0)
            .expect_err("snapshot fell off the capped chain");
        assert_eq!(err, EngineError::SnapshotTooOld);
        assert!(
            matches!(old.read(t, 0), Err(EngineError::TxnFinished)),
            "too-old rolled the transaction back"
        );
        drop(old);
        assert_eq!(e.active_snapshots(), 0);
        let snap = e.metrics_snapshot();
        assert!(snap.counters.get("mvcc.gc_reclaimed_total").copied() > Some(0));
        assert_eq!(snap.counters.get("mvcc.snapshot_too_old_total"), Some(&1));
    }

    #[test]
    fn broken_snapshots_bug_exposes_dirty_reads() {
        let mut cfg = mvcc_config();
        cfg.broken_snapshots = true;
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            setup.insert(t, vec![0, 0]).expect("insert");
            setup.commit().expect("setup");
        }
        let mut w = e.begin(0);
        w.update(t, 0, |r| r[1] = 42).expect("update");
        let mut r = e.begin(0);
        assert_eq!(
            r.read(t, 0).expect("read"),
            vec![0, 42],
            "seeded bug: uncommitted write is visible"
        );
        w.abort();
        r.commit().expect("commit");
    }

    #[test]
    fn profiling_produces_traces_with_paper_functions() {
        let (e, t) = engine_with_table();
        e.enable_full_profiling();
        for i in 0..5 {
            let mut txn = e.begin(0);
            txn.read(t, i).expect("read");
            txn.update(t, i, |r| r[1] += 1).expect("update");
            txn.commit().expect("commit");
        }
        let traces = e.profiler().drain_traces();
        assert_eq!(traces.len(), 5);
        let g = e.profiler().graph();
        let names: std::collections::HashSet<&str> = traces
            .iter()
            .flat_map(|t| t.events.iter().map(|ev| g.name(ev.func)))
            .collect();
        for expected in [
            "execute_transaction",
            "row_search_for_mysql",
            "row_upd_step",
            "btr_cur_search_to_nth_level",
            "buf_page_get",
            "trx_commit",
        ] {
            assert!(names.contains(expected), "missing {expected}: {names:?}");
        }
    }

    #[test]
    fn predictor_absent_unless_policy_is_predictive() {
        let (e, _) = engine_with_table();
        assert!(e.predictor().is_none());
        let snap = e.metrics_snapshot();
        assert!(!snap.counters.contains_key("sched.predicted_conflicts"));
        assert!(!snap.counters.contains_key("sched.prediction_hit_rate"));
    }

    #[test]
    fn predictive_engine_learns_and_stamps_footprints() {
        let cfg = EngineConfig {
            lock_policy: Policy::Predictive,
            ..fast_config()
        };
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            for i in 0..8 {
                setup.insert(t, vec![i, 0]).expect("insert");
            }
            setup.commit().expect("setup");
        }
        let p = e.predictor().expect("predictive policy has a predictor").clone();
        assert_eq!(e.begin_with_keys(1, &[(t, 3)]).footprint(), 0, "no history yet");
        // Teach the predictor that key 3 is hot, straight through its
        // observation API (the engine feeds it the same way from waits).
        for _ in 0..8 {
            p.observe(1, Txn::row_lock_obj(t, 3), WEIGHT_ABORT);
        }
        let hot = e.begin_with_keys(1, &[(t, 3)]);
        assert!(hot.footprint() > 0, "learned footprint stamped at BEGIN");
        assert!(hot.predicted_hot());
        drop(hot);
        let snap = e.metrics_snapshot();
        assert!(snap.counters["sched.predicted_conflicts"] >= 1);
        assert!(snap.counters["sched.prediction_total"] >= 1);
        assert_eq!(snap.counters["sched.conflict_events"], 8);
        assert!(snap.counters["sched.prediction_hit_rate"] <= 100);
    }

    #[test]
    fn predictive_engine_observes_real_lock_waits() {
        let cfg = EngineConfig {
            lock_policy: Policy::Predictive,
            lock_timeout: Some(Duration::from_secs(5)),
            ..fast_config()
        };
        let e = Engine::new(cfg);
        let t = e.catalog().create_table("t", 16);
        {
            let mut setup = e.begin(0);
            setup.insert(t, vec![0, 0]).expect("insert");
            setup.commit().expect("setup");
        }
        let p = e.predictor().expect("predictor").clone();
        // Writer holds the row; a second thread must wait on it.
        let mut holder = e.begin(0);
        holder.update(t, 0, |r| r[1] = 1).expect("hold X lock");
        let e2 = e.clone();
        let waiter = std::thread::spawn(move || {
            let mut w = e2.begin(0);
            w.update(t, 0, |r| r[1] = 2).expect("eventually granted");
            w.commit().expect("commit");
        });
        while e.locks().outstanding().1 == 0 {
            std::thread::yield_now();
        }
        holder.commit().expect("release");
        waiter.join().expect("waiter thread");
        assert!(p.events() >= 1, "the wait fed the predictor");
        let snap = e.metrics_snapshot();
        assert!(snap.counters["sched.conflict_events"] >= 1);
    }
}
