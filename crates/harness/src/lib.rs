//! # tpd-harness — deterministic simulation testing for the mini engines
//!
//! FoundationDB-style simulation testing applied to this repo's engines:
//! run real transactions against a real [`Engine`](tpd_engine::Engine), but
//! make *time*, *scheduling*, and *failure* all functions of one seed so
//! that any failure replays exactly.
//!
//! The pieces:
//!
//! * [`history`] — the recorded operation stream and its FNV digest (the
//!   bit-for-bit reproducibility witness);
//! * [`checker`] — a direct-serialization-graph cycle checker plus G1a/G1b
//!   detection over one epoch's history, with minimized failure traces;
//! * [`torture`] — the seeded driver: statement-level interleaving across
//!   logical sessions, periodic [`simulate_crash`] / [`recover_from`]
//!   cycles, durability auditing of every acknowledged commit, and fault
//!   injection (device stalls/spikes, torn WAL tails, commit-ack bugs);
//! * [`crashpoint`] — the file-backend crash-point matrix: kill the WAL
//!   device at every frame boundary and prove recovery is complete,
//!   sound, and idempotent.
//!
//! The driver deliberately supports two *seeded bugs* —
//! `skip_locking` and `ack_before_flush` — so the harness can prove its
//! own checkers catch real violations (a checker that never fires is
//! untested).
//!
//! [`simulate_crash`]: tpd_engine::Engine::simulate_crash
//! [`recover_from`]: tpd_engine::Engine::recover_from

#![warn(missing_docs)]

pub mod checker;
pub mod crashpoint;
pub mod history;
pub mod torture;

pub use checker::{check, minimized_trace, CheckerReport, CheckerViolation, EdgeKind, EdgeWitness};
pub use crashpoint::{run_crash_matrix, CrashCase, CrashMatrixConfig, CrashMatrixReport};
pub use history::{digest, encode_value, OpKind, OpRecord, INIT_TXN};
pub use torture::{run_torture, TortureConfig, TortureReport, TortureViolation};
