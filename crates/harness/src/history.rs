//! Operation histories: the complete, replayable record of everything a
//! torture run did.
//!
//! Every statement the driver executes appends one [`OpRecord`]. The
//! history is the single source of truth for the run: the serializability
//! checker consumes it, the durability audit cross-references it against
//! crash snapshots, and the FNV [`digest`] over it is the
//! bit-for-bit-reproducibility witness (same seed ⇒ same digest).

/// Transaction serial `0` denotes the initial database state: every key
/// starts at value `0`, "written" by this virtual transaction.
pub const INIT_TXN: u64 = 0;

/// What one statement did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Observed `value` at `(table, key)`.
    Read {
        /// Torture-table index.
        table: usize,
        /// Row key.
        key: u64,
        /// Value observed (column 0).
        value: i64,
    },
    /// Overwrote `(table, key)`: saw `prev`, installed `value`.
    ///
    /// `prev` is the in-place before-image, so the write records capture
    /// the *actual* version order of every key — exactly what the checker
    /// needs to build direct serialization-graph edges.
    Write {
        /// Torture-table index.
        table: usize,
        /// Row key.
        key: u64,
        /// Before-image (column 0).
        prev: i64,
        /// Installed value (column 0).
        value: i64,
    },
    /// Inserted a fresh row at engine-assigned `key` with `value`.
    Insert {
        /// Torture-table index.
        table: usize,
        /// Assigned row key.
        key: u64,
        /// Inserted value (column 0).
        value: i64,
    },
    /// The transaction committed (acknowledged to the "client").
    Commit,
    /// The transaction aborted: voluntarily, as a deadlock/timeout victim,
    /// or because a crash cut it off.
    Abort,
}

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Crash epoch (incremented at every simulated crash).
    pub epoch: u32,
    /// Logical session that issued the statement.
    pub session: usize,
    /// Run-unique transaction serial (1-based; `0` is [`INIT_TXN`]).
    pub txn: u64,
    /// Statement index within the transaction.
    pub seq: u32,
    /// The operation.
    pub kind: OpKind,
}

impl std::fmt::Display for OpRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "e{} s{} T{}#{} ",
            self.epoch, self.session, self.txn, self.seq
        )?;
        match self.kind {
            OpKind::Read { table, key, value } => write!(f, "R t{table}[{key}] -> {value}"),
            OpKind::Write {
                table,
                key,
                prev,
                value,
            } => write!(f, "W t{table}[{key}] {prev} -> {value}"),
            OpKind::Insert { table, key, value } => write!(f, "I t{table}[{key}] = {value}"),
            OpKind::Commit => write!(f, "COMMIT"),
            OpKind::Abort => write!(f, "ABORT"),
        }
    }
}

/// The unique value transaction `txn` writes at its `seq`-th statement.
/// Uniqueness across the whole run makes every observed value attributable
/// to exactly one writer.
pub fn encode_value(txn: u64, seq: u32) -> i64 {
    (txn as i64) << 12 | (seq as i64 & 0xFFF)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a digest of a history. Two runs with the same seed must produce
/// the same digest — this is the reproducibility contract CI checks.
pub fn digest(history: &[OpRecord]) -> u64 {
    let mut h = FNV_OFFSET;
    for r in history {
        h = fnv(h, r.epoch as u64);
        h = fnv(h, r.session as u64);
        h = fnv(h, r.txn);
        h = fnv(h, r.seq as u64);
        let (tag, a, b, c, d) = match r.kind {
            OpKind::Read { table, key, value } => (1, table as u64, key, value as u64, 0),
            OpKind::Write {
                table,
                key,
                prev,
                value,
            } => (2, table as u64, key, prev as u64, value as u64),
            OpKind::Insert { table, key, value } => (3, table as u64, key, value as u64, 0),
            OpKind::Commit => (4, 0, 0, 0, 0),
            OpKind::Abort => (5, 0, 0, 0, 0),
        };
        for w in [tag, a, b, c, d] {
            h = fnv(h, w);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_values_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for txn in 1..200u64 {
            for seq in 0..10u32 {
                assert!(seen.insert(encode_value(txn, seq)));
            }
        }
    }

    #[test]
    fn digest_is_order_sensitive() {
        let a = OpRecord {
            epoch: 0,
            session: 0,
            txn: 1,
            seq: 0,
            kind: OpKind::Read {
                table: 0,
                key: 3,
                value: 0,
            },
        };
        let b = OpRecord { txn: 2, ..a };
        assert_ne!(digest(&[a, b]), digest(&[b, a]));
        assert_eq!(digest(&[a, b]), digest(&[a, b]));
    }

    #[test]
    fn display_is_compact() {
        let r = OpRecord {
            epoch: 1,
            session: 2,
            txn: 7,
            seq: 3,
            kind: OpKind::Write {
                table: 0,
                key: 9,
                prev: 4,
                value: 5,
            },
        };
        assert_eq!(r.to_string(), "e1 s2 T7#3 W t0[9] 4 -> 5");
    }
}
