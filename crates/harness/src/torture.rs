//! The seeded torture driver.
//!
//! One OS thread, `sessions` logical sessions, a virtual clock. The driver
//! interleaves *statements* from concurrent transactions at seeded points,
//! records every operation, periodically crashes the engine
//! ([`Engine::simulate_crash`]) and recovers into a fresh one, and audits:
//!
//! * **durability** — every commit whose acknowledgement implied
//!   durability (eager flush, or a lazy commit followed by a flush) must
//!   survive the crash;
//! * **recovery correctness** — the recovered state must equal the
//!   epoch-start checkpoint plus exactly the writes of the transactions
//!   the durable log prefix committed, in order;
//! * **serializability** — each epoch's committed history must be
//!   cycle-free (see [`crate::checker`]).
//!
//! Determinism: the only timing source is the virtual clock, all
//! scheduling randomness comes from one seeded RNG, and conflicting lock
//! requests fail immediately (`lock_timeout = 0`) instead of blocking on
//! wall-clock waits. Same seed ⇒ identical operation history, digest, and
//! verdict — a failing seed is a replayable artifact.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_common::clock::VirtualClock;
use tpd_common::dist::ServiceTime;
use tpd_common::FaultPlan;
use tpd_engine::{Concurrency, DiskBackend, Engine, EngineConfig, Policy, TableId, Txn};
use tpd_metrics::MetricsSnapshot;
use tpd_wal::{AppendMode, FlushPolicy, WalFaultPlan};
use tpd_workloads::{install_torture_schema, TortureMix, TortureOp, TortureTxn};

use crate::checker::{self, CheckerViolation};
use crate::history::{digest, encode_value, OpKind, OpRecord};

/// Torture-run parameters.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Master seed: drives scheduling, plans, faults, and abort decisions.
    pub seed: u64,
    /// Transactions to complete (commit or abort) before stopping.
    pub txns: u64,
    /// Concurrent logical sessions.
    pub sessions: usize,
    /// Crash + recover every this many completed transactions (0 = never).
    pub crash_every: u64,
    /// For lazy flush policies: flush the WAL every this many completed
    /// transactions (0 = never). Ignored under eager flush.
    pub flush_every: u64,
    /// Probability a transaction voluntarily aborts instead of committing.
    pub abort_prob: f64,
    /// Inject device faults (stalls, latency spikes) and torn WAL tails.
    pub faults: bool,
    /// Redo flush policy under test.
    pub flush_policy: FlushPolicy,
    /// Transaction shape mix.
    pub mix: TortureMix,
    /// Concurrency-control mode under test: strict 2PL (default) or
    /// snapshot reads over version chains (`mvcc`). Both must pass the
    /// same serializability checker.
    pub concurrency: Concurrency,
    /// Seeded bug: skip all lock acquisition (the checker must catch the
    /// resulting anomalies).
    pub skip_locking: bool,
    /// Seeded bug: mvcc snapshot reads ignore visibility and return the
    /// newest (possibly uncommitted) version — the checker must catch the
    /// dirty/non-repeatable reads. Only meaningful with
    /// [`Concurrency::Mvcc`].
    pub chaos_snapshots: bool,
    /// Seeded bug: acknowledge commits before the WAL flush completes (the
    /// durability audit must catch the loss after a crash).
    pub ack_before_flush: bool,
    /// Simulated client round trip before each statement. Under the
    /// harness's virtual clock this is a deterministic logical-time bump
    /// drawn from each transaction's seeded RNG, so enabling it must not
    /// perturb replay determinism.
    pub statement_rtt: Option<ServiceTime>,
    /// WAL append path under test (mutex vs reserve-then-copy).
    pub wal_append: AppendMode,
    /// Parallel redo logs (lockfree append only; MySQL personality).
    pub log_writers: usize,
    /// WAL device: [`DiskBackend::Sim`] (default; crashes are simulated
    /// via [`Engine::simulate_crash`]) or [`DiskBackend::File`] (real
    /// segment files under `data_dir`; a crash abandons the engine and
    /// recovery re-reads the segments, exactly like a process restart).
    pub disk_backend: DiskBackend,
    /// Segment directory for [`DiskBackend::File`]. Must start empty: the
    /// driver's audit model assumes the initial state is all zeros.
    pub data_dir: Option<PathBuf>,
    /// Lock scheduling policy under test. [`Policy::Predictive`] also
    /// makes the driver declare each transaction's planned keys at BEGIN
    /// so the conflict predictor has a footprint to score.
    pub lock_policy: Policy,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            seed: 42,
            txns: 200,
            sessions: 4,
            crash_every: 60,
            flush_every: 7,
            abort_prob: 0.05,
            faults: false,
            flush_policy: FlushPolicy::Eager,
            mix: TortureMix::default(),
            concurrency: Concurrency::S2pl,
            skip_locking: false,
            chaos_snapshots: false,
            ack_before_flush: false,
            statement_rtt: None,
            wal_append: AppendMode::Lockfree,
            log_writers: 1,
            disk_backend: DiskBackend::Sim,
            data_dir: None,
            lock_policy: Policy::Fcfs,
        }
    }
}

/// A violation found by the torture run.
#[derive(Debug, Clone)]
pub enum TortureViolation {
    /// The epoch's committed history is not serializable (or shows G1
    /// anomalies).
    Serializability {
        /// Epoch the anomaly occurred in.
        epoch: u32,
        /// The checker finding.
        violation: CheckerViolation,
        /// Minimized trace: only the implicated transactions and keys.
        trace: Vec<String>,
    },
    /// An acknowledged-durable commit did not survive the crash.
    DurabilityLoss {
        /// Epoch of the crash.
        epoch: u32,
        /// Harness serial of the lost transaction.
        txn: u64,
    },
    /// Recovered state diverged from checkpoint + durable committed writes.
    RecoveryMismatch {
        /// Epoch of the crash.
        epoch: u32,
        /// Torture-table index.
        table: usize,
        /// Row key.
        key: u64,
        /// Expected value.
        expected: i64,
        /// Value actually recovered (`None` = row missing).
        found: Option<i64>,
    },
}

impl std::fmt::Display for TortureViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TortureViolation::Serializability {
                epoch, violation, ..
            } => {
                write!(f, "[epoch {epoch}] {violation}")
            }
            TortureViolation::DurabilityLoss { epoch, txn } => write!(
                f,
                "[epoch {epoch}] durability loss: commit of T{txn} was acknowledged as durable but did not survive the crash"
            ),
            TortureViolation::RecoveryMismatch {
                epoch,
                table,
                key,
                expected,
                found,
            } => write!(
                f,
                "[epoch {epoch}] recovery mismatch at t{table}[{key}]: expected {expected}, recovered {found:?}"
            ),
        }
    }
}

/// What a torture run produced.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// The seed that produced this run.
    pub seed: u64,
    /// FNV digest of the full operation history (reproducibility witness).
    pub digest: u64,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transactions (voluntary, conflict, or crash-killed).
    pub aborts: u64,
    /// Simulated crashes survived.
    pub crashes: u32,
    /// Operations recorded.
    pub ops: usize,
    /// Violations found (empty = the run passed).
    pub violations: Vec<TortureViolation>,
    /// Engine metrics merged across every crash epoch. Under the virtual
    /// clock this is a pure function of the seed; its JSON rendering is a
    /// second reproducibility witness alongside [`TortureReport::digest`].
    pub metrics: MetricsSnapshot,
}

impl TortureReport {
    /// Whether the run found no violations.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable failure report: the offending seed plus each
    /// violation with its minimized trace.
    pub fn render_failures(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "torture run FAILED: seed {} ({} violations, digest {:016x})",
            self.seed,
            self.violations.len(),
            self.digest
        );
        for v in &self.violations {
            let _ = writeln!(out, "- {v}");
            if let TortureViolation::Serializability { trace, .. } = v {
                for line in trace {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
        out
    }
}

struct Session {
    txn: Txn,
    serial: u64,
    plan: TortureTxn,
    at: usize,
    seq: u32,
    /// Whether the transaction wrote anything (read-only commits leave no
    /// WAL trace, so they make no durability claim).
    wrote: bool,
}

struct Driver<'a> {
    cfg: &'a TortureConfig,
    engine: Arc<Engine>,
    tables: Vec<TableId>,
    history: Vec<OpRecord>,
    epoch: u32,
    epoch_start: usize,
    /// Harness serial -> engine txn id, this epoch.
    engine_of: BTreeMap<u64, u64>,
    /// Serials whose commit acknowledgement implies durability.
    durable_claims: BTreeSet<u64>,
    /// Lazy-policy commits not yet covered by a flush.
    unflushed_commits: Vec<u64>,
    /// Values at the start of the epoch (recovered/initial state).
    checkpoint: BTreeMap<(usize, u64), i64>,
    violations: Vec<TortureViolation>,
    commits: u64,
    aborts: u64,
    crashes: u32,
    /// Metrics folded in from engines retired at each crash.
    metrics: MetricsSnapshot,
}

fn build_engine(cfg: &TortureConfig) -> (Arc<Engine>, Vec<TableId>) {
    let mut ec = EngineConfig::mysql(cfg.lock_policy);
    // Conflicting lock requests fail immediately instead of blocking: the
    // driver is single-threaded, so a blocked session would deadlock the
    // scheduler — and try-lock conflicts are deterministic.
    ec.lock_timeout = Some(Duration::ZERO);
    ec.lock_shards = 1;
    // Small pool: exercise eviction, writeback, and the LLU/ratio debug
    // invariants in tpd-storage.
    ec.pool.frames = 64;
    ec.flush_policy = cfg.flush_policy;
    // Background flusher threads would do timing off the virtual-clock
    // thread; the driver flushes at seeded points instead.
    ec.wal_manual_flush = true;
    ec.seed = cfg.seed;
    ec.concurrency = cfg.concurrency;
    ec.skip_locking = cfg.skip_locking;
    ec.broken_snapshots = cfg.chaos_snapshots;
    ec.statement_rtt = cfg.statement_rtt.clone();
    ec = ec.with_wal_append(cfg.wal_append);
    if cfg.wal_append == AppendMode::Lockfree {
        ec = ec.with_log_writers(cfg.log_writers);
    }
    if cfg.faults {
        ec.data_faults = Some(FaultPlan::chaos(cfg.seed ^ 0xD15C));
        ec.log_faults = Some(FaultPlan::chaos(cfg.seed ^ 0x10D1));
    }
    ec.wal_faults = Some(WalFaultPlan {
        crash_at_lsn: None,
        torn_tail: cfg.faults,
        ack_before_flush: cfg.ack_before_flush,
    });
    if cfg.disk_backend == DiskBackend::File {
        let dir = cfg
            .data_dir
            .clone()
            .expect("disk_backend = file requires a data_dir");
        ec = ec.with_file_backend(dir);
    }
    let engine = Engine::new(ec);
    let tables = install_torture_schema(&engine, &cfg.mix);
    (engine, tables)
}

impl<'a> Driver<'a> {
    fn new(cfg: &'a TortureConfig) -> Self {
        let (engine, tables) = build_engine(cfg);
        // File mode: consume whatever the (expected-empty) directory held,
        // then write the bootstrap checkpoint — schema operations are not
        // logged, so a reopen can only recreate tables from a checkpoint.
        if cfg.disk_backend == DiskBackend::File {
            engine.recover_from_disk();
        }
        let mut checkpoint = BTreeMap::new();
        for t in 0..cfg.mix.tables {
            for k in 0..cfg.mix.keyspace {
                checkpoint.insert((t, k), 0);
            }
        }
        Driver {
            cfg,
            engine,
            tables,
            history: Vec::new(),
            epoch: 0,
            epoch_start: 0,
            engine_of: BTreeMap::new(),
            durable_claims: BTreeSet::new(),
            unflushed_commits: Vec::new(),
            checkpoint,
            violations: Vec::new(),
            commits: 0,
            aborts: 0,
            crashes: 0,
            metrics: MetricsSnapshot::new(),
        }
    }

    fn record(&mut self, session: usize, txn: u64, seq: u32, kind: OpKind) {
        self.history.push(OpRecord {
            epoch: self.epoch,
            session,
            txn,
            seq,
            kind,
        });
    }

    /// Execute the session's next statement. `Err` means the transaction is
    /// gone (conflict abort or execution error) and was rolled back.
    fn step(&mut self, sess: &mut Session, session: usize) -> Result<(), ()> {
        let op = sess.plan.ops[sess.at];
        let (serial, seq) = (sess.serial, sess.seq);
        let result: Result<Vec<OpKind>, ()> = match op {
            TortureOp::Read { table, key } => sess
                .txn
                .read(self.tables[table], key)
                .map(|row| {
                    vec![OpKind::Read {
                        table,
                        key,
                        value: row[0],
                    }]
                })
                .map_err(|_| ()),
            TortureOp::ReadForUpdate { table, key } => sess
                .txn
                .read_for_update(self.tables[table], key)
                .map(|row| {
                    vec![OpKind::Read {
                        table,
                        key,
                        value: row[0],
                    }]
                })
                .map_err(|_| ()),
            TortureOp::Update { table, key } => {
                let value = encode_value(serial, seq);
                let mut prev = 0i64;
                sess.txn
                    .update(self.tables[table], key, |r| {
                        prev = r[0];
                        r[0] = value;
                    })
                    .map(|()| {
                        vec![OpKind::Write {
                            table,
                            key,
                            prev,
                            value,
                        }]
                    })
                    .map_err(|_| ())
            }
            TortureOp::Insert { table } => {
                let value = encode_value(serial, seq);
                sess.txn
                    .insert(self.tables[table], vec![value])
                    .map(|key| vec![OpKind::Insert { table, key, value }])
                    .map_err(|_| ())
            }
            TortureOp::Scan { table, start, len } => sess
                .txn
                .scan(self.tables[table], start, start + len, len as usize)
                .map(|rows| {
                    rows.into_iter()
                        .map(|(key, row)| OpKind::Read {
                            table,
                            key,
                            value: row[0],
                        })
                        .collect()
                })
                .map_err(|_| ()),
        };
        match result {
            Ok(kinds) => {
                for kind in &kinds {
                    if matches!(kind, OpKind::Write { .. } | OpKind::Insert { .. }) {
                        sess.wrote = true;
                    }
                    self.record(session, serial, seq, *kind);
                }
                sess.at += 1;
                sess.seq += 1;
                Ok(())
            }
            Err(()) => Err(()),
        }
    }

    /// Crash the engine, audit durability and recovery, check the closed
    /// epoch for serializability, and continue on a recovered engine.
    fn crash_and_recover(&mut self, sessions: &mut [Option<Session>]) {
        // The crash kills in-flight sessions: their writes are uncommitted.
        for (s, slot) in sessions.iter_mut().enumerate() {
            if let Some(sess) = slot.take() {
                self.record(s, sess.serial, sess.seq, OpKind::Abort);
                drop(sess.txn); // rolls back in-memory state; WAL untouched
                self.aborts += 1;
            }
        }
        // The durable log prefix and the recovered engine. Sim mode
        // snapshots the redo buffer at the crash point and replays it into
        // a fresh engine seeded with the epoch-start checkpoint; file mode
        // abandons the old engine outright and re-reads the segment files,
        // exactly as a restarted process would (the on-disk checkpoint
        // stands in for the driver-side one).
        let (engine, tables, snapshot) = if self.cfg.disk_backend == DiskBackend::File {
            let (engine, tables) = build_engine(self.cfg);
            let rec = engine
                .recover_from_disk()
                .expect("file backend recovers on reopen");
            (engine, tables, rec.records)
        } else {
            let snapshot = self.engine.simulate_crash();
            // Recover into a fresh engine seeded with the epoch-start
            // checkpoint (the log only covers this epoch).
            let (engine, tables) = build_engine(self.cfg);
            for (&(t, k), &v) in &self.checkpoint {
                engine.catalog().table(tables[t]).put(k, vec![v]);
            }
            engine.recover_from(&snapshot);
            (engine, tables, snapshot)
        };
        let recovered_ids: HashSet<u64> = tpd_wal::committed_txns(&snapshot);

        // Durability audit: every acknowledged-durable commit must be in
        // the durable log prefix.
        for &serial in &self.durable_claims {
            let engine_id = self.engine_of[&serial];
            if !recovered_ids.contains(&engine_id) {
                self.violations.push(TortureViolation::DurabilityLoss {
                    epoch: self.epoch,
                    txn: serial,
                });
            }
        }

        // Expected post-recovery state: checkpoint + the writes of the
        // transactions the durable prefix committed, in history order
        // (single-threaded, so history order is commit order).
        let mut expected = self.checkpoint.clone();
        for r in &self.history[self.epoch_start..] {
            let recovered = self
                .engine_of
                .get(&r.txn)
                .is_some_and(|id| recovered_ids.contains(id));
            if !recovered {
                continue;
            }
            match r.kind {
                OpKind::Write {
                    table, key, value, ..
                }
                | OpKind::Insert { table, key, value } => {
                    expected.insert((table, key), value);
                }
                _ => {}
            }
        }

        for (&(t, k), &v) in &expected {
            let found = engine.catalog().table(tables[t]).get(k).map(|row| row[0]);
            if found != Some(v) {
                self.violations.push(TortureViolation::RecoveryMismatch {
                    epoch: self.epoch,
                    table: t,
                    key: k,
                    expected: v,
                    found,
                });
            }
        }

        self.check_epoch();
        // Every in-flight session was killed above, so the retiring engine
        // must hold no pinned snapshots (and no locks) — the GC low-water
        // mark audit.
        assert_eq!(
            self.engine.active_snapshots(),
            0,
            "crash epoch leaked snapshot pins"
        );
        // The crashed engine is about to be dropped; fold its metrics into
        // the whole-run view first.
        self.metrics.merge(&self.engine.metrics_snapshot());
        self.checkpoint = expected;
        self.engine = engine;
        self.tables = tables;
        self.engine_of.clear();
        self.durable_claims.clear();
        self.unflushed_commits.clear();
        self.epoch += 1;
        self.crashes += 1;
        self.epoch_start = self.history.len();
    }

    /// Serializability-check the current epoch's history slice.
    fn check_epoch(&mut self) {
        let slice = &self.history[self.epoch_start..];
        for violation in checker::check(slice).violations {
            let trace = checker::minimized_trace(slice, &violation);
            self.violations.push(TortureViolation::Serializability {
                epoch: self.epoch,
                violation,
                trace,
            });
        }
    }
}

/// Run one seeded torture run. Enables the virtual clock for the calling
/// thread for the duration (panics if one is already active).
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    assert!(cfg.sessions >= 1, "need at least one session");
    assert!(cfg.txns >= 1, "need at least one transaction");
    let _clock = VirtualClock::enable(1);
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    let mut d = Driver::new(cfg);
    let mut sessions: Vec<Option<Session>> = (0..cfg.sessions).map(|_| None).collect();
    let mut serial_next = 1u64;
    let mut completed = 0u64;
    let mut since_crash = 0u64;
    let mut since_flush = 0u64;

    while completed < cfg.txns {
        let s = rng.gen_range(0..cfg.sessions);
        if sessions[s].is_none() {
            let plan = cfg.mix.sample(&mut rng);
            // Declare the plan's point keys at BEGIN: under the
            // predictive policy the conflict predictor folds their
            // learned rates into the transaction's footprint; every
            // other policy ignores the sample.
            let declared: Vec<_> = plan
                .ops
                .iter()
                .filter_map(|op| match *op {
                    TortureOp::Read { table, key }
                    | TortureOp::ReadForUpdate { table, key }
                    | TortureOp::Update { table, key } => Some((d.tables[table], key)),
                    TortureOp::Insert { .. } | TortureOp::Scan { .. } => None,
                })
                .collect();
            let txn = d.engine.begin_with_keys(0, &declared);
            d.engine_of.insert(serial_next, txn.id());
            sessions[s] = Some(Session {
                txn,
                serial: serial_next,
                plan,
                at: 0,
                seq: 0,
                wrote: false,
            });
            serial_next += 1;
        }
        let mut sess = sessions[s].take().expect("just ensured");
        if sess.at < sess.plan.ops.len() {
            match d.step(&mut sess, s) {
                Ok(()) => sessions[s] = Some(sess),
                Err(()) => {
                    // Conflict abort (engine already rolled back) or
                    // execution error: finish the rollback and record it.
                    d.record(s, sess.serial, sess.seq, OpKind::Abort);
                    sess.txn.abort();
                    d.aborts += 1;
                    completed += 1;
                    since_crash += 1;
                }
            }
        } else {
            let serial = sess.serial;
            let seq = sess.seq;
            if rng.gen_bool(cfg.abort_prob) {
                d.record(s, serial, seq, OpKind::Abort);
                sess.txn.abort();
                d.aborts += 1;
            } else {
                let wrote = sess.wrote;
                match sess.txn.commit() {
                    Ok(()) => {
                        d.record(s, serial, seq, OpKind::Commit);
                        d.commits += 1;
                        // Read-only commits leave no WAL trace: nothing to
                        // claim, nothing to lose.
                        if wrote {
                            if matches!(cfg.flush_policy, FlushPolicy::Eager) {
                                // Eager acknowledgement claims durability.
                                d.durable_claims.insert(serial);
                            } else {
                                d.unflushed_commits.push(serial);
                            }
                        }
                    }
                    Err(_) => {
                        d.record(s, serial, seq, OpKind::Abort);
                        d.aborts += 1;
                    }
                }
            }
            completed += 1;
            since_crash += 1;
            since_flush += 1;
        }

        // Seeded flush points make lazy policies durable incrementally.
        if !matches!(cfg.flush_policy, FlushPolicy::Eager)
            && cfg.flush_every > 0
            && since_flush >= cfg.flush_every
        {
            d.engine.wal_flush_now();
            let flushed: Vec<u64> = d.unflushed_commits.drain(..).collect();
            d.durable_claims.extend(flushed);
            since_flush = 0;
        }

        if (cfg.crash_every > 0 && since_crash >= cfg.crash_every && completed < cfg.txns)
            || d.engine.wal_crash_armed()
        {
            d.crash_and_recover(&mut sessions);
            since_crash = 0;
            since_flush = 0;
        }
    }

    // Wind down: open transactions abort, then the final epoch is checked.
    for (s, slot) in sessions.iter_mut().enumerate() {
        if let Some(sess) = slot.take() {
            d.record(s, sess.serial, sess.seq, OpKind::Abort);
            sess.txn.abort();
            d.aborts += 1;
        }
    }
    d.check_epoch();
    assert_eq!(
        d.engine.active_snapshots(),
        0,
        "run ended with leaked snapshot pins"
    );
    assert_eq!(
        d.engine.locks().outstanding(),
        (0, 0),
        "run ended with leaked lock entries"
    );
    d.metrics.merge(&d.engine.metrics_snapshot());

    TortureReport {
        seed: cfg.seed,
        digest: digest(&d.history),
        commits: d.commits,
        aborts: d.aborts,
        crashes: d.crashes,
        ops: d.history.len(),
        violations: d.violations,
        metrics: d.metrics,
    }
}
