//! The crash-point matrix: kill the WAL device at every frame boundary
//! and prove recovery.
//!
//! A *crash point* is a frame index: the run proceeds normally until the
//! file-backed WAL is about to persist that frame, at which point the
//! device gate fires. Each point is exercised in both crash *phases*:
//! [`CrashPhase::Torn`] writes the fatal frame only as a torn prefix (a
//! seeded number of bytes — death mid-`pwrite`), while
//! [`CrashPhase::AfterWrite`] lands the whole frame but steals its
//! `fdatasync` (death between `pwrite` and the durability barrier). In
//! both, every later append, fsync, and checkpoint silently does
//! nothing, exactly as if the process had been killed there. The
//! workload keeps running against the doomed engine, maintaining a
//! client-side ledger: a commit is *acknowledged* only if `commit()`
//! returned success **and** the device was still alive when it did —
//! anything later is in-doubt, which is precisely the guarantee a
//! client of a real database gets.
//!
//! A fresh engine then reopens the directory and recovery must be:
//!
//! * **complete** — every acknowledged commit is in the recovered state;
//! * **sound** — the recovered state equals the bootstrap checkpoint plus
//!   a whole-transaction subset of the attempted commits (balances
//!   conserve, no partial transaction, nothing invented);
//! * **idempotent** — recovering the same directory twice (two full
//!   boot/restore/replay/checkpoint cycles) yields identical state.
//!
//! [`run_crash_matrix`] sweeps crash points systematically over the whole
//! frame range (first burst frame and last frame always included), for
//! every combination of seed × personality × parallel-log count × phase.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use tpd_common::clock::VirtualClock;
use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, Personality, Policy, TableId};
use tpd_wal::CrashPhase;

/// Crash-matrix parameters.
#[derive(Debug, Clone)]
pub struct CrashMatrixConfig {
    /// Seeds: each varies the crash-point jitter and the torn-tail length.
    pub seeds: Vec<u64>,
    /// Crash points per (seed, personality, writers) combination, spread
    /// over the full frame range.
    pub points_per_seed: usize,
    /// Personalities under test.
    pub personalities: Vec<Personality>,
    /// Parallel-log counts under test (MySQL `log_writers`, Postgres WAL
    /// sets).
    pub log_writers: Vec<usize>,
    /// Transfer transactions per case.
    pub txns: u64,
    /// Root directory for per-case segment directories. Failing cases
    /// keep their directory as the replay artifact.
    pub data_root: PathBuf,
}

impl Default for CrashMatrixConfig {
    fn default() -> Self {
        CrashMatrixConfig {
            seeds: (0..8).collect(),
            points_per_seed: 16,
            personalities: vec![Personality::Mysql, Personality::Postgres],
            log_writers: vec![1, 2],
            txns: 24,
            data_root: std::env::temp_dir().join("tpd-crashmatrix"),
        }
    }
}

/// One cell of the matrix.
#[derive(Debug, Clone)]
pub struct CrashCase {
    /// Personality the case ran under.
    pub personality: Personality,
    /// Parallel-log count.
    pub writers: usize,
    /// Seed (jitter + torn-tail length).
    pub seed: u64,
    /// The frame index the device died on.
    pub point: u64,
    /// Where in the fatal frame's append→sync sequence the death landed.
    pub phase: CrashPhase,
    /// Torn-prefix length fed to the gate (modulo the fatal frame's
    /// size; unused under [`CrashPhase::AfterWrite`]).
    pub torn_bytes: u64,
    /// Commits acknowledged before the device died.
    pub acked: u64,
    /// Committed transactions recovery found.
    pub recovered: u64,
    /// `None` = the case passed; otherwise which contract broke and how.
    pub error: Option<String>,
}

/// What the matrix found.
#[derive(Debug, Clone)]
pub struct CrashMatrixReport {
    /// Every case, in execution order.
    pub cases: Vec<CrashCase>,
}

impl CrashMatrixReport {
    /// Whether every case passed.
    pub fn ok(&self) -> bool {
        self.cases.iter().all(|c| c.error.is_none())
    }

    /// Human-readable failure list (empty string when everything passed).
    pub fn render_failures(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for c in self.cases.iter().filter(|c| c.error.is_some()) {
            let _ = writeln!(
                out,
                "{:?}/w{} seed {} point {} {:?} torn {}: {}",
                c.personality,
                c.writers,
                c.seed,
                c.point,
                c.phase,
                c.torn_bytes,
                c.error.as_deref().unwrap_or(""),
            );
        }
        out
    }
}

fn engine_config(personality: Personality, writers: usize, seed: u64, dir: &Path) -> EngineConfig {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(5_000),
        ns_per_byte: 0.0,
        seed: 31,
    };
    let mut cfg = match personality {
        Personality::Mysql => EngineConfig::mysql(Policy::Fcfs)
            .with_log_writers(writers)
            .with_manual_wal_flush(),
        Personality::Postgres => EngineConfig::postgres().with_parallel_logging(writers),
    };
    cfg.data_disk = quick;
    cfg.seed = seed;
    cfg.with_file_backend(dir.to_path_buf())
}

/// What one doomed (or probe) run produced.
struct CaseRun {
    /// Transfer serials whose commit acknowledgement implies durability.
    acked: BTreeSet<u64>,
    /// Frame count after bootstrap (first burst frame index).
    frames_base: u64,
    /// Frame count after the burst (probe runs only; the gate freezes it).
    frames_end: u64,
}

/// Boot an engine on `dir`, install the transfer schema, checkpoint, then
/// run `txns` transfers — optionally arming the crash gate first.
fn run_case(
    personality: Personality,
    writers: usize,
    seed: u64,
    txns: u64,
    dir: &Path,
    crash: Option<(u64, u64, CrashPhase)>,
) -> CaseRun {
    let engine = Engine::new(engine_config(personality, writers, seed, dir));
    engine.recover_from_disk();
    let accounts = engine.catalog().create_table("accounts", 16);
    let journal = engine.catalog().create_table("journal", 16);
    {
        let mut setup = engine.begin(0);
        setup.insert(accounts, vec![1000]).expect("a");
        setup.insert(accounts, vec![1000]).expect("b");
        setup.commit().expect("setup");
    }
    engine.checkpoint().expect("bootstrap checkpoint");
    let wal = Arc::clone(engine.file_wal().expect("file backend"));
    let frames_base = wal.frames_written();
    if let Some((point, torn, phase)) = crash {
        wal.set_crash_at(point, torn, phase);
    }
    let mut acked = BTreeSet::new();
    for i in 0..txns {
        let mut txn = engine.begin(0);
        txn.update(accounts, 0, |r| r[0] -= 1).expect("debit");
        txn.update(accounts, 1, |r| r[0] += 1).expect("credit");
        txn.insert(journal, vec![i as i64]).expect("journal");
        let ok = txn.commit().is_ok();
        // The ledger rule: an acknowledgement only counts if the device
        // was still alive when commit() returned.
        if ok && !wal.crashed() {
            acked.insert(i);
        }
    }
    CaseRun {
        acked,
        frames_base,
        frames_end: wal.frames_written(),
    }
}

/// One table's dump: name, next-key hint, and every row.
type TableDump = (String, u64, Vec<(u64, Vec<i64>)>);

/// Observed post-recovery state: the journal's transfer serials plus the
/// two balances, and the full table dump for the idempotence comparison.
struct Recovered {
    journal: BTreeSet<u64>,
    balances: (i64, i64),
    dump: Vec<TableDump>,
    committed: u64,
}

fn recover_once(
    personality: Personality,
    writers: usize,
    seed: u64,
    dir: &Path,
) -> Result<Recovered, String> {
    let engine = Engine::new(engine_config(personality, writers, seed, dir));
    let rec = engine
        .recover_from_disk()
        .ok_or("recover_from_disk returned None on the file backend")?;
    if engine.catalog().len() < 2 {
        return Err(format!(
            "checkpoint restored {} tables, expected accounts + journal",
            engine.catalog().len()
        ));
    }
    let accounts = engine.catalog().table(TableId(0));
    let journal = engine.catalog().table(TableId(1));
    let a = accounts.get(0).ok_or("account row 0 missing")?[0];
    let b = accounts.get(1).ok_or("account row 1 missing")?[0];
    let journal_rows: BTreeSet<u64> = journal
        .range_keys(0, u64::MAX, usize::MAX)
        .into_iter()
        .filter_map(|k| journal.get(k).map(|row| row[0] as u64))
        .collect();
    let dump = (0..engine.catalog().len())
        .map(|i| {
            let t = engine.catalog().table(TableId(i as u32));
            let rows = t
                .range_keys(0, u64::MAX, usize::MAX)
                .into_iter()
                .filter_map(|k| t.get(k).map(|row| (k, row)))
                .collect();
            (t.name.clone(), t.next_key_hint(), rows)
        })
        .collect();
    Ok(Recovered {
        journal: journal_rows,
        balances: (a, b),
        dump,
        committed: rec.report.committed_txns,
    })
}

/// The three recovery contracts for one crash point.
fn audit(
    acked: &BTreeSet<u64>,
    txns: u64,
    first: &Recovered,
    second: &Recovered,
) -> Result<(), String> {
    // Complete: every acknowledged commit survived.
    if let Some(lost) = acked.difference(&first.journal).next() {
        return Err(format!(
            "NOT COMPLETE: acked transfer {lost} missing after recovery \
             (acked {}, recovered {})",
            acked.len(),
            first.journal.len()
        ));
    }
    // Sound: whole transactions only, drawn from what was attempted.
    if let Some(ghost) = first.journal.iter().find(|&&j| j >= txns) {
        return Err(format!(
            "NOT SOUND: journal row {ghost} was never attempted"
        ));
    }
    let n = first.journal.len() as i64;
    if first.balances != (1000 - n, 1000 + n) {
        return Err(format!(
            "NOT SOUND: {n} journal rows but balances {:?} (partial transaction recovered)",
            first.balances
        ));
    }
    // Idempotent: a second full recovery cycle observes identical state.
    if first.dump != second.dump {
        return Err(format!(
            "NOT IDEMPOTENT: second recovery diverged \
             (first committed {}, second committed {})",
            first.committed, second.committed
        ));
    }
    Ok(())
}

/// `n` crash points spread over `[lo, hi]`, endpoints always included,
/// interior points evenly spaced with deterministic seed jitter.
fn pick_points(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<u64> {
    let mut points = BTreeSet::new();
    points.insert(lo);
    points.insert(hi);
    let span = hi.saturating_sub(lo);
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in 1..n.saturating_sub(1) {
        // Even spacing plus a jitter of up to one slot width.
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let slot = span * i as u64 / (n as u64 - 1);
        let jitter = if span >= n as u64 {
            x % (span / (n as u64 - 1)).max(1)
        } else {
            0
        };
        points.insert(lo + (slot + jitter).min(span));
    }
    points.into_iter().collect()
}

/// Run the full matrix: seeds × personalities × parallel-log counts ×
/// crash points. Enables the virtual clock for the calling thread for the
/// duration (panics if one is already active). Passing cases clean up
/// their segment directories; failing cases keep them as artifacts.
pub fn run_crash_matrix(cfg: &CrashMatrixConfig) -> CrashMatrixReport {
    assert!(cfg.points_per_seed >= 2, "need at least the two endpoints");
    assert!(cfg.txns >= 2);
    let _clock = VirtualClock::enable(1);
    let mut cases = Vec::new();
    for &personality in &cfg.personalities {
        for &writers in &cfg.log_writers {
            // Probe: one uncrashed run fixes the frame range. The workload
            // is deterministic, so the range holds for every seed.
            let probe_dir = cfg
                .data_root
                .join(format!("probe-{personality:?}-w{writers}"));
            std::fs::remove_dir_all(&probe_dir).ok();
            let probe = run_case(personality, writers, 0, cfg.txns, &probe_dir, None);
            std::fs::remove_dir_all(&probe_dir).ok();
            assert!(
                probe.frames_end > probe.frames_base,
                "burst wrote no frames"
            );
            for &seed in &cfg.seeds {
                let points = pick_points(
                    cfg.points_per_seed,
                    probe.frames_base,
                    probe.frames_end - 1,
                    seed,
                );
                for point in points {
                    let torn_bytes = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(point) % 64;
                    for phase in [CrashPhase::Torn, CrashPhase::AfterWrite] {
                        let dir = cfg.data_root.join(format!(
                            "case-{personality:?}-w{writers}-s{seed}-p{point}-{phase:?}"
                        ));
                        std::fs::remove_dir_all(&dir).ok();
                        let run = run_case(
                            personality,
                            writers,
                            seed,
                            cfg.txns,
                            &dir,
                            Some((point, torn_bytes, phase)),
                        );
                        let outcome =
                            recover_once(personality, writers, seed, &dir).and_then(|first| {
                                let second = recover_once(personality, writers, seed, &dir)?;
                                audit(&run.acked, cfg.txns, &first, &second).map(|()| first)
                            });
                        let (recovered, error) = match outcome {
                            Ok(first) => (first.journal.len() as u64, None),
                            Err(e) => (0, Some(e)),
                        };
                        if error.is_none() {
                            std::fs::remove_dir_all(&dir).ok();
                        }
                        cases.push(CrashCase {
                            personality,
                            writers,
                            seed,
                            point,
                            phase,
                            torn_bytes,
                            acked: run.acked.len() as u64,
                            recovered,
                            error,
                        });
                    }
                }
            }
        }
    }
    CrashMatrixReport { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_points_includes_endpoints_and_stays_in_range() {
        for seed in 0..10 {
            let pts = pick_points(16, 7, 203, seed);
            assert!(pts.contains(&7) && pts.contains(&203));
            assert!(pts.iter().all(|&p| (7..=203).contains(&p)));
            assert!(pts.len() >= 3, "jitter collapsed the spread: {pts:?}");
            assert_eq!(pts, pick_points(16, 7, 203, seed), "deterministic");
        }
    }

    #[test]
    fn pick_points_handles_tiny_ranges() {
        assert_eq!(pick_points(16, 5, 5, 1), vec![5]);
        assert_eq!(pick_points(2, 3, 4, 9), vec![3, 4]);
    }

    #[test]
    fn small_matrix_passes_and_kills_mid_burst() {
        let cfg = CrashMatrixConfig {
            seeds: vec![1, 2],
            points_per_seed: 5,
            personalities: vec![Personality::Mysql],
            log_writers: vec![1],
            txns: 10,
            data_root: std::env::temp_dir()
                .join(format!("tpd-crashmatrix-unit-{}", std::process::id())),
        };
        let report = run_crash_matrix(&cfg);
        assert!(report.ok(), "{}", report.render_failures());
        assert_eq!(report.cases.len(), 2 * 5 * 2, "seeds × points × phases");
        for phase in [CrashPhase::Torn, CrashPhase::AfterWrite] {
            assert!(report.cases.iter().any(|c| c.phase == phase));
        }
        // The gate actually interrupts the burst somewhere: early points
        // must lose un-acked commits, the last point loses none.
        assert!(report.cases.iter().any(|c| c.acked < 10));
        assert!(report.cases.iter().any(|c| c.acked > 0));
        std::fs::remove_dir_all(&cfg.data_root).ok();
    }
}
