//! Cycle-based serializability checking over recorded histories.
//!
//! Builds the direct serialization graph (DSG) of one epoch's committed
//! transactions. Because every write records its in-place before-image and
//! every written value is unique to its writer, the version order of each
//! key is fully recoverable from the history alone:
//!
//! * **WW** — transaction `T` overwrote a version written by `U` ⇒ `U → T`;
//! * **WR** — `T` read a version written by `U` ⇒ `U → T`;
//! * **RW** — `T` read a version that `U` later overwrote ⇒ `T → U`
//!   (anti-dependency, found via the write whose before-image is the value
//!   `T` read).
//!
//! A cycle in this graph means the committed transactions admit no serial
//! order (Adya's G2; the lost-update cycle is the two-node case). The
//! checker additionally flags Adya's G1a (read of an aborted transaction's
//! value) and G1b (read of a non-final, intermediate value), and dirty
//! overwrites of aborted data. Values unknown to the epoch (carried in by
//! recovery from an earlier epoch) are attributed to the virtual initial
//! transaction, which participates in no edges.
//!
//! All internal maps are ordered so the verdict — including *which* cycle
//! is reported — is deterministic for a given history.

use std::collections::{BTreeMap, BTreeSet};

use crate::history::{OpKind, OpRecord, INIT_TXN};

/// DSG edge flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `from`'s version was overwritten by `to`.
    WriteWrite,
    /// `to` read `from`'s version.
    WriteRead,
    /// `from` read a version that `to` overwrote (anti-dependency).
    ReadWrite,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EdgeKind::WriteWrite => "ww",
            EdgeKind::WriteRead => "wr",
            EdgeKind::ReadWrite => "rw",
        })
    }
}

/// Why an edge exists: the key and version that induced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeWitness {
    /// Source transaction serial.
    pub from: u64,
    /// Destination transaction serial.
    pub to: u64,
    /// Dependency flavour.
    pub kind: EdgeKind,
    /// Table the conflict is on.
    pub table: usize,
    /// Key the conflict is on.
    pub key: u64,
    /// The version (value) that witnesses the dependency.
    pub value: i64,
}

impl std::fmt::Display for EdgeWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "T{} -{}-> T{} on t{}[{}] (value {})",
            self.from, self.kind, self.to, self.table, self.key, self.value
        )
    }
}

/// A checker finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckerViolation {
    /// G1a: a committed transaction read a value written by an aborted one.
    AbortedRead {
        /// The committed reader.
        reader: u64,
        /// The aborted writer.
        writer: u64,
        /// Table read.
        table: usize,
        /// Key read.
        key: u64,
        /// The aborted value observed.
        value: i64,
    },
    /// A committed transaction overwrote an aborted transaction's value
    /// (it observed dirty data as its before-image).
    DirtyOverwrite {
        /// The committed overwriter.
        writer: u64,
        /// The aborted transaction whose value was observed.
        aborted: u64,
        /// Table written.
        table: usize,
        /// Key written.
        key: u64,
        /// The aborted before-image observed.
        value: i64,
    },
    /// G1b: a committed transaction read a value that was not the writer's
    /// final write to that key.
    IntermediateRead {
        /// The committed reader.
        reader: u64,
        /// The committed writer whose intermediate version leaked.
        writer: u64,
        /// Table read.
        table: usize,
        /// Key read.
        key: u64,
        /// The intermediate value observed.
        value: i64,
    },
    /// G2: a dependency cycle among committed transactions.
    Cycle {
        /// The transactions on the cycle, in edge order.
        txns: Vec<u64>,
        /// One witness per cycle edge.
        edges: Vec<EdgeWitness>,
    },
}

impl std::fmt::Display for CheckerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckerViolation::AbortedRead {
                reader,
                writer,
                table,
                key,
                value,
            } => write!(
                f,
                "G1a aborted read: T{reader} read t{table}[{key}] = {value}, written by aborted T{writer}"
            ),
            CheckerViolation::DirtyOverwrite {
                writer,
                aborted,
                table,
                key,
                value,
            } => write!(
                f,
                "dirty overwrite: T{writer} overwrote t{table}[{key}] = {value}, written by aborted T{aborted}"
            ),
            CheckerViolation::IntermediateRead {
                reader,
                writer,
                table,
                key,
                value,
            } => write!(
                f,
                "G1b intermediate read: T{reader} read t{table}[{key}] = {value}, a non-final write of T{writer}"
            ),
            CheckerViolation::Cycle { txns, edges } => {
                write!(f, "G2 serialization cycle: ")?;
                for (i, t) in txns.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "T{t}")?;
                }
                write!(f, " -> T{}", txns[0])?;
                for e in edges {
                    write!(f, "; {e}")?;
                }
                Ok(())
            }
        }
    }
}

/// The checker's verdict on one epoch.
#[derive(Debug, Clone, Default)]
pub struct CheckerReport {
    /// Everything found, in detection order (G1 findings first, then the
    /// first cycle).
    pub violations: Vec<CheckerViolation>,
}

impl CheckerReport {
    /// No anomalies found.
    pub fn is_serializable(&self) -> bool {
        self.violations.is_empty()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Committed,
    Aborted,
}

/// Check one epoch's history. Transactions with no commit record (cut off
/// by a crash or the end of the run) count as aborted.
pub fn check(history: &[OpRecord]) -> CheckerReport {
    let mut status: BTreeMap<u64, Status> = BTreeMap::new();
    // (table, key, value) -> writer serial.
    let mut writer_of: BTreeMap<(usize, u64, i64), u64> = BTreeMap::new();
    // Writer's final value per (txn, table, key), for G1b.
    let mut final_write: BTreeMap<(u64, usize, u64), i64> = BTreeMap::new();

    for r in history {
        status.entry(r.txn).or_insert(Status::Aborted);
        match r.kind {
            OpKind::Write {
                table, key, value, ..
            }
            | OpKind::Insert { table, key, value } => {
                writer_of.insert((table, key, value), r.txn);
                final_write.insert((r.txn, table, key), value);
            }
            OpKind::Commit => {
                status.insert(r.txn, Status::Committed);
            }
            _ => {}
        }
    }

    let committed = |t: u64| t == INIT_TXN || status.get(&t) == Some(&Status::Committed);
    // Version successor: value v of (table, key) was overwritten by the
    // committed transaction whose before-image is v.
    let mut successor: BTreeMap<(usize, u64, i64), u64> = BTreeMap::new();
    for r in history {
        if let OpKind::Write {
            table, key, prev, ..
        } = r.kind
        {
            if committed(r.txn) {
                successor.entry((table, key, prev)).or_insert(r.txn);
            }
        }
    }

    let lookup_writer = |table: usize, key: u64, value: i64| -> u64 {
        // Values not written this epoch were carried in by recovery (or are
        // the initial 0s): attribute them to the virtual initial txn.
        writer_of
            .get(&(table, key, value))
            .copied()
            .unwrap_or(INIT_TXN)
    };

    let mut violations = Vec::new();
    let mut adj: BTreeMap<u64, BTreeMap<u64, EdgeWitness>> = BTreeMap::new();
    let mut edge = |from: u64, to: u64, kind: EdgeKind, table: usize, key: u64, value: i64| {
        if from == to || from == INIT_TXN || to == INIT_TXN {
            return;
        }
        adj.entry(from)
            .or_default()
            .entry(to)
            .or_insert(EdgeWitness {
                from,
                to,
                kind,
                table,
                key,
                value,
            });
    };

    for r in history {
        if !committed(r.txn) {
            continue; // only committed transactions enter the DSG
        }
        match r.kind {
            OpKind::Write {
                table, key, prev, ..
            } => {
                let w = lookup_writer(table, key, prev);
                if w != INIT_TXN && w != r.txn {
                    if committed(w) {
                        edge(w, r.txn, EdgeKind::WriteWrite, table, key, prev);
                    } else {
                        violations.push(CheckerViolation::DirtyOverwrite {
                            writer: r.txn,
                            aborted: w,
                            table,
                            key,
                            value: prev,
                        });
                    }
                }
            }
            OpKind::Read { table, key, value } => {
                let w = lookup_writer(table, key, value);
                if w != INIT_TXN && w != r.txn {
                    if committed(w) {
                        if final_write.get(&(w, table, key)) != Some(&value) {
                            violations.push(CheckerViolation::IntermediateRead {
                                reader: r.txn,
                                writer: w,
                                table,
                                key,
                                value,
                            });
                        }
                        edge(w, r.txn, EdgeKind::WriteRead, table, key, value);
                    } else {
                        violations.push(CheckerViolation::AbortedRead {
                            reader: r.txn,
                            writer: w,
                            table,
                            key,
                            value,
                        });
                    }
                }
                if let Some(&s) = successor.get(&(table, key, value)) {
                    if s != r.txn {
                        edge(r.txn, s, EdgeKind::ReadWrite, table, key, value);
                    }
                }
            }
            _ => {}
        }
    }

    if let Some(cycle) = find_cycle(&adj) {
        let edges = cycle_edges(&adj, &cycle);
        violations.push(CheckerViolation::Cycle { txns: cycle, edges });
    }

    CheckerReport { violations }
}

/// First cycle in deterministic (sorted-node) DFS order, as the node list
/// along the cycle.
fn find_cycle(adj: &BTreeMap<u64, BTreeMap<u64, EdgeWitness>>) -> Option<Vec<u64>> {
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let neighbors: BTreeMap<u64, Vec<u64>> = adj
        .iter()
        .map(|(&u, vs)| (u, vs.keys().copied().collect()))
        .collect();
    let mut color: BTreeMap<u64, u8> = BTreeMap::new();
    let roots: Vec<u64> = neighbors.keys().copied().collect();
    for start in roots {
        if color.get(&start).copied().unwrap_or(WHITE) != WHITE {
            continue;
        }
        let mut stack: Vec<(u64, usize)> = vec![(start, 0)];
        color.insert(start, GREY);
        while let Some(&(u, i)) = stack.last() {
            let nbrs = neighbors.get(&u).map(Vec::as_slice).unwrap_or(&[]);
            if i < nbrs.len() {
                stack.last_mut().expect("nonempty").1 += 1;
                let v = nbrs[i];
                match color.get(&v).copied().unwrap_or(WHITE) {
                    WHITE => {
                        color.insert(v, GREY);
                        stack.push((v, 0));
                    }
                    GREY => {
                        // Back edge u -> v closes the cycle v ... u.
                        let at = stack
                            .iter()
                            .position(|&(n, _)| n == v)
                            .expect("grey node is on the stack");
                        return Some(stack[at..].iter().map(|&(n, _)| n).collect());
                    }
                    _ => {}
                }
            } else {
                color.insert(u, BLACK);
                stack.pop();
            }
        }
    }
    None
}

fn cycle_edges(adj: &BTreeMap<u64, BTreeMap<u64, EdgeWitness>>, cycle: &[u64]) -> Vec<EdgeWitness> {
    (0..cycle.len())
        .map(|i| {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            adj[&from][&to]
        })
        .collect()
}

/// The smallest slice of the history that exhibits `violation`: only the
/// implicated transactions, only the conflicting keys (plus their
/// commit/abort records), rendered one op per line.
pub fn minimized_trace(history: &[OpRecord], violation: &CheckerViolation) -> Vec<String> {
    let (txns, keys): (BTreeSet<u64>, BTreeSet<(usize, u64)>) = match violation {
        CheckerViolation::AbortedRead {
            reader,
            writer,
            table,
            key,
            ..
        }
        | CheckerViolation::IntermediateRead {
            reader,
            writer,
            table,
            key,
            ..
        } => (
            [*reader, *writer].into_iter().collect(),
            [(*table, *key)].into_iter().collect(),
        ),
        CheckerViolation::DirtyOverwrite {
            writer,
            aborted,
            table,
            key,
            ..
        } => (
            [*writer, *aborted].into_iter().collect(),
            [(*table, *key)].into_iter().collect(),
        ),
        CheckerViolation::Cycle { txns, edges } => (
            txns.iter().copied().collect(),
            edges.iter().map(|e| (e.table, e.key)).collect(),
        ),
    };
    history
        .iter()
        .filter(|r| {
            txns.contains(&r.txn)
                && match r.kind {
                    OpKind::Read { table, key, .. }
                    | OpKind::Write { table, key, .. }
                    | OpKind::Insert { table, key, .. } => keys.contains(&(table, key)),
                    OpKind::Commit | OpKind::Abort => true,
                }
        })
        .map(|r| r.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(txn: u64, seq: u32, kind: OpKind) -> OpRecord {
        OpRecord {
            epoch: 0,
            session: txn as usize,
            txn,
            seq,
            kind,
        }
    }

    fn read(txn: u64, seq: u32, key: u64, value: i64) -> OpRecord {
        rec(
            txn,
            seq,
            OpKind::Read {
                table: 0,
                key,
                value,
            },
        )
    }

    fn write(txn: u64, seq: u32, key: u64, prev: i64, value: i64) -> OpRecord {
        rec(
            txn,
            seq,
            OpKind::Write {
                table: 0,
                key,
                prev,
                value,
            },
        )
    }

    fn commit(txn: u64) -> OpRecord {
        rec(txn, 99, OpKind::Commit)
    }

    #[test]
    fn serial_history_is_clean() {
        let h = vec![
            read(1, 0, 5, 0),
            write(1, 1, 5, 0, 100),
            commit(1),
            read(2, 0, 5, 100),
            write(2, 1, 5, 100, 200),
            commit(2),
        ];
        assert!(check(&h).is_serializable());
    }

    #[test]
    fn lost_update_is_a_cycle() {
        // Both read v0, then both write: T2's RW to T1 and T1's WW to T2.
        let h = vec![
            read(1, 0, 5, 0),
            read(2, 0, 5, 0),
            write(1, 1, 5, 0, 100),
            write(2, 1, 5, 100, 200),
            commit(1),
            commit(2),
        ];
        let report = check(&h);
        let cycle = report
            .violations
            .iter()
            .find(|v| matches!(v, CheckerViolation::Cycle { .. }))
            .expect("lost update detected");
        if let CheckerViolation::Cycle { txns, edges } = cycle {
            assert_eq!(txns.len(), 2);
            assert_eq!(edges.len(), 2);
        }
        let trace = minimized_trace(&h, cycle);
        assert!(trace.len() >= 4, "trace shows the interleaving: {trace:?}");
    }

    #[test]
    fn aborted_read_is_g1a() {
        let h = vec![
            write(1, 0, 5, 0, 100),
            read(2, 0, 5, 100),
            commit(2),
            rec(1, 1, OpKind::Abort),
        ];
        let report = check(&h);
        assert!(matches!(
            report.violations[0],
            CheckerViolation::AbortedRead {
                reader: 2,
                writer: 1,
                ..
            }
        ));
    }

    #[test]
    fn unfinished_txn_counts_as_aborted() {
        let h = vec![write(1, 0, 5, 0, 100), read(2, 0, 5, 100), commit(2)];
        let report = check(&h);
        assert!(!report.is_serializable());
    }

    #[test]
    fn carried_in_values_attribute_to_init() {
        // Value 777 was never written this epoch (recovered state).
        let h = vec![read(1, 0, 5, 777), commit(1)];
        assert!(check(&h).is_serializable());
    }

    #[test]
    fn write_skew_style_three_cycle() {
        // T1 -wr-> T2 -wr-> T3 -rw-> T1 (T3 read what T1 overwrote).
        let h = vec![
            read(3, 0, 1, 0),
            write(1, 0, 1, 0, 10),
            read(2, 0, 1, 10),
            write(2, 1, 2, 0, 20),
            read(3, 1, 2, 20),
            commit(1),
            commit(2),
            commit(3),
        ];
        let report = check(&h);
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, CheckerViolation::Cycle { .. })),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn reading_own_write_is_fine() {
        let h = vec![
            write(1, 0, 5, 0, 100),
            read(1, 1, 5, 100),
            write(1, 2, 5, 100, 101),
            commit(1),
            read(2, 0, 5, 101),
            commit(2),
        ];
        assert!(check(&h).is_serializable());
    }
}
