//! Harness self-tests: the checkers must be deterministic, quiet on a
//! correct engine, and *loud* on the two seeded bugs.

use tpd_common::dist::ServiceTime;
use tpd_engine::{Concurrency, DiskBackend};
use tpd_harness::{
    run_crash_matrix, run_torture, CheckerViolation, CrashMatrixConfig, TortureConfig,
    TortureReport, TortureViolation,
};
use tpd_wal::FlushPolicy;
use tpd_workloads::TortureMix;

fn run(cfg: &TortureConfig) -> TortureReport {
    run_torture(cfg)
}

/// A fresh segment directory for one file-backend run.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tpd-torture-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn same_seed_same_digest_and_verdict() {
    let cfg = TortureConfig {
        seed: 0xDEAD_BEEF,
        txns: 150,
        faults: true,
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.digest, b.digest, "same seed must replay bit-for-bit");
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.commits, b.commits);
    assert_eq!(a.aborts, b.aborts);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.violations.len(), b.violations.len());
}

#[test]
fn metrics_snapshot_is_a_reproducibility_witness() {
    // Same seed ⇒ byte-identical metrics JSON, across crash epochs and
    // faults. This is stronger than the digest: the digest only covers the
    // op history, while the metrics cover every recorded latency.
    let cfg = TortureConfig {
        seed: 0xFEED,
        txns: 150,
        crash_every: 40,
        faults: true,
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    // The families are actually populated.
    assert_eq!(a.metrics.counters["txn.commits"], a.commits);
    assert!(a.metrics.counters["lock.acquires"] > 0);
    assert!(a.metrics.counters["wal.flushes"] > 0);
    assert!(a.metrics.counters["pool.hits"] + a.metrics.counters["pool.misses"] > 0);
    assert!(a.metrics.histograms.contains_key("wal.fsync_ns"));
    assert!(a.metrics.histograms["txn.type00.commit_ns"].count > 0);
}

#[test]
fn statement_rtt_is_deterministic() {
    // Regression: statement_rtt used to draw from thread_rng and sleep on
    // the OS clock, so enabling it destroyed replay determinism (and
    // burned wall time). It now draws from the per-txn seeded RNG and
    // advances the virtual clock.
    let cfg = TortureConfig {
        seed: 0xC0FFEE,
        txns: 120,
        crash_every: 50,
        statement_rtt: Some(ServiceTime::LogNormal {
            median: 20_000,
            sigma: 0.6,
        }),
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(
        a.digest, b.digest,
        "identical seeds must replay with RTT on"
    );
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "RTT sampling must be virtual-time deterministic"
    );
    // And the RTT must actually influence the run: commit latency includes
    // the injected client round trips.
    let without = run(&TortureConfig {
        statement_rtt: None,
        ..cfg.clone()
    });
    let with_rtt = a.metrics.histograms["txn.type00.commit_ns"].mean();
    let base = without.metrics.histograms["txn.type00.commit_ns"].mean();
    assert!(
        with_rtt > base,
        "RTT should lengthen commits: {with_rtt} vs {base}"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = run(&TortureConfig {
        seed: 1,
        txns: 100,
        ..Default::default()
    });
    let b = run(&TortureConfig {
        seed: 2,
        txns: 100,
        ..Default::default()
    });
    assert_ne!(a.digest, b.digest, "seeds must actually steer the run");
}

#[test]
fn clean_engine_passes_with_faults_and_crashes() {
    for seed in [3, 17, 99] {
        let report = run(&TortureConfig {
            seed,
            txns: 200,
            crash_every: 50,
            faults: true,
            ..Default::default()
        });
        assert!(
            report.ok(),
            "correct engine must be violation-free:\n{}",
            report.render_failures()
        );
        assert!(report.crashes >= 2, "crashes exercised: {}", report.crashes);
        assert!(report.commits > 0);
    }
}

#[test]
fn file_backend_torture_passes_with_crashes() {
    // Same audits as sim mode, but every "crash" abandons the engine and
    // recovery really re-reads the segment files. Both flush policies: the
    // lazy arm proves unflushed commits neither survive nor trip the audit.
    for (seed, policy, flush_every) in [
        (11u64, FlushPolicy::Eager, 0u64),
        (12, FlushPolicy::LazyWrite, 9),
    ] {
        let dir = scratch_dir("self");
        let report = run(&TortureConfig {
            seed,
            txns: 200,
            crash_every: 50,
            flush_every,
            flush_policy: policy,
            disk_backend: DiskBackend::File,
            data_dir: Some(dir.clone()),
            ..Default::default()
        });
        assert!(
            report.ok(),
            "file backend, {policy:?}:\n{}",
            report.render_failures()
        );
        assert!(report.crashes >= 2, "crashes exercised: {}", report.crashes);
        assert!(report.commits > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn lazy_flush_losses_are_not_violations() {
    // Lazy policies lose unflushed commits at a crash by design; only
    // commits covered by a flush claim durability, so the audit stays
    // quiet.
    let report = run(&TortureConfig {
        seed: 7,
        txns: 200,
        crash_every: 45,
        flush_every: 11,
        flush_policy: FlushPolicy::LazyWrite,
        faults: true,
        ..Default::default()
    });
    assert!(
        report.ok(),
        "expected lazy losses, not violations:\n{}",
        report.render_failures()
    );
}

#[test]
fn skip_locking_bug_is_caught_by_the_checker() {
    // The seeded isolation bug: no locks at all. Interleaved sessions on a
    // tiny keyspace must produce lost updates / dirty reads, and the
    // checker must flag them with the seed and a minimized trace.
    let cfg = TortureConfig {
        seed: 42,
        txns: 250,
        sessions: 6,
        crash_every: 0,
        abort_prob: 0.1,
        skip_locking: true,
        ..Default::default()
    };
    let report = run(&cfg);
    assert!(!report.ok(), "checker must catch the isolation bug");
    let serializability: Vec<&TortureViolation> = report
        .violations
        .iter()
        .filter(|v| matches!(v, TortureViolation::Serializability { .. }))
        .collect();
    assert!(
        !serializability.is_empty(),
        "expected serializability findings:\n{}",
        report.render_failures()
    );
    // The failure artifact names the seed and shows a minimized trace.
    let rendered = report.render_failures();
    assert!(rendered.contains("seed 42"), "{rendered}");
    let has_trace = serializability
        .iter()
        .any(|v| matches!(v, TortureViolation::Serializability { trace, .. } if !trace.is_empty()));
    assert!(has_trace, "violations carry a minimized trace:\n{rendered}");
    // And the verdict itself replays.
    let again = run(&cfg);
    assert_eq!(report.digest, again.digest);
    assert_eq!(report.violations.len(), again.violations.len());
}

#[test]
fn single_session_mvcc_matches_s2pl_digest() {
    // With one session there is no concurrency, so the two modes must
    // produce the same committed history: the version chains are pure
    // bookkeeping and every snapshot read sees the latest commit. The op
    // digest (which covers every value read) must match bit-for-bit.
    for seed in [9u64, 77] {
        let base = TortureConfig {
            seed,
            txns: 200,
            sessions: 1,
            crash_every: 50,
            faults: true,
            ..Default::default()
        };
        let s2pl = run(&base);
        let mvcc = run(&TortureConfig {
            concurrency: Concurrency::Mvcc,
            ..base.clone()
        });
        assert!(s2pl.ok(), "{}", s2pl.render_failures());
        assert!(mvcc.ok(), "{}", mvcc.render_failures());
        assert_eq!(
            s2pl.digest, mvcc.digest,
            "seed {seed}: single-session histories must be identical"
        );
        assert_eq!(s2pl.commits, mvcc.commits);
        assert_eq!(s2pl.aborts, mvcc.aborts);
    }
}

#[test]
fn mvcc_torture_is_deterministic_and_clean() {
    // Multi-session mvcc under faults and crashes: violation-free, and the
    // doubled run reproduces both the digest and the full metrics JSON —
    // the same witness the CI matrix diffs.
    let cfg = TortureConfig {
        seed: 0xBEEF,
        txns: 250,
        sessions: 6,
        crash_every: 60,
        faults: true,
        concurrency: Concurrency::Mvcc,
        ..Default::default()
    };
    let a = run(&cfg);
    let b = run(&cfg);
    assert!(a.ok(), "{}", a.render_failures());
    assert_eq!(a.digest, b.digest, "mvcc runs must replay bit-for-bit");
    assert_eq!(a.metrics.to_json(), b.metrics.to_json());
    assert!(
        a.metrics.counters.get("mvcc.snapshot_reads").copied() > Some(0),
        "snapshot read path exercised"
    );
}

#[test]
fn mvcc_all_read_mix_takes_zero_locks() {
    // The point of the snapshot read path: a mix of nothing but single-row
    // reads and scans acquires no locks at all under mvcc, while s2pl
    // pays one shared lock per row touched.
    let all_reads = TortureMix {
        tatp_fraction: 0.0,
        ycsb_read_slots: 8,
        ycsb_update_slots: 0,
        ..Default::default()
    };
    let base = TortureConfig {
        seed: 31,
        txns: 150,
        sessions: 4,
        crash_every: 0,
        mix: all_reads,
        ..Default::default()
    };
    let mvcc = run(&TortureConfig {
        concurrency: Concurrency::Mvcc,
        ..base.clone()
    });
    let s2pl = run(&base);
    assert!(mvcc.ok(), "{}", mvcc.render_failures());
    assert_eq!(
        mvcc.metrics.counters.get("lock.acquires").copied(),
        Some(0),
        "mvcc reads must never touch the lock manager"
    );
    assert!(
        s2pl.metrics.counters.get("lock.acquires").copied() > Some(0),
        "s2pl control still locks"
    );
}

#[test]
fn chaos_snapshots_bug_is_caught_by_the_checker() {
    // The seeded mvcc bug: snapshot reads return the newest version —
    // including other transactions' uncommitted writes. Interleaved
    // sessions on a tiny keyspace must produce dirty reads the
    // serialization-graph checker flags.
    let cfg = TortureConfig {
        seed: 42,
        txns: 250,
        sessions: 6,
        crash_every: 0,
        abort_prob: 0.1,
        concurrency: Concurrency::Mvcc,
        chaos_snapshots: true,
        ..Default::default()
    };
    let report = run(&cfg);
    assert!(!report.ok(), "checker must catch the broken snapshot bug");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, TortureViolation::Serializability { .. })),
        "expected serializability findings:\n{}",
        report.render_failures()
    );
    // The verdict replays.
    let again = run(&cfg);
    assert_eq!(report.digest, again.digest);
    assert_eq!(report.violations.len(), again.violations.len());
}

#[test]
fn ack_before_flush_bug_is_caught_by_the_durability_audit() {
    // The seeded durability bug: commits acknowledged before the WAL
    // flush. A crash must reveal acknowledged-then-lost commits.
    let report = run(&TortureConfig {
        seed: 5,
        txns: 200,
        crash_every: 40,
        ack_before_flush: true,
        ..Default::default()
    });
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, TortureViolation::DurabilityLoss { .. })),
        "expected durability losses:\n{}",
        report.render_failures()
    );
}

#[test]
fn checker_cycle_reports_offending_transactions() {
    let report = run(&TortureConfig {
        seed: 42,
        txns: 250,
        sessions: 6,
        crash_every: 0,
        skip_locking: true,
        ..Default::default()
    });
    let cycle = report.violations.iter().find_map(|v| match v {
        TortureViolation::Serializability {
            violation: CheckerViolation::Cycle { txns, edges },
            ..
        } => Some((txns, edges)),
        _ => None,
    });
    if let Some((txns, edges)) = cycle {
        assert!(txns.len() >= 2);
        assert_eq!(txns.len(), edges.len(), "one witness per cycle edge");
    } else {
        // Lost updates can also surface purely as G1 findings on some
        // seeds; any finding satisfies the contract, but this seed is
        // known to produce cycles — keep it honest.
        panic!(
            "seed 42 should produce a cycle:\n{}",
            report.render_failures()
        );
    }
}

/// Long crash-point soak: the full recovery matrix at several times the
/// CI density — more seeds, denser kill points, longer bursts. Run with
/// `TPD_SOAK=1 cargo test -p tpd-harness -- --ignored`.
#[test]
#[ignore = "long soak; enable with TPD_SOAK=1"]
fn crash_matrix_soak() {
    if std::env::var("TPD_SOAK").as_deref() != Ok("1") {
        eprintln!("crash_matrix_soak: set TPD_SOAK=1 to run");
        return;
    }
    let cfg = CrashMatrixConfig {
        seeds: (0..16).collect(),
        points_per_seed: 32,
        txns: 40,
        data_root: scratch_dir("crashmatrix-soak"),
        ..Default::default()
    };
    let report = run_crash_matrix(&cfg);
    assert!(report.ok(), "{}", report.render_failures());
}

/// Long soak: many seeds, faults on, lazy flush, frequent crashes. Run
/// with `TPD_SOAK=1 cargo test -p tpd-harness -- --ignored`.
#[test]
#[ignore = "long soak; enable with TPD_SOAK=1"]
fn torture_soak() {
    if std::env::var("TPD_SOAK").as_deref() != Ok("1") {
        eprintln!("torture_soak: set TPD_SOAK=1 to run");
        return;
    }
    for seed in 0..25u64 {
        for policy in [FlushPolicy::Eager, FlushPolicy::LazyWrite] {
            for concurrency in [Concurrency::S2pl, Concurrency::Mvcc] {
                let report = run(&TortureConfig {
                    seed,
                    txns: 1_000,
                    sessions: 6,
                    crash_every: 80,
                    flush_every: 9,
                    flush_policy: policy,
                    faults: true,
                    concurrency,
                    ..Default::default()
                });
                assert!(
                    report.ok(),
                    "seed {seed} policy {policy:?} {concurrency}:\n{}",
                    report.render_failures()
                );
            }
        }
    }
}
