//! Striped atomic counters.
//!
//! A plain `AtomicU64` is already lock-free, but under many concurrent
//! writers every `fetch_add` bounces the same cache line between cores.
//! [`Counter`] spreads the count over a fixed set of cache-line-padded
//! stripes; each thread picks a stripe once (a cheap thread-local id,
//! masked) and keeps hitting it, so unrelated threads increment unrelated
//! lines. Reads sum the stripes — slightly more work, but reads are cold
//! (snapshots) and writes are hot.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of stripes. Power of two so stripe selection is a mask; 16 covers
/// the core counts this workspace targets without bloating every counter.
const STRIPES: usize = 16;

/// One stripe, padded to a cache line so neighbouring stripes never share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Monotonically-assigned thread index used to pick a stripe.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_STRIPE: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
}

/// A monotonically increasing, striped counter.
///
/// `add` is wait-free (one relaxed `fetch_add` on this thread's stripe);
/// `get` sums the stripes. The total is exact — striping changes *where*
/// increments land, never how many there are — so sums are deterministic
/// even though stripe assignment is not.
#[derive(Debug)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter {
            stripes: Default::default(),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        let s = THREAD_STRIPE.with(|s| *s);
        self.stripes[s].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over stripes).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = std::sync::Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }
}
