//! # tpd-metrics — always-on observability for the predictability study
//!
//! The paper's method rests on trustworthy measurement of tail latency and
//! variance; outside TProfiler the engines were black boxes. This crate is
//! the continuous, low-overhead counterpart to the profiler's sampled
//! traces: counters and latency histograms that are cheap enough to leave
//! on in every run — benchmarks, torture runs, CI — so regressions in the
//! tails show up without re-running full experiments.
//!
//! Design constraints, in order:
//!
//! * **No locks on the hot path.** Recording is a handful of relaxed
//!   atomic operations. [`Counter`] stripes its cells across cache lines
//!   so concurrent writers don't bounce one line; [`Histogram`] uses a
//!   fixed array of atomic buckets (log₂-scaled with 4 sub-buckets per
//!   octave, ≤ 25% relative bucket error) — no allocation, no locking,
//!   no resizing, ever.
//! * **Virtual-clock aware.** Nothing in this crate reads a clock: callers
//!   measure durations with [`tpd_common::clock::now_nanos`], which the
//!   deterministic harness switches to a virtual clock. Under the torture
//!   driver a metrics snapshot is therefore a pure function of the seed —
//!   the harness diffs snapshots across same-seed runs as an additional
//!   reproducibility witness.
//! * **Mergeable snapshots.** [`HistogramSnapshot`] and [`MetricsSnapshot`]
//!   merge associatively, so per-epoch (or per-shard) snapshots can be
//!   combined offline. Snapshot maps are ordered (`BTreeMap`) and the JSON
//!   / Prometheus renderings are byte-deterministic.
//!
//! [`MetricsRegistry`] is the named-family container an engine owns:
//! subsystems either register instruments through it or expose their own
//! snapshots that the engine folds into one [`MetricsSnapshot`].

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod snapshot;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::MetricsRegistry;
pub use snapshot::MetricsSnapshot;
