//! Mergeable metric snapshots with deterministic JSON and Prometheus
//! text renderings.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::histogram::HistogramSnapshot;

/// A point-in-time view of every metric an engine (or subsystem) exposes.
///
/// Keys are dot-separated family names (`lock.acquires`,
/// `wal.fsync_ns`). Both maps are ordered, and every rendering walks them
/// in order, so two snapshots with equal contents render byte-identically
/// — the property the torture harness uses as a reproducibility witness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or overwrite) a counter.
    pub fn set_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    /// Set (or overwrite) a histogram.
    pub fn set_histogram(&mut self, name: impl Into<String>, h: HistogramSnapshot) {
        self.histograms.insert(name.into(), h);
    }

    /// Merge another snapshot into this one: counters add, histograms
    /// merge bucket-wise. Associative and commutative, so per-epoch
    /// snapshots fold into a whole-run view in any order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render as JSON. Counters become `"name": value`; each histogram
    /// becomes an object with count, sum, the percentile readout, and the
    /// non-empty `[floor, count]` buckets. Key order is map order
    /// (lexicographic), output has no float formatting (all integers), so
    /// equal snapshots render byte-identically.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{k}\": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.p50(),
                h.p95(),
                h.p99(),
                h.p999()
            );
            for (j, &(floor, n)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}[{floor}, {n}]");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Render in the Prometheus text exposition format. Dots in names
    /// become underscores; counters get a `_total` suffix, histograms
    /// expose `_count`, `_sum`, and cumulative `_bucket{le="..."}` series
    /// (the native Prometheus histogram shape) using each bucket's floor
    /// as its `le` boundary plus a final `+Inf`.
    pub fn to_prometheus(&self) -> String {
        let sanitize = |name: &str| name.replace(['.', '-'], "_");
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = sanitize(k);
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total {v}");
        }
        for (k, h) in &self.histograms {
            let name = sanitize(k);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for &(floor, n) in &h.buckets {
                cum += n;
                let _ = writeln!(out, "{name}_bucket{{le=\"{floor}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    fn sample() -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        m.set_counter("lock.acquires", 10);
        m.set_counter("pool.hits", 7);
        let h = Histogram::new();
        h.record(100);
        h.record(200_000);
        m.set_histogram("wal.fsync_ns", h.snapshot());
        m
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        // Lexicographic key order.
        let lock = a.find("lock.acquires").expect("lock key");
        let pool = a.find("pool.hits").expect("pool key");
        assert!(lock < pool);
        assert!(a.contains("\"count\": 2"));
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.counters["lock.acquires"], 20);
        assert_eq!(a.histograms["wal.fsync_ns"].count, 4);
    }

    #[test]
    fn merge_is_associative() {
        let (a, b, c) = (sample(), sample(), sample());
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.to_json(), a_bc.to_json());
    }

    #[test]
    fn prometheus_shape() {
        let p = sample().to_prometheus();
        assert!(p.contains("lock_acquires_total 10"));
        assert!(p.contains("# TYPE wal_fsync_ns histogram"));
        assert!(p.contains("wal_fsync_ns_count 2"));
        assert!(p.contains("le=\"+Inf\"}} 2") || p.contains("le=\"+Inf\"} 2"));
    }
}
