//! The named-instrument registry an engine owns.
//!
//! Registration is cold (a mutex-guarded map lookup at construction time);
//! recording is hot and goes through the returned `Arc` handles without
//! touching the registry at all — the registry is never on the hot path.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::counter::Counter;
use crate::histogram::Histogram;
use crate::snapshot::MetricsSnapshot;

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

/// A registry of named counters and histograms.
///
/// Names are dot-separated families (`txn.commit_ns.t0`). Registering the
/// same name twice returns the same instrument; registering a name as two
/// different kinds panics (a config bug worth failing loudly on).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    items: Mutex<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut items = self.items.lock().expect("registry poisoned");
        match items
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => c.clone(),
            Instrument::Histogram(_) => panic!("metric {name} already registered as a histogram"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut items = self.items.lock().expect("registry poisoned");
        match items
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::new())))
        {
            Instrument::Histogram(h) => h.clone(),
            Instrument::Counter(_) => panic!("metric {name} already registered as a counter"),
        }
    }

    /// Snapshot every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let items = self.items.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::new();
        for (name, inst) in items.iter() {
            match inst {
                Instrument::Counter(c) => snap.set_counter(name.clone(), c.get()),
                Instrument::Histogram(h) => snap.set_histogram(name.clone(), h.snapshot()),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_instrument() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.snapshot().counters["x"], 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.histogram("x");
    }

    #[test]
    fn snapshot_contains_all() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.histogram("b").record(42);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 3);
        assert_eq!(s.histograms["b"].count, 1);
    }
}
