//! Fixed-bucket, lock-free latency histograms.
//!
//! Buckets are log₂-scaled with [`SUB`] (4) sub-buckets per octave —
//! HdrHistogram's layout at its coarsest setting. The bucket holding a
//! value is never more than 25% wider than the value itself, which is
//! plenty for p50/p95/p99/p99.9 readouts on latencies spanning nanoseconds
//! to minutes, and it keeps the whole histogram a fixed 252-slot array of
//! atomics: recording is two shifts, a mask, and three relaxed atomic adds.
//! No allocation, no locks, no resizing, ever.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket bits per octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave (values below `SUB` get exact unit buckets).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: values 0..4 exact, then 62 octaves × 4 sub-buckets
/// (indices 4..=251 for leading-bit positions 2..=63).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB as usize;

/// The bucket index for a value. Monotonic in `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // position of the leading bit, >= SUB_BITS
        let mantissa = (v >> (exp - SUB_BITS)) & (SUB - 1);
        ((exp - SUB_BITS + 1) as u64 * SUB + mantissa) as usize
    }
}

/// The smallest value mapping to bucket `i` (the inverse of
/// [`bucket_index`] on bucket lower bounds).
fn bucket_floor(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else {
        let exp = (i as u32 / SUB as u32) - 1 + SUB_BITS;
        let mantissa = (i as u64) % SUB;
        (1u64 << exp) | (mantissa << (exp - SUB_BITS))
    }
}

/// A lock-free histogram of `u64` values (latencies in ns, depths, bytes).
///
/// Thread-safe: record from any number of threads while others snapshot.
/// A snapshot taken concurrently with recording sees some prefix of the
/// recording — counts are monotone, never torn per-bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_floor(i), n))
            })
            .collect();
        // Derive count/sum from the buckets where possible so a snapshot
        // racing a `record` stays internally consistent (sum is only
        // approximate under races; exact when quiescent).
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum,
            buckets,
        }
    }
}

/// An immutable, mergeable histogram snapshot.
///
/// `buckets` holds `(bucket_floor, count)` pairs for non-empty buckets,
/// sorted by floor. Percentile readout returns the *floor* of the bucket
/// containing the requested rank — a deterministic under-estimate with at
/// most 25% relative error, which is what makes same-seed snapshots
/// byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (exact when quiescent at snapshot time).
    pub sum: u64,
    /// `(bucket lower bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the floor of the bucket
    /// containing the `ceil(q · count)`-th smallest recording (0 if empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(floor, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return floor;
            }
        }
        self.buckets.last().map_or(0, |&(floor, _)| floor)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another snapshot into this one. Associative and commutative:
    /// bucket floors come from one shared fixed layout, so merging is a
    /// sorted union summing counts. `sum` wraps on overflow, matching the
    /// recording path's relaxed `fetch_add` (wrapping keeps the merge
    /// associative even for adversarial values).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(fa, na)), Some(&(fb, nb))) => {
                    if fa == fb {
                        merged.push((fa, na + nb));
                        i += 1;
                        j += 1;
                    } else if fa < fb {
                        merged.push((fa, na));
                        i += 1;
                    } else {
                        merged.push((fb, nb));
                        j += 1;
                    }
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, Some(&b)) => {
                    merged.push(b);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_floor_inverts() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "monotone at {v}");
            assert!(i < BUCKETS, "in range at {v}: {i}");
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor {floor} <= {v}");
            assert_eq!(bucket_index(floor), i, "floor of bucket {i} maps back");
            last = i;
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        // The next bucket's floor is at most 25% above this bucket's floor
        // (for values >= SUB), bounding percentile under-estimates.
        for v in [10u64, 100, 10_000, 123_456_789] {
            let floor = bucket_floor(bucket_index(v));
            assert!(
                (v - floor) as f64 / v as f64 <= 0.25,
                "error at {v}: floor {floor}"
            );
        }
    }

    #[test]
    fn exact_small_values() {
        for v in 0..SUB {
            assert_eq!(bucket_floor(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // p50 within one bucket (25%) of 500µs, from below.
        assert!(
            s.p50() <= 500_000 && s.p50() >= 375_000,
            "p50 = {}",
            s.p50()
        );
        assert!(
            s.p99() <= 990_000 && s.p99() >= 742_500,
            "p99 = {}",
            s.p99()
        );
        assert!(s.p999() >= s.p99());
        assert!((s.mean() - 500_500_000.0 / 1000.0).abs() < 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 7);
            all.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 131);
            all.record(v * 131);
        }
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa, all.snapshot());
    }

    #[test]
    fn empty_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
