//! Integration and property tests for tpd-metrics: concurrent recording
//! against snapshots, merge algebra, bucket-boundary invariants, and
//! virtual-clock determinism of the JSON rendering.

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_common::clock::{now_nanos, VirtualClock};
use tpd_metrics::{Counter, Histogram, MetricsRegistry, MetricsSnapshot, BUCKETS};

/// Many writer threads hammer a histogram and a counter while a reader
/// thread snapshots continuously. Snapshots must never observe more mass
/// than recorded, and the final totals must be exact.
#[test]
fn concurrent_recording_vs_snapshot_stress() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(Histogram::new());
    let count = Arc::new(Counter::new());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let reader = {
        let (hist, count, stop) = (hist.clone(), count.clone(), stop.clone());
        thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = hist.snapshot();
                let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
                assert!(
                    s.count <= THREADS * PER_THREAD,
                    "count never exceeds recorded mass"
                );
                // Bucket mass and count race benignly (relaxed atomics),
                // but neither can exceed the true total.
                assert!(bucket_total <= THREADS * PER_THREAD);
                assert!(count.get() <= THREADS * PER_THREAD);
                snaps += 1;
            }
            snaps
        })
    };

    let writers: Vec<_> = (0..THREADS)
        .map(|t| {
            let (hist, count) = (hist.clone(), count.clone());
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t + 1);
                for _ in 0..PER_THREAD {
                    hist.record(rng.gen_range(0..1u64 << 40));
                    count.inc();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let snaps = reader.join().expect("reader");
    assert!(snaps > 0, "reader actually snapshotted");

    // Quiescent: totals are exact.
    let s = hist.snapshot();
    assert_eq!(s.count, THREADS * PER_THREAD);
    let bucket_total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD);
    assert_eq!(count.get(), THREADS * PER_THREAD);
}

/// Same seed ⇒ byte-identical JSON, with every duration drawn from the
/// virtual clock. This is the crate-level form of the witness the torture
/// harness relies on.
#[test]
fn virtual_clock_runs_render_identical_json() {
    fn one_run(seed: u64) -> String {
        let _clock = VirtualClock::enable(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let reg = MetricsRegistry::new();
        let lat = reg.histogram("op.latency_ns");
        let ops = reg.counter("op.count");
        for _ in 0..500 {
            let t0 = now_nanos();
            tpd_common::clock::advance(rng.gen_range(1..50_000));
            lat.record(now_nanos() - t0);
            ops.inc();
        }
        reg.snapshot().to_json()
    }
    let a = one_run(99);
    let b = one_run(99);
    assert_eq!(a, b, "same seed must render byte-identically");
    assert_ne!(a, one_run(100), "different seeds must diverge");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging snapshots is associative and commutative, and bucket mass
    /// is conserved, for arbitrary recorded values.
    #[test]
    fn merge_is_associative_and_conserves_mass(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
        zs in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let snap = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            let mut m = MetricsSnapshot::new();
            m.set_counter("n", vals.len() as u64);
            m.set_histogram("h", h.snapshot());
            m
        };
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");
        prop_assert_eq!(ab_c.to_json(), a_bc.to_json());

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &ba, "commutative");

        let total = (xs.len() + ys.len() + zs.len()) as u64;
        prop_assert_eq!(ab_c.counters["n"], total);
        prop_assert_eq!(ab_c.histograms["h"].count, total);
        let mass: u64 = ab_c.histograms["h"].buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(mass, total, "no bucket mass lost in merge");
    }

    /// Every u64 lands in a valid bucket whose floor bounds it from below
    /// within the log₂/4-sub-bucket relative-error contract (≤ 25%).
    #[test]
    fn bucket_boundaries_bound_values(v in any::<u64>()) {
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.buckets.len(), 1);
        let (floor, n) = s.buckets[0];
        prop_assert_eq!(n, 1);
        prop_assert!(floor <= v, "floor {} <= value {}", floor, v);
        // Relative bucket error ≤ 25%: floor > v − v/4 − 1.
        prop_assert!(
            v - floor <= v / 4,
            "floor {} too far below {}",
            floor,
            v
        );
        // Quantiles report the bucket floor.
        prop_assert_eq!(s.quantile(1.0), floor);
    }

    /// Quantiles are monotone in q and bounded by the recorded extremes'
    /// bucket floors, for any sample set.
    #[test]
    fn quantiles_monotone(vals in proptest::collection::vec(any::<u64>(), 1..100)) {
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let s = h.snapshot();
        let qs = [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0];
        let mut last = 0u64;
        for &q in &qs {
            let x = s.quantile(q);
            prop_assert!(x >= last, "quantile monotone at {}", q);
            last = x;
        }
        let max = vals.iter().copied().max().expect("nonempty");
        prop_assert!(s.quantile(1.0) <= max);
    }
}

/// The fixed bucket count covers the full u64 range: the largest value
/// maps to the last bucket, index BUCKETS − 1.
#[test]
fn bucket_count_covers_u64() {
    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(0);
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    assert_eq!(s.buckets.len(), 2);
    // u64::MAX maps into the top octave of the fixed layout: its bucket
    // floor keeps the leading bit, so the 252-slot table covers all of u64.
    let (top_floor, top_n) = *s.buckets.last().expect("nonempty");
    assert_eq!(top_n, 1);
    assert!(top_floor >= 1 << 63, "top bucket floor {top_floor}");
    const _: () = assert!(BUCKETS == 252);
}
