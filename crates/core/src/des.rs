//! Discrete-event simulation of the single-queue scheduling model from
//! Section 5.2, used to validate Theorem 1 empirically.
//!
//! The model: one exclusive lock; a *menu* of transactions, each with an
//! arrival time at the queue and an age at arrival; once granted, a
//! transaction holds the lock for its *remaining time* `R(T)`, drawn i.i.d.
//! from an unknown distribution `D`. A scheduler decides, whenever the lock
//! frees, which queued transaction to grant. A transaction's completion
//! latency is its age at completion (`A[T] + U(T) + Σ R` in the proof's
//! notation), and a schedule's *p-performance* is the expected Lp norm of
//! the latency vector.
//!
//! Theorem 1: VATS (grant the eldest) has optimal p-performance for every
//! menu, every `p ≥ 1`, and every `D`, even against schedulers given `D` as
//! advice. The tests in this module check this against FCFS, RS,
//! youngest-first, and longest-job-first across many menus and seeds, and
//! check the underlying rearrangement-inequality argument *exactly* by brute
//! force on small menus.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_common::stats::lp_norm;

/// One transaction in a menu.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MenuEntry {
    /// Time the transaction arrives at the lock queue.
    pub arrival: f64,
    /// The transaction's age when it arrives (time since its birth).
    pub age_at_arrival: f64,
}

impl MenuEntry {
    /// The transaction's birth time (arrival − age). VATS's eldest-first
    /// rule is equivalent to smallest-birth-first, which is why the grant
    /// order is stable while transactions wait.
    pub fn birth(&self) -> f64 {
        self.arrival - self.age_at_arrival
    }
}

/// A transaction visible to a scheduler while queued.
#[derive(Debug, Clone, Copy)]
pub struct QueuedTxn {
    /// Index into the menu.
    pub idx: usize,
    /// Arrival time at the queue.
    pub arrival: f64,
    /// Age at arrival.
    pub age_at_arrival: f64,
    /// The *realized* remaining time — `NaN` unless the run uses
    /// [`Coupling::PerTxn`] and the scheduler is explicitly an oracle.
    /// Theorem 1's advice model only exposes the distribution, not this.
    pub remaining: f64,
}

impl QueuedTxn {
    /// Age at time `now`.
    pub fn age(&self, now: f64) -> f64 {
        self.age_at_arrival + (now - self.arrival)
    }
}

/// How realized remaining times attach to the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// The k-th *grant* consumes the k-th draw (the coupling used in the
    /// proof of Theorem 1; makes schedules comparable per-realization).
    PerPosition,
    /// Draw i belongs to transaction i regardless of grant order (the
    /// natural reading of "R(T) are i.i.d.").
    PerTxn,
}

/// A scheduler: given the queue, pick the index (into `queue`) to grant.
pub trait DesScheduler {
    /// Display name.
    fn name(&self) -> &'static str;
    /// Pick which queued transaction to grant at time `now`.
    fn pick(&mut self, queue: &[QueuedTxn], now: f64) -> usize;
}

/// VATS: grant the eldest (largest current age; ties by arrival).
#[derive(Debug, Default)]
pub struct Vats;

impl DesScheduler for Vats {
    fn name(&self) -> &'static str {
        "VATS"
    }
    fn pick(&mut self, queue: &[QueuedTxn], now: f64) -> usize {
        let mut best = 0;
        for i in 1..queue.len() {
            let bi = &queue[i];
            let bb = &queue[best];
            if bi.age(now) > bb.age(now) || (bi.age(now) == bb.age(now) && bi.arrival < bb.arrival)
            {
                best = i;
            }
        }
        best
    }
}

/// FCFS: grant the earliest arrival.
#[derive(Debug, Default)]
pub struct Fcfs;

impl DesScheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }
    fn pick(&mut self, queue: &[QueuedTxn], _now: f64) -> usize {
        let mut best = 0;
        for i in 1..queue.len() {
            if queue[i].arrival < queue[best].arrival {
                best = i;
            }
        }
        best
    }
}

/// RS: grant uniformly at random.
#[derive(Debug)]
pub struct RandomSched(SmallRng);

impl RandomSched {
    /// Seeded randomized scheduler.
    pub fn new(seed: u64) -> Self {
        RandomSched(SmallRng::seed_from_u64(seed))
    }
}

impl DesScheduler for RandomSched {
    fn name(&self) -> &'static str {
        "RS"
    }
    fn pick(&mut self, queue: &[QueuedTxn], _now: f64) -> usize {
        self.0.gen_range(0..queue.len())
    }
}

/// Youngest-first: the pessimal mirror of VATS.
#[derive(Debug, Default)]
pub struct YoungestFirst;

impl DesScheduler for YoungestFirst {
    fn name(&self) -> &'static str {
        "Youngest"
    }
    fn pick(&mut self, queue: &[QueuedTxn], now: f64) -> usize {
        let mut best = 0;
        for i in 1..queue.len() {
            if queue[i].age(now) < queue[best].age(now) {
                best = i;
            }
        }
        best
    }
}

/// Grant in a fixed menu-index preference order (used by the brute-force
/// optimality tests: every feasible grant permutation can be expressed as
/// the preference order itself).
#[derive(Debug)]
pub struct FixedOrder {
    rank: Vec<usize>,
}

impl FixedOrder {
    /// `order[k]` is the menu index to prefer k-th.
    pub fn new(order: &[usize]) -> Self {
        let mut rank = vec![usize::MAX; order.len()];
        for (k, &idx) in order.iter().enumerate() {
            rank[idx] = k;
        }
        FixedOrder { rank }
    }
}

impl DesScheduler for FixedOrder {
    fn name(&self) -> &'static str {
        "Fixed"
    }
    fn pick(&mut self, queue: &[QueuedTxn], _now: f64) -> usize {
        let mut best = 0;
        for i in 1..queue.len() {
            if self.rank[queue[i].idx] < self.rank[queue[best].idx] {
                best = i;
            }
        }
        best
    }
}

/// Run one realization: returns the per-transaction completion latencies.
///
/// `draws` must contain at least `menu.len()` remaining-time draws; how they
/// attach is controlled by `coupling`.
pub fn simulate(
    menu: &[MenuEntry],
    sched: &mut dyn DesScheduler,
    draws: &[f64],
    coupling: Coupling,
) -> Vec<f64> {
    let n = menu.len();
    assert!(draws.len() >= n, "need one draw per transaction");
    // Arrival order (stable by index for determinism).
    let mut by_arrival: Vec<usize> = (0..n).collect();
    by_arrival.sort_by(|&a, &b| {
        menu[a]
            .arrival
            .partial_cmp(&menu[b].arrival)
            .expect("NaN arrival")
            .then(a.cmp(&b))
    });

    let mut latencies = vec![0.0; n];
    let mut queue: Vec<QueuedTxn> = Vec::new();
    let mut next_arrival = 0usize;
    let mut t = 0.0f64;
    let mut in_service: Option<(f64, usize)> = None; // (completion time, idx)
    let mut position = 0usize;
    let mut completed = 0usize;

    while completed < n {
        // Admit every arrival at or before `t`.
        while next_arrival < n && menu[by_arrival[next_arrival]].arrival <= t {
            let idx = by_arrival[next_arrival];
            queue.push(QueuedTxn {
                idx,
                arrival: menu[idx].arrival,
                age_at_arrival: menu[idx].age_at_arrival,
                remaining: match coupling {
                    Coupling::PerTxn => draws[idx],
                    Coupling::PerPosition => f64::NAN,
                },
            });
            next_arrival += 1;
        }
        // Grant instantly if the lock is free.
        if in_service.is_none() && !queue.is_empty() {
            let qi = sched.pick(&queue, t);
            let q = queue.remove(qi);
            let r = match coupling {
                Coupling::PerPosition => draws[position],
                Coupling::PerTxn => draws[q.idx],
            };
            position += 1;
            in_service = Some((t + r, q.idx));
            continue;
        }
        // Advance to the next event.
        let na = (next_arrival < n).then(|| menu[by_arrival[next_arrival]].arrival);
        match (na, in_service) {
            (Some(a), Some((c, _))) if a < c => t = a,
            (Some(a), None) => t = a,
            (_, Some((c, idx))) => {
                latencies[idx] = menu[idx].age_at_arrival + (c - menu[idx].arrival);
                completed += 1;
                t = c;
                in_service = None;
            }
            (None, None) => unreachable!("work remains but no event pending"),
        }
    }
    latencies
}

/// Expected p-performance: mean Lp norm over `rounds` i.i.d. draw vectors
/// from the exponential-like distribution with the given mean (we use
/// `-mean·ln(u)`, i.e. exponential — any `D` works for the theorem).
pub fn p_performance<S, F>(
    menu: &[MenuEntry],
    make_sched: F,
    p: f64,
    mean_remaining: f64,
    rounds: u64,
    seed: u64,
    coupling: Coupling,
) -> f64
where
    S: DesScheduler,
    F: Fn(u64) -> S,
{
    let mut total = 0.0;
    for round in 0..rounds {
        let mut rng = SmallRng::seed_from_u64(seed ^ round.wrapping_mul(0x9E3779B97F4A7C15));
        let draws: Vec<f64> = (0..menu.len())
            .map(|_| -mean_remaining * (1.0 - rng.gen::<f64>()).ln())
            .collect();
        let mut sched = make_sched(round);
        let lat = simulate(menu, &mut sched, &draws, coupling);
        total += lp_norm(&lat, p);
    }
    total / rounds as f64
}

/// Generate a random menu: Poisson-ish arrivals with exponential inter-
/// arrival `1/rate`, ages exponential with the given mean.
pub fn random_menu(n: usize, rate: f64, mean_age: f64, seed: u64) -> Vec<MenuEntry> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..n)
        .map(|_| {
            t += -(1.0 - rng.gen::<f64>()).ln() / rate;
            MenuEntry {
                arrival: t,
                age_at_arrival: -mean_age * (1.0 - rng.gen::<f64>()).ln(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_menu() {
        let lat = simulate(&[], &mut Vats, &[], Coupling::PerTxn);
        assert!(lat.is_empty());
    }

    #[test]
    fn single_txn_latency_is_age_plus_service() {
        let menu = [MenuEntry {
            arrival: 2.0,
            age_at_arrival: 1.0,
        }];
        let lat = simulate(&menu, &mut Vats, &[5.0], Coupling::PerTxn);
        assert_eq!(lat, vec![6.0]);
    }

    #[test]
    fn serial_service_accumulates_waits() {
        // Both arrive at 0; VATS grants the elder (idx 1) first.
        let menu = [
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 1.0,
            },
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 9.0,
            },
        ];
        let lat = simulate(&menu, &mut Vats, &[3.0, 3.0], Coupling::PerPosition);
        // Elder: 9 + 3 = 12. Younger waits 3: 1 + 3 + 3 = 7.
        assert_eq!(lat, vec![7.0, 12.0]);
    }

    #[test]
    fn fcfs_respects_arrival_not_age() {
        let menu = [
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 0.0,
            },
            MenuEntry {
                arrival: 0.5,
                age_at_arrival: 100.0,
            },
        ];
        // Busy with idx0 from t=0..4; idx1 arrives at .5 and waits.
        let lat = simulate(&menu, &mut Fcfs, &[4.0, 1.0], Coupling::PerTxn);
        assert_eq!(lat[0], 4.0);
        assert!((lat[1] - (100.0 + 3.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn fixed_order_follows_preference() {
        let menu = [
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 0.0,
            },
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 0.0,
            },
            MenuEntry {
                arrival: 0.0,
                age_at_arrival: 0.0,
            },
        ];
        let mut s = FixedOrder::new(&[2, 0, 1]);
        let lat = simulate(&menu, &mut s, &[1.0, 1.0, 1.0], Coupling::PerPosition);
        // Grant order 2,0,1 -> completions 1,2,3.
        assert_eq!(lat, vec![2.0, 3.0, 1.0]);
    }

    /// The rearrangement-inequality core of Theorem 1, tested *exactly*:
    /// with all transactions queued at t=0 and remaining times coupled to
    /// positions, eldest-first minimizes the Lp norm over all n! orders,
    /// for every realization.
    #[test]
    fn vats_is_exactly_optimal_when_all_queued() {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in permutations(n - 1) {
                for i in 0..=p.len() {
                    let mut q = p.clone();
                    q.insert(i, n - 1);
                    out.push(q);
                }
            }
            out
        }
        let mut rng = SmallRng::seed_from_u64(42);
        for p in [1.0, 2.0, 4.0] {
            for _case in 0..10 {
                let n = 5;
                let menu: Vec<MenuEntry> = (0..n)
                    .map(|_| MenuEntry {
                        arrival: 0.0,
                        age_at_arrival: rng.gen::<f64>() * 10.0,
                    })
                    .collect();
                let draws: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 5.0 + 0.1).collect();
                let vats_lat = simulate(&menu, &mut Vats, &draws, Coupling::PerPosition);
                let vats_norm = lp_norm(&vats_lat, p);
                for perm in permutations(n) {
                    let mut s = FixedOrder::new(&perm);
                    let lat = simulate(&menu, &mut s, &draws, Coupling::PerPosition);
                    let norm = lp_norm(&lat, p);
                    assert!(
                        vats_norm <= norm + 1e-9,
                        "VATS {vats_norm} beaten by {perm:?} = {norm} (p={p})"
                    );
                }
            }
        }
    }

    /// Theorem 1 in expectation on menus with staggered arrivals: VATS's
    /// p-performance is at least as good as FCFS, RS, and youngest-first.
    #[test]
    fn vats_p_performance_dominates_baselines() {
        for seed in [1u64, 7, 99] {
            let menu = random_menu(40, 2.0, 3.0, seed);
            let rounds = 400;
            let p = 2.0;
            let mean_r = 1.0;
            let vats = p_performance(
                &menu,
                |_| Vats,
                p,
                mean_r,
                rounds,
                123,
                Coupling::PerPosition,
            );
            let fcfs = p_performance(
                &menu,
                |_| Fcfs,
                p,
                mean_r,
                rounds,
                123,
                Coupling::PerPosition,
            );
            let young = p_performance(
                &menu,
                |_| YoungestFirst,
                p,
                mean_r,
                rounds,
                123,
                Coupling::PerPosition,
            );
            let rs = p_performance(
                &menu,
                RandomSched::new,
                p,
                mean_r,
                rounds,
                123,
                Coupling::PerPosition,
            );
            assert!(vats <= fcfs * 1.001, "vats {vats} vs fcfs {fcfs}");
            assert!(vats <= rs * 1.001, "vats {vats} vs rs {rs}");
            assert!(vats <= young * 1.001, "vats {vats} vs youngest {young}");
        }
    }

    #[test]
    fn birth_is_arrival_minus_age() {
        let e = MenuEntry {
            arrival: 10.0,
            age_at_arrival: 4.0,
        };
        assert_eq!(e.birth(), 6.0);
    }

    #[test]
    fn random_menu_is_sorted_and_positive() {
        let m = random_menu(100, 5.0, 1.0, 3);
        assert_eq!(m.len(), 100);
        for w in m.windows(2) {
            assert!(w[1].arrival >= w[0].arrival);
        }
        assert!(m.iter().all(|e| e.age_at_arrival >= 0.0));
    }
}
