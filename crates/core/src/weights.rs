//! Incrementally maintained CATS weights.
//!
//! CATS ranks waiters by how many other transactions each one directly
//! blocks. The single-mutex manager recomputed that from scratch on every
//! grant pass — O(queues × waiters × holders) per release. Sharding makes
//! a global rescan impossible (it would need every shard mutex), so the
//! weights are maintained incrementally instead: each lock queue remembers
//! the contribution map it last published, and after any mutation the
//! owning shard diffs the recomputed queue-local map against it and pushes
//! only the deltas here. The board therefore always equals the from-scratch
//! recount over all queues (asserted by
//! `LockManager::verify_cats_weights`), and reading a waiter's weight is a
//! single small-map lookup.
//!
//! The board itself is striped by transaction id so CATS weight traffic
//! from different shards doesn't serialize on one mutex. Lock ordering:
//! shard → board stripe; the board never takes any other lock.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::types::TxnId;

const STRIPES: usize = 16;

/// The global weight accounting: txn → number of waiters it blocks.
#[derive(Debug)]
pub(crate) struct WeightBoard {
    stripes: Vec<Mutex<HashMap<TxnId, i64>>>,
}

impl WeightBoard {
    pub(crate) fn new() -> Self {
        WeightBoard {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn stripe(&self, txn: TxnId) -> &Mutex<HashMap<TxnId, i64>> {
        // Multiplicative mix: txn ids are often sequential.
        let h = txn.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.stripes[h as usize % STRIPES]
    }

    /// Apply a batch of deltas. Entries that reach zero are dropped so the
    /// board stays proportional to the live contention, not to history.
    pub(crate) fn apply(&self, deltas: &HashMap<TxnId, i64>) {
        for (&txn, &delta) in deltas {
            if delta == 0 {
                continue;
            }
            let mut stripe = self.stripe(txn).lock();
            let entry = stripe.entry(txn).or_insert(0);
            *entry += delta;
            debug_assert!(*entry >= 0, "negative CATS weight for {txn}");
            if *entry == 0 {
                stripe.remove(&txn);
            }
        }
    }

    /// The current weight of one transaction.
    pub(crate) fn get(&self, txn: TxnId) -> i64 {
        self.stripe(txn).lock().get(&txn).copied().unwrap_or(0)
    }

    /// All non-zero weights (for the recount assertion).
    pub(crate) fn snapshot(&self) -> HashMap<TxnId, i64> {
        let mut out = HashMap::new();
        for stripe in &self.stripes {
            for (&t, &w) in stripe.lock().iter() {
                if w != 0 {
                    out.insert(t, w);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_accumulate_and_zero_out() {
        let b = WeightBoard::new();
        b.apply(&HashMap::from([(TxnId(1), 2), (TxnId(2), 1)]));
        b.apply(&HashMap::from([(TxnId(1), 1), (TxnId(2), -1)]));
        assert_eq!(b.get(TxnId(1)), 3);
        assert_eq!(b.get(TxnId(2)), 0);
        assert_eq!(b.snapshot(), HashMap::from([(TxnId(1), 3)]));
    }

    #[test]
    fn unknown_txn_reads_zero() {
        let b = WeightBoard::new();
        assert_eq!(b.get(TxnId(42)), 0);
        assert!(b.snapshot().is_empty());
    }
}
