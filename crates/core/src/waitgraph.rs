//! The wait-for graph: cross-shard deadlock detection state.
//!
//! With the lock table sharded (see [`crate::manager`]), no single shard
//! mutex sees the whole wait-for relation, so the blocking edges live in
//! this dedicated component under its own lock. Every queue mutation
//! updates the affected waiters' edges *while still holding the shard
//! mutex*, so the graph always mirrors the union of the per-queue truths:
//! a cycle found here is a real cycle at the instant the graph lock is
//! held — there are no phantom deadlocks from stale edges.
//!
//! Lock ordering: shard → graph. Detection ([`WaitGraph::detect`]) takes
//! only the graph lock, so it may run concurrently with grant traffic on
//! every shard.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use tpd_common::Nanos;

use crate::policy::VictimPolicy;
use crate::types::{ObjectId, TxnId};

/// A waiting transaction's node: what it waits on and who blocks it.
#[derive(Debug, Clone)]
struct WaitNode {
    birth: Nanos,
    waiting_on: ObjectId,
    /// Transactions this waiter is directly blocked by: incompatible
    /// holders plus incompatible waiters ahead of it in its queue.
    blockers: Vec<TxnId>,
}

/// The wait-for graph. A node exists iff the transaction is enqueued as a
/// waiter somewhere; edges point from a waiter to the transactions
/// blocking it.
#[derive(Debug, Default)]
pub(crate) struct WaitGraph {
    nodes: Mutex<HashMap<TxnId, WaitNode>>,
    /// Node count, readable without the mutex: the uncontended fast paths
    /// skip graph work entirely when nothing waits anywhere. Maintained
    /// under the mutex; a reader that could observe a node it cares about
    /// always has a happens-before edge to that node's insertion (its own
    /// earlier call, or a shard mutex both sides held), so a zero read is
    /// never stale for the queries the gates protect.
    len: AtomicUsize,
}

impl WaitGraph {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Upsert the edges for every waiter of one queue. Called with the
    /// queue's shard mutex held, after any mutation of that queue.
    pub(crate) fn update_waiters(
        &self,
        obj: ObjectId,
        entries: impl IntoIterator<Item = (TxnId, Nanos, Vec<TxnId>)>,
    ) {
        let mut nodes = self.nodes.lock();
        for (txn, birth, blockers) in entries {
            // Publish the count *before* the node (and conversely remove
            // before decrementing in `clear_wait`): a gate that reads a
            // transient overcount merely does redundant work, while an
            // undercount could hide a just-formed cycle from `detect`.
            if !nodes.contains_key(&txn) {
                self.len.fetch_add(1, Ordering::Relaxed);
            }
            nodes.insert(
                txn,
                WaitNode {
                    birth,
                    waiting_on: obj,
                    blockers,
                },
            );
        }
    }

    /// Drop a transaction's node (granted, aborted, or dequeued).
    pub(crate) fn clear_wait(&self, txn: TxnId) {
        if self.len.load(Ordering::Relaxed) == 0 {
            return;
        }
        if self.nodes.lock().remove(&txn).is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// The object `txn` currently waits on, if any.
    pub(crate) fn waiting_on(&self, txn: TxnId) -> Option<ObjectId> {
        if self.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.nodes.lock().get(&txn).map(|n| n.waiting_on)
    }

    /// Number of waiting transactions (introspection).
    #[cfg(test)]
    pub(crate) fn waiter_count(&self) -> usize {
        self.nodes.lock().len()
    }

    /// Render the graph for diagnostics.
    pub(crate) fn dump(&self, out: &mut String) {
        use std::fmt::Write;
        let nodes = self.nodes.lock();
        for (txn, node) in nodes.iter() {
            let _ = writeln!(
                out,
                "{txn} waiting_on {} blocked_by {:?}",
                node.waiting_on, node.blockers
            );
        }
    }

    /// Look for a wait-for cycle through `start`; if one exists, choose and
    /// return the victim under `policy`. Cycle search and victim selection
    /// run under one graph-lock acquisition so the choice is made against a
    /// consistent snapshot.
    ///
    /// DFS follows blocker edges; transactions without a node (holders that
    /// are not themselves waiting) are leaves and cannot be on a cycle, so
    /// every cycle member has a node (and thus a birth for the victim
    /// policies that need one).
    pub(crate) fn detect(&self, start: TxnId, policy: VictimPolicy) -> Option<TxnId> {
        // A cycle needs at least two nodes; callers are themselves waiting,
        // so a sub-2 count means no cycle through `start` can exist.
        if self.len.load(Ordering::Relaxed) < 2 {
            return None;
        }
        let nodes = self.nodes.lock();
        let blockers = |t: TxnId| -> Vec<TxnId> {
            nodes
                .get(&t)
                .map(|n| n.blockers.clone())
                .unwrap_or_default()
        };
        // Iterative DFS with path tracking (same discipline the
        // single-mutex manager used).
        let mut path: Vec<TxnId> = vec![start];
        let mut iters: Vec<std::vec::IntoIter<TxnId>> = vec![blockers(start).into_iter()];
        let mut visited: HashSet<TxnId> = HashSet::new();
        visited.insert(start);
        let mut closed = false;
        while let Some(iter) = iters.last_mut() {
            match iter.next() {
                Some(next) => {
                    if next == start {
                        closed = true;
                        break;
                    }
                    if visited.insert(next) {
                        path.push(next);
                        iters.push(blockers(next).into_iter());
                    }
                }
                None => {
                    iters.pop();
                    path.pop();
                }
            }
        }
        if !closed {
            return None;
        }
        let cycle = path;
        let victim = match policy {
            VictimPolicy::Requester => start,
            VictimPolicy::Youngest => cycle
                .iter()
                .copied()
                .max_by_key(|t| nodes.get(t).map_or(0, |n| n.birth))
                .unwrap_or(start),
            VictimPolicy::Oldest => cycle
                .iter()
                .copied()
                .min_by_key(|t| nodes.get(t).map_or(Nanos::MAX, |n| n.birth))
                .unwrap_or(start),
        };
        Some(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(k: u64) -> ObjectId {
        ObjectId::new(1, k)
    }

    #[test]
    fn no_cycle_means_no_victim() {
        let g = WaitGraph::new();
        g.update_waiters(obj(1), [(TxnId(1), 100, vec![TxnId(2)])]);
        assert_eq!(g.detect(TxnId(1), VictimPolicy::Youngest), None);
        assert_eq!(g.waiting_on(TxnId(1)), Some(obj(1)));
        assert_eq!(g.waiter_count(), 1);
    }

    #[test]
    fn two_cycle_picks_youngest() {
        let g = WaitGraph::new();
        g.update_waiters(obj(1), [(TxnId(1), 100, vec![TxnId(2)])]);
        g.update_waiters(obj(2), [(TxnId(2), 200, vec![TxnId(1)])]);
        assert_eq!(g.detect(TxnId(1), VictimPolicy::Youngest), Some(TxnId(2)));
        assert_eq!(g.detect(TxnId(1), VictimPolicy::Oldest), Some(TxnId(1)));
        assert_eq!(g.detect(TxnId(1), VictimPolicy::Requester), Some(TxnId(1)));
    }

    #[test]
    fn clearing_a_node_breaks_the_cycle() {
        let g = WaitGraph::new();
        g.update_waiters(obj(1), [(TxnId(1), 100, vec![TxnId(2)])]);
        g.update_waiters(obj(2), [(TxnId(2), 200, vec![TxnId(1)])]);
        g.clear_wait(TxnId(2));
        assert_eq!(g.detect(TxnId(1), VictimPolicy::Youngest), None);
    }

    #[test]
    fn three_party_cycle_found_through_chain() {
        let g = WaitGraph::new();
        g.update_waiters(obj(1), [(TxnId(1), 300, vec![TxnId(2)])]);
        g.update_waiters(obj(2), [(TxnId(2), 200, vec![TxnId(3)])]);
        g.update_waiters(obj(3), [(TxnId(3), 100, vec![TxnId(1)])]);
        // Youngest = largest birth = txn 1.
        assert_eq!(g.detect(TxnId(2), VictimPolicy::Youngest), Some(TxnId(1)));
    }
}
