//! Transaction scheduling policies (Section 5 of the paper).
//!
//! A policy assigns each waiter a *priority key* at enqueue time; the queue
//! is kept sorted by key, and on every release the grant pass walks it in
//! key order. The three policies from the paper differ only in the key:
//!
//! * **FCFS** — key = arrival sequence number in that queue (the paper's
//!   Section 5.1 baseline: "the transaction which has arrived in Qb the
//!   earliest").
//! * **VATS** — key = transaction birth time: the eldest transaction (the
//!   one with the largest age) sorts first. Ties break by arrival order.
//! * **RS** — key = a random number drawn at enqueue time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::types::TxnToken;
use tpd_common::Nanos;

/// Lock scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// First-come-first-served (default in MySQL 5.6 / Postgres).
    Fcfs,
    /// Variance-Aware Transaction Scheduling: eldest first.
    Vats,
    /// Randomized scheduling (the RS baseline from Section 7.2).
    Random,
    /// Contention-Aware Transaction Scheduling — the successor to VATS
    /// (Huang et al., VLDB'18) that MySQL 8.0 adopted: grant the waiter
    /// that blocks the most other transactions. Implemented here in its
    /// one-hop form; queue order falls back to arrival, and the weight
    /// ranking happens dynamically at grant time (see the lock manager).
    Cats,
    /// Conflict-prediction scheduling (Zhang/Tomasic/Pavlo, arXiv
    /// 2409.01675): each transaction carries a *predicted conflict
    /// footprint* estimated at BEGIN from a per-key EWMA of recent
    /// wait/abort events. The queue stores arrivals in order (like CATS);
    /// the grant pass ranks waiters by footprint — highest predicted
    /// footprint first, so hot transactions finish and release their
    /// locks before cold ones pile up behind them — with VATS (eldest
    /// first) as the tiebreak. With an all-zero footprint (no history,
    /// learning disabled) the ranking degenerates to exactly VATS.
    Predictive,
}

impl Policy {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fcfs => "FCFS",
            Policy::Vats => "VATS",
            Policy::Random => "RS",
            Policy::Cats => "CATS",
            Policy::Predictive => "PRED",
        }
    }

    /// Compute the priority key for a waiter. Lower keys are granted first.
    ///
    /// `seq` is a queue-arrival sequence number (also used as tiebreak), and
    /// `rand` is a uniformly random value drawn by the caller (used only by
    /// RS so the manager controls seeding).
    #[inline]
    pub fn priority_key(self, txn: &TxnToken, seq: u64, rand: u64) -> PriorityKey {
        match self {
            Policy::Fcfs => PriorityKey {
                primary: seq as u128,
                tiebreak: seq,
            },
            Policy::Vats => PriorityKey {
                // Eldest = smallest birth timestamp sorts first.
                primary: txn.birth as u128,
                tiebreak: seq,
            },
            Policy::Random => PriorityKey {
                primary: rand as u128,
                tiebreak: seq,
            },
            // CATS and Predictive store the queue in arrival order; the
            // weight/footprint ranking is dynamic (recomputed at each
            // grant pass).
            Policy::Cats | Policy::Predictive => PriorityKey {
                primary: seq as u128,
                tiebreak: seq,
            },
        }
    }
}

impl std::str::FromStr for Policy {
    type Err = String;

    /// Parse a CLI policy name (case-insensitive): `fcfs`, `vats`,
    /// `rs`/`random`, `cats`, `predictive`/`pred`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(Policy::Fcfs),
            "vats" => Ok(Policy::Vats),
            "rs" | "random" => Ok(Policy::Random),
            "cats" => Ok(Policy::Cats),
            "predictive" | "pred" => Ok(Policy::Predictive),
            other => Err(format!("unknown lock policy '{other}'")),
        }
    }
}

/// A waiter's position in the grant order: sorted by `primary`, then by
/// arrival `tiebreak`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PriorityKey {
    /// Policy-defined key (arrival seq, birth time, or random).
    pub primary: u128,
    /// Arrival sequence, for deterministic tie-breaking.
    pub tiebreak: u64,
}

/// How the deadlock detector chooses a victim among the transactions in a
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Abort the youngest transaction (largest birth). This is the cheapest
    /// victim under VATS's objective: it has accumulated the least age.
    #[default]
    Youngest,
    /// Abort the oldest transaction.
    Oldest,
    /// Abort the requester that closed the cycle (InnoDB 5.6's behaviour).
    Requester,
}

/// Global arrival sequence generator shared by a lock manager.
#[derive(Debug, Default)]
pub struct SeqGen(AtomicU64);

impl SeqGen {
    /// A new generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next sequence number.
    #[inline]
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }
}

/// Helper: a transaction's age given its birth (used in tests & DES).
pub fn age(birth: Nanos, now: Nanos) -> Nanos {
    now.saturating_sub(birth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(id: u64, birth: Nanos) -> TxnToken {
        TxnToken::new(id, birth)
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let p = Policy::Fcfs;
        let a = p.priority_key(&tok(1, 500), 0, 99);
        let b = p.priority_key(&tok(2, 100), 1, 0);
        assert!(a < b, "earlier arrival wins regardless of birth");
    }

    #[test]
    fn vats_orders_by_birth() {
        let p = Policy::Vats;
        // Txn 2 is elder (born earlier) though it arrived later.
        let a = p.priority_key(&tok(1, 500), 0, 0);
        let b = p.priority_key(&tok(2, 100), 1, 0);
        assert!(b < a, "eldest transaction wins");
    }

    #[test]
    fn vats_ties_break_by_arrival() {
        let p = Policy::Vats;
        let a = p.priority_key(&tok(1, 100), 0, 0);
        let b = p.priority_key(&tok(2, 100), 1, 0);
        assert!(a < b);
    }

    #[test]
    fn random_orders_by_rand() {
        let p = Policy::Random;
        let a = p.priority_key(&tok(1, 0), 0, 50);
        let b = p.priority_key(&tok(2, 0), 1, 10);
        assert!(b < a);
    }

    #[test]
    fn seq_gen_is_monotonic() {
        let g = SeqGen::new();
        let a = g.next();
        let b = g.next();
        assert!(b > a);
    }

    #[test]
    fn names() {
        assert_eq!(Policy::Fcfs.name(), "FCFS");
        assert_eq!(Policy::Vats.name(), "VATS");
        assert_eq!(Policy::Random.name(), "RS");
        assert_eq!(Policy::Cats.name(), "CATS");
        assert_eq!(Policy::Predictive.name(), "PRED");
    }

    #[test]
    fn cats_queue_order_is_arrival() {
        let p = Policy::Cats;
        let a = p.priority_key(&tok(1, 900), 0, 7);
        let b = p.priority_key(&tok(2, 100), 1, 3);
        assert!(a < b, "CATS stores by arrival; ranking is dynamic");
    }

    #[test]
    fn predictive_queue_order_is_arrival() {
        let p = Policy::Predictive;
        let a = p.priority_key(&tok(1, 900), 0, 7);
        let b = p.priority_key(&tok(2, 100), 1, 3);
        assert!(a < b, "predictive stores by arrival; ranking is dynamic");
    }

    #[test]
    fn policy_parses_from_cli_names() {
        for (name, want) in [
            ("fcfs", Policy::Fcfs),
            ("FCFS", Policy::Fcfs),
            ("vats", Policy::Vats),
            ("rs", Policy::Random),
            ("random", Policy::Random),
            ("cats", Policy::Cats),
            ("predictive", Policy::Predictive),
            ("pred", Policy::Predictive),
        ] {
            assert_eq!(name.parse::<Policy>(), Ok(want), "{name}");
        }
        assert!("mystery".parse::<Policy>().is_err());
    }
}
