//! Identifiers shared by the lock manager and its clients.

use tpd_common::Nanos;

/// A transaction identifier, unique for the lifetime of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A transaction's identity as the lock manager sees it: its id plus its
/// *birth* timestamp. VATS schedules by age = now − birth (Section 5.2);
/// the birth is the transaction's `BEGIN` time, not its arrival at any
/// particular queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken {
    /// Unique transaction id.
    pub id: TxnId,
    /// Transaction start time (process-relative nanoseconds).
    pub birth: Nanos,
    /// Predicted conflict footprint, estimated at BEGIN by the conflict
    /// predictor. Zero for every policy except `Predictive`; under
    /// `Predictive` the grant pass ranks waiters by this value (highest
    /// first), falling back to VATS order when footprints tie.
    pub footprint: u64,
}

impl TxnToken {
    /// Construct a token with no predicted footprint.
    pub fn new(id: u64, birth: Nanos) -> Self {
        TxnToken {
            id: TxnId(id),
            birth,
            footprint: 0,
        }
    }

    /// Attach a predicted conflict footprint (the `Predictive` policy's
    /// ranking input).
    pub fn with_footprint(mut self, footprint: u64) -> Self {
        self.footprint = footprint;
        self
    }

    /// The transaction's age at time `now`.
    pub fn age_at(&self, now: Nanos) -> Nanos {
        now.saturating_sub(self.birth)
    }
}

/// A lockable object: a (namespace, key) pair. Namespaces distinguish
/// tables, records, index ranges, and any other lock spaces an engine
/// defines; the lock manager is agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Lock namespace (e.g. table id, or a predicate-lock space).
    pub space: u32,
    /// Key within the namespace (e.g. row key).
    pub key: u64,
}

impl ObjectId {
    /// Construct an object id.
    pub fn new(space: u32, key: u64) -> Self {
        ObjectId { space, key }
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.space, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_saturates() {
        let t = TxnToken::new(1, 100);
        assert_eq!(t.age_at(150), 50);
        assert_eq!(t.age_at(50), 0, "age before birth saturates to zero");
    }

    #[test]
    fn footprint_defaults_to_zero_and_builds() {
        let t = TxnToken::new(1, 100);
        assert_eq!(t.footprint, 0);
        assert_eq!(t.with_footprint(42).footprint, 42);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TxnId(7).to_string(), "T7");
        assert_eq!(ObjectId::new(2, 9).to_string(), "2:9");
    }

    #[test]
    fn object_ids_hash_and_order() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ObjectId::new(1, 1));
        set.insert(ObjectId::new(1, 1));
        set.insert(ObjectId::new(1, 2));
        assert_eq!(set.len(), 2);
        assert!(ObjectId::new(1, 1) < ObjectId::new(1, 2));
        assert!(ObjectId::new(1, 9) < ObjectId::new(2, 0));
    }
}
