//! The conflict predictor behind `Policy::Predictive`.
//!
//! Conflict-prediction scheduling (Zhang, Tomasic, Pavlo, arXiv
//! 2409.01675; ForeSight, arXiv 2508.17375) ranks transactions by how
//! much contention they are *about* to cause. This module learns that
//! signal online: a per-key (and per-transaction-type) conflict rate,
//! maintained as an exponentially weighted moving average over the lock
//! manager's own wait/deadlock/timeout events, and folded into a single
//! *footprint* estimate at BEGIN.
//!
//! # Determinism
//!
//! The torture harness proves scheduling decisions reproducible by
//! running every configuration twice and diffing a digest plus the full
//! metrics JSON. A predictor that read the wall clock or used floats
//! would break that witness, so this one is integer-only and uses a
//! *logical* clock:
//!
//! * Rates are Q16 fixed point (`1.0 == 1 << 16`); all arithmetic is
//!   shifts and saturating adds on `u64`.
//! * Time is the global conflict-event counter — `observe` bumps it,
//!   `predict` only reads it. Two runs that observe the same event
//!   sequence therefore hold identical tables, regardless of wall time.
//!
//! # Encoding
//!
//! On an observation with weight `w` (Q16) at event time `t`, a key's
//! rate first *cools* by one halving per [`HALF_LIFE_EVENTS`] elapsed
//! events, then takes the standard EWMA step with `α = 2⁻ᴰ`:
//!
//! ```text
//! rate ← rate - (rate >> DECAY_SHIFT) + (w >> DECAY_SHIFT)
//! ```
//!
//! Reads apply the same cooling without mutating state, so predictions
//! decay toward zero for keys that stopped conflicting — without any
//! background sweeper thread (which would be nondeterministic).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::types::ObjectId;

/// EWMA smoothing: `α = 1/4` per observation.
pub const DECAY_SHIFT: u32 = 2;

/// Read-side cooling: one halving of the stored rate per this many
/// global conflict events without a new observation on the key.
pub const HALF_LIFE_EVENTS: u64 = 64;

/// Q16 fixed-point one: the weight of a plain lock wait.
pub const WEIGHT_WAIT: u64 = 1 << 16;

/// Weight of a deadlock (or timeout) abort — a far stronger conflict
/// signal than a wait that eventually succeeded.
pub const WEIGHT_ABORT: u64 = 4 << 16;

/// At most this many keys of a transaction's hot-key sample contribute
/// to its footprint; beyond that the estimate is already saturated and
/// the extra lookups only cost BEGIN latency.
pub const MAX_KEY_SAMPLE: usize = 8;

/// Tuning knobs for [`ConflictPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Footprints at or above this (Q16) classify the transaction as
    /// *predicted hot* — the admission controller's defer gate and the
    /// `sched.predicted_conflicts` counter key off this.
    pub hot_threshold: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            // Half a conflict per event window: a key must have been in
            // roughly every other recent conflict to count as hot.
            hot_threshold: WEIGHT_WAIT / 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Rate {
    /// Q16 conflict rate as of `last_event`.
    value: u64,
    /// Global event time of the last observation.
    last_event: u64,
}

impl Rate {
    /// The rate cooled to event time `now` (pure; no state change).
    fn cooled(&self, now: u64) -> u64 {
        let elapsed = now.saturating_sub(self.last_event);
        let halvings = (elapsed / HALF_LIFE_EVENTS).min(63);
        self.value >> halvings
    }

    /// Cool to `now`, then take one EWMA step with weight `w`.
    fn observe(&mut self, now: u64, w: u64) {
        let cooled = self.cooled(now);
        self.value = cooled - (cooled >> DECAY_SHIFT) + (w >> DECAY_SHIFT);
        self.last_event = now;
    }
}

#[derive(Debug, Default)]
struct Table {
    /// Per-key conflict rates, keyed by the lock manager's object ids.
    keys: HashMap<ObjectId, Rate>,
    /// Per-transaction-type conflict rates (workload-defined type index).
    types: HashMap<u8, Rate>,
}

/// Online conflict-rate table: observe lock conflicts, predict a
/// transaction's conflict footprint at BEGIN.
///
/// Thread-safe; in the deterministic torture harness all calls come from
/// one driver thread, so the observation order (and hence every rate) is
/// identical across doubled runs.
#[derive(Debug)]
pub struct ConflictPredictor {
    config: PredictorConfig,
    /// Logical clock: total conflict events observed.
    events: AtomicU64,
    table: Mutex<Table>,
}

impl ConflictPredictor {
    /// A predictor with the given knobs and an empty history.
    pub fn new(config: PredictorConfig) -> Self {
        ConflictPredictor {
            config,
            events: AtomicU64::new(0),
            table: Mutex::new(Table::default()),
        }
    }

    /// The configured hot threshold (Q16).
    pub fn hot_threshold(&self) -> u64 {
        self.config.hot_threshold
    }

    /// Total conflict events observed (the logical clock).
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Record one conflict event: transaction of type `ty` waited on (or
    /// aborted over) `key`. `weight` is Q16 — [`WEIGHT_WAIT`] for a wait
    /// that eventually succeeded, [`WEIGHT_ABORT`] for a deadlock or
    /// timeout victim.
    pub fn observe(&self, ty: u8, key: ObjectId, weight: u64) {
        let mut table = self.table.lock();
        // Advance the logical clock under the lock so (event time, rate)
        // pairs are consistent even with concurrent observers.
        let now = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        table.keys.entry(key).or_default().observe(now, weight);
        table.types.entry(ty).or_default().observe(now, weight);
    }

    /// Estimate the conflict footprint (Q16) of a transaction of type
    /// `ty` that expects to touch `keys`: the type's own rate plus the
    /// rates of up to [`MAX_KEY_SAMPLE`] sampled keys, each cooled to the
    /// current logical time. Read-only — prediction never perturbs the
    /// table, so doubled runs that predict a different number of times
    /// still converge.
    pub fn predict(&self, ty: u8, keys: &[ObjectId]) -> u64 {
        let now = self.events.load(Ordering::Relaxed);
        let table = self.table.lock();
        let mut footprint = table.types.get(&ty).map_or(0, |r| r.cooled(now));
        for key in keys.iter().take(MAX_KEY_SAMPLE) {
            let rate = table.keys.get(key).map_or(0, |r| r.cooled(now));
            footprint = footprint.saturating_add(rate);
        }
        footprint
    }

    /// Whether a footprint classifies as *predicted hot*.
    pub fn is_hot(&self, footprint: u64) -> bool {
        footprint >= self.config.hot_threshold
    }
}

impl Default for ConflictPredictor {
    fn default() -> Self {
        Self::new(PredictorConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> ObjectId {
        ObjectId::new(1, k)
    }

    #[test]
    fn empty_history_predicts_zero() {
        let p = ConflictPredictor::default();
        assert_eq!(p.predict(0, &[key(1), key(2)]), 0);
        assert!(!p.is_hot(0));
    }

    #[test]
    fn observations_raise_the_footprint() {
        let p = ConflictPredictor::default();
        for _ in 0..8 {
            p.observe(3, key(7), WEIGHT_WAIT);
        }
        let hot = p.predict(3, &[key(7)]);
        let cold = p.predict(3, &[key(8)]);
        assert!(hot > cold, "conflicted key outranks untouched key");
        assert!(p.predict(5, &[key(8)]) == 0, "other types unaffected");
        assert!(p.is_hot(hot), "8 straight waits crosses the threshold");
    }

    #[test]
    fn aborts_weigh_more_than_waits() {
        let p = ConflictPredictor::default();
        p.observe(0, key(1), WEIGHT_WAIT);
        p.observe(1, key(2), WEIGHT_ABORT);
        // Compare keys alone (types differ so the type rate cancels out
        // of neither; use disjoint types and subtract via fresh keys).
        let wait_only = p.predict(0, &[key(1)]);
        let abort_only = p.predict(1, &[key(2)]);
        assert!(abort_only > wait_only);
    }

    #[test]
    fn rates_cool_with_logical_time() {
        let p = ConflictPredictor::default();
        p.observe(0, key(1), WEIGHT_ABORT);
        let fresh = p.predict(0, &[key(1)]);
        // Pour events onto an unrelated key to advance the clock.
        for _ in 0..(HALF_LIFE_EVENTS * 4) {
            p.observe(9, key(99), WEIGHT_WAIT);
        }
        let stale = p.predict(0, &[key(1)]);
        assert!(
            stale < fresh / 8,
            "4 half-lives must cool at least 8x: fresh={fresh} stale={stale}"
        );
    }

    #[test]
    fn prediction_is_read_only() {
        let p = ConflictPredictor::default();
        p.observe(0, key(1), WEIGHT_WAIT);
        let a = p.predict(0, &[key(1)]);
        for _ in 0..100 {
            p.predict(0, &[key(1)]);
        }
        assert_eq!(a, p.predict(0, &[key(1)]));
        assert_eq!(p.events(), 1, "predict must not advance the clock");
    }

    #[test]
    fn key_sample_is_capped() {
        let p = ConflictPredictor::default();
        for k in 0..32u64 {
            p.observe(0, key(k), WEIGHT_ABORT);
        }
        let all: Vec<ObjectId> = (0..32).map(key).collect();
        let capped: Vec<ObjectId> = (0..MAX_KEY_SAMPLE as u64).map(key).collect();
        assert_eq!(p.predict(0, &all), p.predict(0, &capped));
    }

    #[test]
    fn identical_event_sequences_yield_identical_tables() {
        let run = || {
            let p = ConflictPredictor::default();
            for i in 0..500u64 {
                let w = if i % 7 == 0 { WEIGHT_ABORT } else { WEIGHT_WAIT };
                p.observe((i % 5) as u8, key(i % 13), w);
            }
            (0..13).map(|k| p.predict(2, &[key(k)])).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
