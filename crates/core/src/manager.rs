//! The lock manager: strict 2PL with pluggable grant scheduling.
//!
//! Architecture follows InnoDB 5.6, the system the paper studied: a single
//! lock-system mutex guards every queue (`lock_sys->mutex`), waiters suspend
//! on per-request condvars (`lock_wait_suspend_thread` / `os_event_wait` in
//! MySQL — the paper's #1 variance source), and deadlock detection walks the
//! wait-for relation directly over the queues at block time.
//!
//! Grant discipline (shared by every policy; only the priority key differs):
//!
//! * **Arrival**: the request joins the queue at its policy position and is
//!   granted immediately iff it conflicts with no granted lock and no
//!   still-waiting request ahead of it — InnoDB's rule. Under FCFS arrivals
//!   sort last, so this reduces to the paper's Section 5.1 rule ("grant iff
//!   compatible and nobody waits"), including footnote 7's starvation
//!   guard. Under VATS/RS an arrival can sort at the *head* of the queue;
//!   granting a conflict-free head request is required for liveness (a
//!   strict "never grant on arrival" would strand it, as no release would
//!   ever re-run the grant pass — caught by the stress suite).
//! * **Lock upgrade** (e.g. S→X on the same object) waits only on the other
//!   current *holders*, jumping the waiter queue: letting an upgrade queue
//!   behind a waiting X from another transaction would deadlock immediately.
//! * **Release**: the queue is walked in priority order; each waiter is
//!   granted iff compatible with every granted lock and every still-waiting
//!   request ahead of it. Under VATS this is exactly the paper's "grants as
//!   many locks as possible ... preserved in an eldest-first order".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_common::{now_nanos, Nanos};

use crate::mode::LockMode;
use crate::policy::{Policy, PriorityKey, SeqGen, VictimPolicy};
use crate::types::{ObjectId, TxnId, TxnToken};

/// Lock manager configuration.
#[derive(Debug, Clone)]
pub struct LockManagerConfig {
    /// Grant scheduling policy.
    pub policy: Policy,
    /// Deadlock victim selection.
    pub victim: VictimPolicy,
    /// Liveness fallback: a waiter that exceeds this bound is aborted with
    /// [`LockError::Timeout`]. `None` disables the fallback.
    pub wait_timeout: Option<Duration>,
    /// Seed for the RS policy's random keys.
    pub rng_seed: u64,
}

impl Default for LockManagerConfig {
    fn default() -> Self {
        LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_secs(10)),
            rng_seed: 0x10C5,
        }
    }
}

impl LockManagerConfig {
    /// A config with the given policy and defaults elsewhere.
    pub fn with_policy(policy: Policy) -> Self {
        LockManagerConfig {
            policy,
            ..Default::default()
        }
    }
}

/// Why an acquire failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The transaction was chosen as a deadlock victim (either immediately on
    /// blocking, or while suspended). The caller must abort and release.
    Deadlock,
    /// The liveness-fallback timeout expired.
    Timeout,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Deadlock => f.write_str("deadlock victim"),
            LockError::Timeout => f.write_str("lock wait timeout"),
        }
    }
}

impl std::error::Error for LockError {}

/// A successful acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted. `waited` is the suspension time (0 if granted on
    /// arrival); callers feed this to the profiler as the
    /// `os_event_wait`-equivalent event.
    Granted {
        /// Nanoseconds the requester was suspended.
        waited: Nanos,
    },
    /// The transaction already held a covering lock; nothing to do.
    AlreadyHeld,
}

impl AcquireOutcome {
    /// The suspension time (0 for `AlreadyHeld`).
    pub fn waited(&self) -> Nanos {
        match self {
            AcquireOutcome::Granted { waited } => *waited,
            AcquireOutcome::AlreadyHeld => 0,
        }
    }
}

/// Cumulative lock-manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total acquire calls (including re-acquires of held locks).
    pub acquires: u64,
    /// Granted without suspension.
    pub immediate: u64,
    /// Granted after suspension.
    pub waited: u64,
    /// Lock upgrades performed.
    pub upgrades: u64,
    /// Transactions aborted as deadlock victims.
    pub deadlocks: u64,
    /// Waits aborted by the timeout fallback.
    pub timeouts: u64,
    /// Total nanoseconds spent suspended across all waiters.
    pub wait_ns: u64,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum WaitState {
    Waiting,
    Granted,
    Victim,
}

#[derive(Debug)]
struct WaitSlot {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl WaitSlot {
    fn new() -> Arc<Self> {
        Arc::new(WaitSlot {
            state: Mutex::new(WaitState::Waiting),
            cv: Condvar::new(),
        })
    }
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnToken,
    /// The full mode the transaction will hold once granted (for upgrades,
    /// the supremum of held and requested).
    mode: LockMode,
    /// True when the transaction already holds a weaker lock on the object.
    upgrade: bool,
    key: PriorityKey,
    slot: Arc<WaitSlot>,
}

#[derive(Debug, Default)]
struct LockQueue {
    granted: Vec<(TxnToken, LockMode)>,
    /// Sorted: upgrades first (by key), then regular waiters by key.
    waiting: Vec<Waiter>,
}

impl LockQueue {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.granted
            .iter()
            .find(|(t, _)| t.id == txn)
            .map(|&(_, m)| m)
    }

    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.waiting.is_empty()
    }

    /// Insert maintaining (upgrade-first, key) order.
    fn insert_waiter(&mut self, w: Waiter) {
        let pos = self
            .waiting
            .iter()
            .position(|other| {
                // `w` goes before `other` if w sorts strictly earlier.
                match (w.upgrade, other.upgrade) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => w.key < other.key,
                }
            })
            .unwrap_or(self.waiting.len());
        self.waiting.insert(pos, w);
    }

    /// Would `mode` (requested by `txn`, upgrading or not) conflict with any
    /// granted lock held by another transaction?
    fn conflicts_granted(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .any(|(t, m)| t.id != txn && !mode.compatible(*m))
    }
}

#[derive(Debug)]
struct TxnInfo {
    token: TxnToken,
    held: Vec<ObjectId>,
    waiting_on: Option<ObjectId>,
}

#[derive(Debug)]
struct Inner {
    queues: HashMap<ObjectId, LockQueue>,
    txns: HashMap<TxnId, TxnInfo>,
    rng: SmallRng,
}

/// The lock manager. See the module docs for the grant discipline.
#[derive(Debug)]
pub struct LockManager {
    inner: Mutex<Inner>,
    seq: SeqGen,
    config: LockManagerConfig,
    // Stats kept as atomics so reads don't take the big mutex.
    acquires: AtomicU64,
    immediate: AtomicU64,
    waited: AtomicU64,
    upgrades: AtomicU64,
    deadlocks: AtomicU64,
    timeouts: AtomicU64,
    wait_ns: AtomicU64,
}

impl LockManager {
    /// A manager with the given configuration.
    pub fn new(config: LockManagerConfig) -> Self {
        LockManager {
            inner: Mutex::new(Inner {
                queues: HashMap::new(),
                txns: HashMap::new(),
                rng: SmallRng::seed_from_u64(config.rng_seed),
            }),
            seq: SeqGen::new(),
            config,
            acquires: AtomicU64::new(0),
            immediate: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            deadlocks: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
        }
    }

    /// A manager with the given policy and default config elsewhere.
    pub fn with_policy(policy: Policy) -> Self {
        Self::new(LockManagerConfig::with_policy(policy))
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// Acquire `mode` on `obj` for `txn`, suspending if necessary.
    ///
    /// Returns how long the caller was suspended, or a [`LockError`] if the
    /// transaction was chosen as a deadlock victim / timed out — in which
    /// case the caller must abort the transaction and call
    /// [`LockManager::release_all`].
    pub fn acquire(
        &self,
        txn: TxnToken,
        obj: ObjectId,
        mode: LockMode,
    ) -> Result<AcquireOutcome, LockError> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let slot;
        {
            let mut inner = self.inner.lock();
            inner.txns.entry(txn.id).or_insert_with(|| TxnInfo {
                token: txn,
                held: Vec::new(),
                waiting_on: None,
            });

            let queue = inner.queues.entry(obj).or_default();
            let held = queue.holder_mode(txn.id);
            if let Some(h) = held {
                if h.covers(mode) {
                    return Ok(AcquireOutcome::AlreadyHeld);
                }
            }
            let upgrade = held.is_some();
            let effective = match held {
                Some(h) => h.supremum(mode),
                None => mode,
            };

            // Immediate upgrade: needs only to be compatible with the
            // *other* holders (upgrades jump the waiter queue; queuing
            // behind a foreign waiting X would deadlock instantly).
            let conflicts = queue.conflicts_granted(txn.id, effective);
            if upgrade && !conflicts {
                Self::grant_in_place(queue, txn, effective, true);
                self.upgrades.fetch_add(1, Ordering::Relaxed);
                self.immediate.fetch_add(1, Ordering::Relaxed);
                return Ok(AcquireOutcome::Granted { waited: 0 });
            }

            // Fresh requests (and blocked upgrades) join the queue at their
            // policy position, then the standard grant pass runs: the
            // request is granted right here iff it conflicts with no
            // granted lock and no still-waiting request ahead of it —
            // InnoDB's arrival rule. (Under FCFS an arrival is always last,
            // so this reduces to "grant iff compatible and queue empty",
            // footnote 7's starvation guard. Under VATS/RS an arrival may
            // sort at the head; refusing to grant a conflict-free head
            // request would strand it forever, since no release would ever
            // re-run the grant pass.)
            let seq = self.seq.next();
            let rand: u64 = inner.rng.gen();
            let key = self.config.policy.priority_key(&txn, seq, rand);
            slot = WaitSlot::new();
            let queue = inner.queues.get_mut(&obj).expect("exists");
            queue.insert_waiter(Waiter {
                txn,
                mode: effective,
                upgrade,
                key,
                slot: slot.clone(),
            });
            inner
                .txns
                .get_mut(&txn.id)
                .expect("registered above")
                .waiting_on = Some(obj);
            self.regrant(&mut inner, obj);
            if *slot.state.lock() == WaitState::Granted {
                self.immediate.fetch_add(1, Ordering::Relaxed);
                return Ok(AcquireOutcome::Granted { waited: 0 });
            }

            // Deadlock detection at block time, walked over the live queues.
            while let Some(cycle) = Self::find_cycle(&inner, txn.id) {
                let victim = Self::choose_victim(&inner, &cycle, self.config.victim, txn.id);
                self.deadlocks.fetch_add(1, Ordering::Relaxed);
                if victim == txn.id {
                    Self::remove_waiter(&mut inner, txn.id, obj);
                    self.regrant(&mut inner, obj);
                    return Err(LockError::Deadlock);
                }
                Self::abort_waiter(&mut inner, victim);
                self.regrant_for_txn_removal(&mut inner, victim);
            }
        }

        // Suspended: this is the paper's `lock_wait_suspend_thread` /
        // `os_event_wait` — the #1 source of latency variance in MySQL.
        let wait_start = now_nanos();
        match Self::wait_on_slot(&slot, self.config.wait_timeout) {
            WaitState::Granted => {}
            WaitState::Victim => return Err(LockError::Deadlock),
            WaitState::Waiting => {
                // Timed out while still queued: dequeue ourselves.
                // Lock order: inner before slot.
                let mut inner = self.inner.lock();
                let mut st = slot.state.lock();
                match *st {
                    WaitState::Waiting => {
                        *st = WaitState::Victim;
                        drop(st);
                        Self::remove_waiter(&mut inner, txn.id, obj);
                        self.regrant(&mut inner, obj);
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Timeout);
                    }
                    // Resolved while we raced for the big lock.
                    WaitState::Granted => {}
                    WaitState::Victim => return Err(LockError::Deadlock),
                }
            }
        }
        let waited = now_nanos() - wait_start;
        self.waited.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(waited, Ordering::Relaxed);
        Ok(AcquireOutcome::Granted { waited })
    }

    /// Release every lock `txn` holds (commit or abort), waking whatever the
    /// policy grants next. Also removes a pending wait if the transaction
    /// was aborted while enqueued.
    pub fn release_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        let Some(info) = inner.txns.remove(&txn) else {
            return;
        };
        if let Some(obj) = info.waiting_on {
            Self::remove_waiter(&mut inner, txn, obj);
            self.regrant(&mut inner, obj);
        }
        for obj in info.held {
            if let Some(queue) = inner.queues.get_mut(&obj) {
                queue.granted.retain(|(t, _)| t.id != txn);
            }
            self.regrant(&mut inner, obj);
            if inner.queues.get(&obj).is_some_and(LockQueue::is_empty) {
                inner.queues.remove(&obj);
            }
        }
    }

    /// The mode `txn` currently holds on `obj`, if any.
    pub fn held_mode(&self, txn: TxnId, obj: ObjectId) -> Option<LockMode> {
        let inner = self.inner.lock();
        inner.queues.get(&obj).and_then(|q| q.holder_mode(txn))
    }

    /// Number of transactions waiting on `obj` (introspection for tests and
    /// experiment instrumentation).
    pub fn waiting_count(&self, obj: ObjectId) -> usize {
        let inner = self.inner.lock();
        inner.queues.get(&obj).map_or(0, |q| q.waiting.len())
    }

    /// Number of granted locks on `obj`.
    pub fn granted_count(&self, obj: ObjectId) -> usize {
        let inner = self.inner.lock();
        inner.queues.get(&obj).map_or(0, |q| q.granted.len())
    }

    /// Render the full lock-system state (diagnostics for tests).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let inner = self.inner.lock();
        let mut out = String::new();
        for (obj, q) in &inner.queues {
            if q.is_empty() {
                continue;
            }
            let _ = write!(out, "{obj}: granted[");
            for (t, m) in &q.granted {
                let _ = write!(out, "{}:{m} ", t.id);
            }
            let _ = write!(out, "] waiting[");
            for w in &q.waiting {
                let _ = write!(
                    out,
                    "{}:{}{} ",
                    w.txn.id,
                    w.mode,
                    if w.upgrade { "(up)" } else { "" }
                );
            }
            let _ = writeln!(out, "]");
        }
        for (t, info) in &inner.txns {
            if let Some(obj) = info.waiting_on {
                let _ = writeln!(out, "{t} waiting_on {obj} holds {:?}", info.held);
            }
        }
        out
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            immediate: self.immediate.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Block on the wait slot until granted, victimized, or (when a timeout
    /// is configured) the timeout expires with the request still pending —
    /// signalled by returning `Waiting`.
    fn wait_on_slot(slot: &WaitSlot, timeout: Option<Duration>) -> WaitState {
        let mut state = slot.state.lock();
        loop {
            match *state {
                WaitState::Granted => return WaitState::Granted,
                WaitState::Victim => return WaitState::Victim,
                WaitState::Waiting => {}
            }
            match timeout {
                Some(t) => {
                    if slot.cv.wait_for(&mut state, t).timed_out() && *state == WaitState::Waiting {
                        return WaitState::Waiting;
                    }
                }
                None => slot.cv.wait(&mut state),
            }
        }
    }

    // ---- internals (all require the inner mutex held by the caller) ----

    fn grant_in_place(queue: &mut LockQueue, txn: TxnToken, mode: LockMode, upgrade: bool) {
        if upgrade {
            let entry = queue
                .granted
                .iter_mut()
                .find(|(t, _)| t.id == txn.id)
                .expect("upgrade requires existing grant");
            entry.1 = mode;
        } else {
            queue.granted.push((txn, mode));
        }
    }

    /// Walk the queue in priority order granting everything grantable.
    fn regrant(&self, inner: &mut Inner, obj: ObjectId) {
        // CATS needs a global view (how many waiters each transaction
        // blocks), so compute weights before borrowing the queue mutably.
        let weights = if self.config.policy == Policy::Cats {
            Some(Self::cats_weights(inner))
        } else {
            None
        };
        let Some(queue) = inner.queues.get_mut(&obj) else {
            return;
        };
        if queue.waiting.is_empty() {
            return;
        }
        // Scan order: queue (policy) order, except CATS re-ranks by weight
        // (upgrades always first; ties fall back to queue position).
        let mut order: Vec<usize> = (0..queue.waiting.len()).collect();
        if let Some(weights) = &weights {
            order.sort_by_key(|&i| {
                let w = &queue.waiting[i];
                let weight = weights.get(&w.txn.id).copied().unwrap_or(0);
                (!w.upgrade, std::cmp::Reverse(weight), i)
            });
        }
        // Plan grants: each scanned waiter is granted iff compatible with
        // every granted lock, every grant planned in this pass, and every
        // still-waiting request scanned ahead of it.
        let mut barrier: Vec<(LockMode, TxnId)> = Vec::new();
        let mut planned: Vec<(usize, LockMode, TxnId)> = Vec::new();
        for &i in &order {
            let w = &queue.waiting[i];
            let ok_granted = !queue.conflicts_granted(w.txn.id, w.mode)
                && planned
                    .iter()
                    .all(|(_, m, t)| *t == w.txn.id || w.mode.compatible(*m));
            let ok_barrier = barrier
                .iter()
                .all(|(m, t)| *t == w.txn.id || w.mode.compatible(*m));
            if ok_granted && ok_barrier {
                planned.push((i, w.mode, w.txn.id));
            } else {
                barrier.push((w.mode, w.txn.id));
            }
        }
        // Apply: remove planned waiters (descending index), grant, wake.
        planned.sort_by_key(|&(i, _, _)| std::cmp::Reverse(i));
        let mut granted_txns: Vec<TxnId> = Vec::new();
        for (i, _, _) in planned {
            let w = queue.waiting.remove(i);
            Self::grant_in_place(queue, w.txn, w.mode, w.upgrade);
            if w.upgrade {
                self.upgrades.fetch_add(1, Ordering::Relaxed);
            }
            granted_txns.push(w.txn.id);
            let mut st = w.slot.state.lock();
            *st = WaitState::Granted;
            w.slot.cv.notify_one();
        }
        for t in granted_txns {
            if let Some(info) = inner.txns.get_mut(&t) {
                info.waiting_on = None;
                if !info.held.contains(&obj) {
                    info.held.push(obj);
                }
            }
        }
    }

    /// CATS weights: for every transaction, how many waiters (across all
    /// queues) it directly blocks — the one-hop form of the
    /// contention-aware priority (Huang et al., VLDB'18; adopted by MySQL
    /// 8.0 as the successor to VATS).
    fn cats_weights(inner: &Inner) -> HashMap<TxnId, usize> {
        let mut weights: HashMap<TxnId, usize> = HashMap::new();
        for (_, queue) in inner.queues.iter() {
            for (pos, w) in queue.waiting.iter().enumerate() {
                for (t, m) in &queue.granted {
                    if t.id != w.txn.id && !w.mode.compatible(*m) {
                        *weights.entry(t.id).or_insert(0) += 1;
                    }
                }
                for ahead in &queue.waiting[..pos] {
                    if !w.mode.compatible(ahead.mode) {
                        *weights.entry(ahead.txn.id).or_insert(0) += 1;
                    }
                }
            }
        }
        weights
    }

    /// Remove `txn`'s waiter entry from `obj`'s queue, if present.
    fn remove_waiter(inner: &mut Inner, txn: TxnId, obj: ObjectId) {
        if let Some(queue) = inner.queues.get_mut(&obj) {
            queue.waiting.retain(|w| w.txn.id != txn);
        }
        if let Some(info) = inner.txns.get_mut(&txn) {
            if info.waiting_on == Some(obj) {
                info.waiting_on = None;
            }
        }
    }

    /// Mark a *waiting* transaction as a deadlock victim and dequeue it.
    /// Its locks stay held until it observes the abort and releases.
    fn abort_waiter(inner: &mut Inner, victim: TxnId) {
        let Some(obj) = inner.txns.get(&victim).and_then(|i| i.waiting_on) else {
            return;
        };
        let slot = inner.queues.get_mut(&obj).and_then(|queue| {
            let pos = queue.waiting.iter().position(|w| w.txn.id == victim)?;
            Some(queue.waiting.remove(pos).slot)
        });
        if let Some(info) = inner.txns.get_mut(&victim) {
            info.waiting_on = None;
        }
        if let Some(slot) = slot {
            let mut st = slot.state.lock();
            *st = WaitState::Victim;
            slot.cv.notify_one();
        }
    }

    /// After removing a victim's waiter, its queue may be grantable.
    fn regrant_for_txn_removal(&self, inner: &mut Inner, victim: TxnId) {
        // The victim's former wait queue was already cleared of its entry;
        // regrant every queue the victim participates in as a holder is NOT
        // needed (it still holds its locks) — only the queue it waited on
        // could have been unblocked by the dequeue. We cannot know it here
        // (waiting_on was cleared), so regrant all queues where waiters
        // exist but nothing blocks; cheap because queues are small.
        let objs: Vec<ObjectId> = inner
            .queues
            .iter()
            .filter(|(_, q)| !q.waiting.is_empty())
            .map(|(o, _)| *o)
            .collect();
        let _ = victim;
        for obj in objs {
            self.regrant(inner, obj);
        }
    }

    /// The transactions blocking `txn` at its wait queue: incompatible
    /// holders plus incompatible waiters ahead of it in grant order.
    fn blockers(inner: &Inner, txn: TxnId) -> Vec<TxnId> {
        let Some(info) = inner.txns.get(&txn) else {
            return Vec::new();
        };
        let Some(obj) = info.waiting_on else {
            return Vec::new();
        };
        let Some(queue) = inner.queues.get(&obj) else {
            return Vec::new();
        };
        let Some(me) = queue.waiting.iter().find(|w| w.txn.id == txn) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (t, m) in &queue.granted {
            if t.id != txn && !me.mode.compatible(*m) {
                out.push(t.id);
            }
        }
        for w in &queue.waiting {
            if w.txn.id == txn {
                break;
            }
            if !me.mode.compatible(w.mode) {
                out.push(w.txn.id);
            }
        }
        out
    }

    /// DFS over the waits-for relation looking for a cycle containing
    /// `start`. Returns the cycle's members if found.
    fn find_cycle(inner: &Inner, start: TxnId) -> Option<Vec<TxnId>> {
        // Iterative DFS with path tracking.
        let mut path: Vec<TxnId> = vec![start];
        let mut iters: Vec<std::vec::IntoIter<TxnId>> =
            vec![Self::blockers(inner, start).into_iter()];
        let mut visited: std::collections::HashSet<TxnId> = std::collections::HashSet::new();
        visited.insert(start);
        while let Some(iter) = iters.last_mut() {
            match iter.next() {
                Some(next) => {
                    if next == start {
                        return Some(path.clone());
                    }
                    if visited.insert(next) {
                        path.push(next);
                        iters.push(Self::blockers(inner, next).into_iter());
                    }
                }
                None => {
                    iters.pop();
                    path.pop();
                }
            }
        }
        None
    }

    fn choose_victim(
        inner: &Inner,
        cycle: &[TxnId],
        policy: VictimPolicy,
        requester: TxnId,
    ) -> TxnId {
        match policy {
            VictimPolicy::Requester => requester,
            VictimPolicy::Youngest => cycle
                .iter()
                .copied()
                .max_by_key(|t| inner.txns.get(t).map_or(0, |i| i.token.birth))
                .unwrap_or(requester),
            VictimPolicy::Oldest => cycle
                .iter()
                .copied()
                .min_by_key(|t| inner.txns.get(t).map_or(Nanos::MAX, |i| i.token.birth))
                .unwrap_or(requester),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn obj(k: u64) -> ObjectId {
        ObjectId::new(1, k)
    }

    fn tok(id: u64, birth: Nanos) -> TxnToken {
        TxnToken::new(id, birth)
    }

    /// Spawn a thread that acquires and reports, so tests can sequence
    /// enqueue order deterministically via `waiting_count`.
    fn acquire_async(
        mgr: &Arc<LockManager>,
        txn: TxnToken,
        o: ObjectId,
        mode: LockMode,
        tx: mpsc::Sender<(u64, Result<AcquireOutcome, LockError>)>,
    ) -> thread::JoinHandle<()> {
        let mgr = mgr.clone();
        thread::spawn(move || {
            let r = mgr.acquire(txn, o, mode);
            tx.send((txn.id.0, r)).expect("report");
        })
    }

    fn wait_for_waiters(mgr: &LockManager, o: ObjectId, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.waiting_count(o) < n {
            assert!(std::time::Instant::now() < deadline, "waiters never queued");
            thread::yield_now();
        }
    }

    #[test]
    fn immediate_grant_and_already_held() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        let t = tok(1, 0);
        assert_eq!(
            mgr.acquire(t, obj(1), LockMode::S).unwrap(),
            AcquireOutcome::Granted { waited: 0 }
        );
        assert_eq!(
            mgr.acquire(t, obj(1), LockMode::S).unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(mgr.held_mode(t.id, obj(1)), Some(LockMode::S));
        mgr.release_all(t.id);
        assert_eq!(mgr.held_mode(t.id, obj(1)), None);
    }

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        let b = tok(2, 0);
        let c = tok(3, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        assert_eq!(mgr.granted_count(obj(1)), 2);

        let (tx, rx) = mpsc::channel();
        let h = acquire_async(&mgr, c, obj(1), LockMode::X, tx);
        wait_for_waiters(&mgr, obj(1), 1);
        mgr.release_all(a.id);
        assert_eq!(mgr.waiting_count(obj(1)), 1, "still blocked by b");
        mgr.release_all(b.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        assert!(matches!(r, Ok(AcquireOutcome::Granted { waited }) if waited > 0));
        h.join().unwrap();
        assert_eq!(mgr.held_mode(c.id, obj(1)), Some(LockMode::X));
    }

    #[test]
    fn fcfs_grants_in_arrival_order() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Births are *reversed* relative to arrival: FCFS must ignore them.
        for (i, birth) in [(1u64, 3000u64), (2, 2000), (3, 1000)] {
            handles.push(acquire_async(
                &mgr,
                tok(i, birth),
                obj(1),
                LockMode::X,
                tx.clone(),
            ));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        let mut order = Vec::new();
        for i in 0..3 {
            if i == 0 {
                mgr.release_all(holder.id);
            }
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            order.push(id);
            mgr.release_all(TxnId(id));
        }
        assert_eq!(order, vec![1, 2, 3], "FCFS follows arrival order");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn vats_grants_eldest_first() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Vats));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Arrival order 1,2,3 but txn 3 is the eldest (smallest birth).
        for (i, birth) in [(1u64, 3000u64), (2, 2000), (3, 1000)] {
            handles.push(acquire_async(
                &mgr,
                tok(i, birth),
                obj(1),
                LockMode::X,
                tx.clone(),
            ));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        let mut order = Vec::new();
        for i in 0..3 {
            if i == 0 {
                mgr.release_all(holder.id);
            }
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            order.push(id);
            mgr.release_all(TxnId(id));
        }
        assert_eq!(order, vec![3, 2, 1], "VATS grants eldest first");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn vats_batches_compatible_requests() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Vats));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Three S waiters and one X waiter; the X's birth puts it last.
        for (i, birth, mode) in [
            (1u64, 1000u64, LockMode::S),
            (2, 2000, LockMode::S),
            (3, 3000, LockMode::S),
            (4, 4000, LockMode::X),
        ] {
            handles.push(acquire_async(&mgr, tok(i, birth), obj(1), mode, tx.clone()));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        mgr.release_all(holder.id);
        // All three S should be granted together; X still waits.
        let mut granted = Vec::new();
        for _ in 0..3 {
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            granted.push(id);
        }
        granted.sort_unstable();
        assert_eq!(granted, vec![1, 2, 3]);
        assert_eq!(mgr.waiting_count(obj(1)), 1, "X still queued");
        for id in [1, 2, 3] {
            mgr.release_all(TxnId(id));
        }
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 4);
        r.unwrap();
        mgr.release_all(TxnId(4));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cats_grants_the_heaviest_blocker_first() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Cats));
        let hot = obj(1);
        let holder = tok(100, 0);
        mgr.acquire(holder, hot, LockMode::X).unwrap();

        // "light" arrives FIRST but blocks nobody.
        // "heavy" arrives second but holds obj(2), on which two other
        // transactions wait -> weight 2 -> CATS must grant heavy first.
        let light = tok(1, 10);
        let heavy = tok(2, 20);
        mgr.acquire(heavy, obj(2), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let h_light = acquire_async(&mgr, light, hot, LockMode::X, tx.clone());
        wait_for_waiters(&mgr, hot, 1);
        let h_heavy = acquire_async(&mgr, heavy, hot, LockMode::X, tx.clone());
        wait_for_waiters(&mgr, hot, 2);
        // Two waiters pile up behind heavy's lock on obj(2).
        let (dep_tx, dep_rx) = mpsc::channel();
        let mut dependents = Vec::new();
        for id in [10u64, 11] {
            dependents.push(acquire_async(
                &mgr,
                tok(id, 30),
                obj(2),
                LockMode::X,
                dep_tx.clone(),
            ));
        }
        wait_for_waiters(&mgr, obj(2), 2);

        mgr.release_all(holder.id);
        let (first, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        assert_eq!(
            first, heavy.id.0,
            "CATS grants the waiter that blocks 2 others"
        );
        mgr.release_all(heavy.id);
        let (second, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        assert_eq!(second, light.id.0);
        mgr.release_all(light.id);
        // Drain the dependents: heavy's release lets the first through.
        let (d1, r) = dep_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        mgr.release_all(TxnId(d1));
        let (d2, r) = dep_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        mgr.release_all(TxnId(d2));
        h_light.join().unwrap();
        h_heavy.join().unwrap();
        for d in dependents {
            d.join().unwrap();
        }
    }

    #[test]
    fn s_behind_waiting_x_is_not_granted_on_arrival() {
        // Footnote 7: reads must not starve writers.
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        let hx = acquire_async(&mgr, tok(2, 0), obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // A new S request is *compatible* with the granted S, but must queue
        // behind the waiting X.
        let hs = acquire_async(&mgr, tok(3, 0), obj(1), LockMode::S, tx.clone());
        wait_for_waiters(&mgr, obj(1), 2);
        assert_eq!(mgr.granted_count(obj(1)), 1);
        mgr.release_all(a.id);
        let (id, _) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 2, "X granted first");
        mgr.release_all(TxnId(2));
        let (id, _) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        mgr.release_all(TxnId(3));
        hx.join().unwrap();
        hs.join().unwrap();
    }

    #[test]
    fn upgrade_jumps_waiter_queue() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        let b = tok(2, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        // c queues for X.
        let hc = acquire_async(&mgr, tok(3, 0), obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // a upgrades S->X: must wait only on b, ahead of c.
        let ha = acquire_async(&mgr, a, obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 2);
        mgr.release_all(b.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1, "upgrade granted before queued X");
        r.unwrap();
        assert_eq!(mgr.held_mode(a.id, obj(1)), Some(LockMode::X));
        mgr.release_all(a.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        r.unwrap();
        mgr.release_all(TxnId(3));
        ha.join().unwrap();
        hc.join().unwrap();
    }

    #[test]
    fn two_object_deadlock_resolves() {
        let mgr = Arc::new(LockManager::new(LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_secs(30)),
            rng_seed: 1,
        }));
        let a = tok(1, 100); // elder
        let b = tok(2, 200); // younger -> victim
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        mgr.acquire(b, obj(2), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(2), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(2), 1);
        // b closes the cycle; the younger txn (b) must be the victim.
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock));
        mgr.release_all(b.id);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        ra.unwrap();
        mgr.release_all(a.id);
        ha.join().unwrap();
        assert_eq!(mgr.stats().deadlocks, 1);
    }

    #[test]
    fn requester_victim_policy_aborts_requester() {
        let mgr = Arc::new(LockManager::new(LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Requester,
            wait_timeout: Some(Duration::from_secs(30)),
            rng_seed: 1,
        }));
        let a = tok(1, 200);
        let b = tok(2, 100);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        mgr.acquire(b, obj(2), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(2), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(2), 1);
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock), "requester is the victim");
        mgr.release_all(b.id);
        let (_, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        ra.unwrap();
        mgr.release_all(a.id);
        ha.join().unwrap();
    }

    #[test]
    fn upgrade_upgrade_deadlock_detected() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 100);
        let b = tok(2, 200);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // b's upgrade closes an S-S upgrade cycle; youngest (b) is victim.
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock));
        mgr.release_all(b.id);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        ra.unwrap();
        assert_eq!(mgr.held_mode(a.id, obj(1)), Some(LockMode::X));
        mgr.release_all(a.id);
        ha.join().unwrap();
    }

    #[test]
    fn suspended_victim_is_woken_with_deadlock() {
        // a and b deadlock, but the victim is the *suspended* one.
        let mgr = Arc::new(LockManager::new(LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_secs(30)),
            rng_seed: 1,
        }));
        let a = tok(1, 200); // younger -> victim, will be suspended first
        let b = tok(2, 100); // elder, closes the cycle
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        mgr.acquire(b, obj(2), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        // a's thread must release on abort, or b (blocked below) never wakes.
        let ha = {
            let mgr = mgr.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                let r = mgr.acquire(a, obj(2), LockMode::X);
                if r.is_err() {
                    mgr.release_all(a.id);
                }
                tx.send((a.id.0, r)).expect("report");
            })
        };
        wait_for_waiters(&mgr, obj(2), 1);
        // b closes the cycle; a (younger) must be chosen and woken as victim.
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        assert_eq!(ra, Err(LockError::Deadlock));
        rb.unwrap();
        mgr.release_all(b.id);
        ha.join().unwrap();
    }

    #[test]
    fn timeout_fires_when_configured() {
        let mgr = Arc::new(LockManager::new(LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_millis(50)),
            rng_seed: 1,
        }));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        let r = mgr.acquire(tok(2, 0), obj(1), LockMode::X);
        assert_eq!(r, Err(LockError::Timeout));
        assert_eq!(mgr.stats().timeouts, 1);
        assert_eq!(mgr.waiting_count(obj(1)), 0, "timed-out waiter dequeued");
        mgr.release_all(a.id);
        mgr.release_all(TxnId(2));
    }

    #[test]
    fn release_all_unknown_txn_is_noop() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        mgr.release_all(TxnId(999));
        assert_eq!(mgr.stats().acquires, 0);
    }

    #[test]
    fn intention_locks_coexist_on_table() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        let table = ObjectId::new(0, 42);
        mgr.acquire(tok(1, 0), table, LockMode::IS).unwrap();
        mgr.acquire(tok(2, 0), table, LockMode::IX).unwrap();
        mgr.acquire(tok(3, 0), table, LockMode::IX).unwrap();
        assert_eq!(mgr.granted_count(table), 3);
        mgr.release_all(TxnId(1));
        mgr.release_all(TxnId(2));
        mgr.release_all(TxnId(3));
        assert_eq!(mgr.granted_count(table), 0);
    }

    #[test]
    fn stats_count_waits() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let h = acquire_async(&mgr, tok(2, 0), obj(1), LockMode::X, tx);
        wait_for_waiters(&mgr, obj(1), 1);
        thread::sleep(Duration::from_millis(5));
        mgr.release_all(a.id);
        let (_, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let waited = match r.unwrap() {
            AcquireOutcome::Granted { waited } => waited,
            other => panic!("unexpected {other:?}"),
        };
        assert!(waited >= 4_000_000, "waited {waited} ns");
        let s = mgr.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.immediate, 1);
        assert_eq!(s.waited, 1);
        assert!(s.wait_ns >= 4_000_000);
        mgr.release_all(TxnId(2));
        h.join().unwrap();
    }
}
