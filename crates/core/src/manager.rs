//! The lock manager: strict 2PL with pluggable grant scheduling.
//!
//! Architecture follows InnoDB 5.6, the system the paper studied — waiters
//! suspend on per-request condvars (`lock_wait_suspend_thread` /
//! `os_event_wait` in MySQL, the paper's #1 variance source) and deadlock
//! detection runs at block time — except that the single lock-system mutex
//! (`lock_sys->mutex`) is replaced by a **sharded lock table**: the queues
//! are partitioned over N shards by a hash of the object id, each shard
//! under its own mutex, so lock traffic on unrelated objects no longer
//! serializes. `shards = 1` reproduces the paper's single-mutex layout
//! exactly (the paper experiments run with 1); the default is
//! `min(16, cores)` floored to a power of two.
//!
//! Sharding forces the two cross-object features out of the (now
//! nonexistent) global critical section:
//!
//! * **Deadlock detection** lives in a dedicated wait-for graph
//!   ([`crate::waitgraph`]) under its own lock. Every queue mutation
//!   republishes the affected waiters' blocking edges while still holding
//!   the shard mutex, so the graph always mirrors the live queues; the
//!   cycle search (DFS) then runs over the graph alone, holding no shard
//!   mutex at all.
//! * **CATS weights** (how many waiters each transaction directly blocks)
//!   are maintained incrementally ([`crate::weights`]): each queue diffs
//!   its contribution after every mutation and pushes deltas to a striped
//!   weight board, replacing the previous O(queues × waiters × holders)
//!   rescan on every grant pass — for every shard count, including 1.
//!
//! Lock ordering: shard → graph, shard → weight stripe, shard → wait slot.
//! The graph and the board never take a shard mutex, and detection takes
//! the graph lock only, so it runs concurrently with grant traffic.
//!
//! Grant discipline (shared by every policy; only the priority key differs):
//!
//! * **Arrival**: the request joins the queue at its policy position and is
//!   granted immediately iff it conflicts with no granted lock and no
//!   still-waiting request ahead of it — InnoDB's rule. Under FCFS arrivals
//!   sort last, so this reduces to the paper's Section 5.1 rule ("grant iff
//!   compatible and nobody waits"), including footnote 7's starvation
//!   guard. Under VATS/RS an arrival can sort at the *head* of the queue;
//!   granting a conflict-free head request is required for liveness (a
//!   strict "never grant on arrival" would strand it, as no release would
//!   ever re-run the grant pass — caught by the stress suite).
//! * **Lock upgrade** (e.g. S→X on the same object) waits only on the other
//!   current *holders*, jumping the waiter queue: letting an upgrade queue
//!   behind a waiting X from another transaction would deadlock immediately.
//! * **Release**: the queue is walked in priority order; each waiter is
//!   granted iff compatible with every granted lock and every still-waiting
//!   request ahead of it. Under VATS this is exactly the paper's "grants as
//!   many locks as possible ... preserved in an eldest-first order".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_common::{now_nanos, Nanos};
use tpd_metrics::{Histogram, HistogramSnapshot};

use crate::mode::LockMode;
use crate::policy::{Policy, PriorityKey, SeqGen, VictimPolicy};
use crate::types::{ObjectId, TxnId, TxnToken};
use crate::waitgraph::WaitGraph;
use crate::weights::WeightBoard;

/// Lock manager configuration.
#[derive(Debug, Clone)]
pub struct LockManagerConfig {
    /// Grant scheduling policy.
    pub policy: Policy,
    /// Deadlock victim selection.
    pub victim: VictimPolicy,
    /// Liveness fallback: a waiter that exceeds this bound is aborted with
    /// [`LockError::Timeout`]. `None` disables the fallback.
    pub wait_timeout: Option<Duration>,
    /// Number of lock-table shards. `0` means auto ([`default_shards`]);
    /// other values are rounded up to a power of two and clamped to 256.
    /// Use `1` for the paper-faithful single-mutex InnoDB 5.6 layout.
    pub shards: usize,
    /// Seed for the RS policy's random keys. Shard 0 is seeded with exactly
    /// this value, so `shards = 1` reproduces the single-mutex manager's
    /// random stream bit-for-bit.
    pub rng_seed: u64,
}

impl Default for LockManagerConfig {
    fn default() -> Self {
        LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_secs(10)),
            shards: 0,
            rng_seed: 0x10C5,
        }
    }
}

impl LockManagerConfig {
    /// A config with the given policy and defaults elsewhere.
    pub fn with_policy(policy: Policy) -> Self {
        LockManagerConfig {
            policy,
            ..Default::default()
        }
    }

    /// Set the shard count (builder style). See the `shards` field.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// The auto shard count: `min(16, available cores)`, floored to a power of
/// two so the object-hash → shard mapping is a mask.
pub fn default_shards() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    floor_pow2(cores.min(16))
}

fn floor_pow2(n: usize) -> usize {
    debug_assert!(n >= 1);
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// Normalize a configured shard count: 0 = auto, otherwise round up to a
/// power of two, clamped to 256.
fn resolve_shards(requested: usize) -> usize {
    if requested == 0 {
        default_shards()
    } else {
        requested.next_power_of_two().min(256)
    }
}

/// Why an acquire failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// The transaction was chosen as a deadlock victim (either immediately on
    /// blocking, or while suspended). The caller must abort and release.
    Deadlock,
    /// The liveness-fallback timeout expired.
    Timeout,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Deadlock => f.write_str("deadlock victim"),
            LockError::Timeout => f.write_str("lock wait timeout"),
        }
    }
}

impl std::error::Error for LockError {}

/// A successful acquire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// Lock granted. `waited` is the suspension time (0 if granted on
    /// arrival); callers feed this to the profiler as the
    /// `os_event_wait`-equivalent event.
    Granted {
        /// Nanoseconds the requester was suspended.
        waited: Nanos,
    },
    /// The transaction already held a covering lock; nothing to do.
    AlreadyHeld,
}

impl AcquireOutcome {
    /// The suspension time (0 for `AlreadyHeld`).
    pub fn waited(&self) -> Nanos {
        match self {
            AcquireOutcome::Granted { waited } => *waited,
            AcquireOutcome::AlreadyHeld => 0,
        }
    }
}

/// Cumulative lock-manager statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Total acquire calls (including re-acquires of held locks).
    pub acquires: u64,
    /// Granted without suspension.
    pub immediate: u64,
    /// Granted after suspension.
    pub waited: u64,
    /// Lock upgrades performed.
    pub upgrades: u64,
    /// Transactions aborted as deadlock victims.
    pub deadlocks: u64,
    /// Waits aborted by the timeout fallback.
    pub timeouts: u64,
    /// Total nanoseconds spent suspended across all waiters.
    pub wait_ns: u64,
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum WaitState {
    Waiting,
    Granted,
    Victim,
}

#[derive(Debug)]
struct WaitSlot {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl WaitSlot {
    fn new() -> Arc<Self> {
        Arc::new(WaitSlot {
            state: Mutex::new(WaitState::Waiting),
            cv: Condvar::new(),
        })
    }
}

#[derive(Debug, Clone)]
struct Waiter {
    txn: TxnToken,
    /// The full mode the transaction will hold once granted (for upgrades,
    /// the supremum of held and requested).
    mode: LockMode,
    /// True when the transaction already holds a weaker lock on the object.
    upgrade: bool,
    key: PriorityKey,
    slot: Arc<WaitSlot>,
}

#[derive(Debug, Default)]
struct LockQueue {
    granted: Vec<(TxnToken, LockMode)>,
    /// Sorted: upgrades first (by key), then regular waiters by key.
    waiting: Vec<Waiter>,
    /// The CATS contribution this queue last published to the weight board
    /// (empty unless the policy is CATS). See [`crate::weights`].
    contrib: HashMap<TxnId, i64>,
    /// CATS only: the weight-ranked scan order captured at the last
    /// [`LockManager::sync_queue`]. The grant pass replays THIS order
    /// rather than re-sorting by live weights, so the grant rule and the
    /// published wait-for edges always derive from the same snapshot — a
    /// grant pass ranked differently from the graph can strand a waiter
    /// in a cycle the detector cannot see (a high-weight X scanned ahead
    /// of a storage-earlier S blocks it, but "ahead" by storage order
    /// said nobody did).
    rank: Vec<TxnId>,
}

impl LockQueue {
    fn holder_mode(&self, txn: TxnId) -> Option<LockMode> {
        self.granted
            .iter()
            .find(|(t, _)| t.id == txn)
            .map(|&(_, m)| m)
    }

    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.waiting.is_empty()
    }

    /// Insert maintaining (upgrade-first, key) order.
    fn insert_waiter(&mut self, w: Waiter) {
        let pos = self
            .waiting
            .iter()
            .position(|other| {
                // `w` goes before `other` if w sorts strictly earlier.
                match (w.upgrade, other.upgrade) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => w.key < other.key,
                }
            })
            .unwrap_or(self.waiting.len());
        self.waiting.insert(pos, w);
    }

    /// Would `mode` (requested by `txn`, upgrading or not) conflict with any
    /// granted lock held by another transaction?
    fn conflicts_granted(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .any(|(t, m)| t.id != txn && !mode.compatible(*m))
    }

    /// This queue's CATS contribution, recomputed from scratch: +1 to a
    /// transaction's weight for every waiter here it directly blocks — the
    /// one-hop form of the contention-aware priority (Huang et al.,
    /// VLDB'18; adopted by MySQL 8.0 as the successor to VATS).
    fn cats_contrib(&self) -> HashMap<TxnId, i64> {
        let mut contrib: HashMap<TxnId, i64> = HashMap::new();
        for (pos, w) in self.waiting.iter().enumerate() {
            for (t, m) in &self.granted {
                if t.id != w.txn.id && !w.mode.compatible(*m) {
                    *contrib.entry(t.id).or_insert(0) += 1;
                }
            }
            for ahead in &self.waiting[..pos] {
                if !w.mode.compatible(ahead.mode) {
                    *contrib.entry(ahead.txn.id).or_insert(0) += 1;
                }
            }
        }
        contrib
    }
}

/// One lock-table partition: the queues whose objects hash here, the held
/// sets of the transactions holding locks here, and this shard's RS rng.
#[derive(Debug)]
struct Shard {
    queues: HashMap<ObjectId, LockQueue>,
    /// Objects in *this shard* each transaction holds locks on (release
    /// walks the shards instead of a global per-txn registry).
    held: HashMap<TxnId, Vec<ObjectId>>,
    rng: SmallRng,
}

/// The lock manager. See the module docs for the grant discipline and the
/// sharded layout.
#[derive(Debug)]
pub struct LockManager {
    shards: Box<[Mutex<Shard>]>,
    shard_mask: u64,
    graph: WaitGraph,
    weights: WeightBoard,
    seq: SeqGen,
    config: LockManagerConfig,
    // Stats kept as atomics so reads don't take any shard mutex.
    acquires: AtomicU64,
    immediate: AtomicU64,
    waited: AtomicU64,
    upgrades: AtomicU64,
    deadlocks: AtomicU64,
    timeouts: AtomicU64,
    wait_ns: AtomicU64,
    /// Always-on suspension-latency histogram (ns per suspension).
    wait_hist: Histogram,
    /// Per-shard contention: suspensions charged to the shard whose queue
    /// blocked the request. Atomics outside the shard mutexes so snapshot
    /// reads stay lock-free.
    shard_waits: Box<[AtomicU64]>,
}

impl LockManager {
    /// A manager with the given configuration.
    pub fn new(mut config: LockManagerConfig) -> Self {
        config.shards = resolve_shards(config.shards);
        let shards: Box<[Mutex<Shard>]> = (0..config.shards)
            .map(|i| {
                Mutex::new(Shard {
                    queues: HashMap::new(),
                    held: HashMap::new(),
                    // Shard 0 gets the configured seed unmixed so shards=1
                    // reproduces the single-mutex manager's stream exactly.
                    rng: SmallRng::seed_from_u64(
                        config
                            .rng_seed
                            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64)),
                    ),
                })
            })
            .collect();
        LockManager {
            shard_mask: (shards.len() - 1) as u64,
            shard_waits: (0..shards.len()).map(|_| AtomicU64::new(0)).collect(),
            shards,
            graph: WaitGraph::new(),
            weights: WeightBoard::new(),
            seq: SeqGen::new(),
            config,
            acquires: AtomicU64::new(0),
            immediate: AtomicU64::new(0),
            waited: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            deadlocks: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            wait_hist: Histogram::new(),
        }
    }

    /// A manager with the given policy and default config elsewhere.
    pub fn with_policy(policy: Policy) -> Self {
        Self::new(LockManagerConfig::with_policy(policy))
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> Policy {
        self.config.policy
    }

    /// The resolved number of lock-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an object's queue lives in (introspection for tests and
    /// benchmarks that need to place objects in known shards).
    pub fn shard_of(&self, obj: ObjectId) -> usize {
        // fmix64: object keys are often sequential, so mix before masking.
        let mut h = ((obj.space as u64) << 32) ^ obj.key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h & self.shard_mask) as usize
    }

    /// Acquire `mode` on `obj` for `txn`, suspending if necessary.
    ///
    /// Returns how long the caller was suspended, or a [`LockError`] if the
    /// transaction was chosen as a deadlock victim / timed out — in which
    /// case the caller must abort the transaction and call
    /// [`LockManager::release_all`].
    pub fn acquire(
        &self,
        txn: TxnToken,
        obj: ObjectId,
        mode: LockMode,
    ) -> Result<AcquireOutcome, LockError> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let sidx = self.shard_of(obj);
        let slot;
        {
            let mut shard = self.shards[sidx].lock();
            let queue = shard.queues.entry(obj).or_default();
            let held = queue.holder_mode(txn.id);
            if let Some(h) = held {
                if h.covers(mode) {
                    return Ok(AcquireOutcome::AlreadyHeld);
                }
            }
            let upgrade = held.is_some();
            let effective = match held {
                Some(h) => h.supremum(mode),
                None => mode,
            };

            // Immediate upgrade: needs only to be compatible with the
            // *other* holders (upgrades jump the waiter queue; queuing
            // behind a foreign waiting X would deadlock instantly).
            let conflicts = queue.conflicts_granted(txn.id, effective);
            if upgrade && !conflicts {
                Self::grant_in_place(queue, txn, effective, true);
                self.upgrades.fetch_add(1, Ordering::Relaxed);
                self.immediate.fetch_add(1, Ordering::Relaxed);
                // The granted mode changed (e.g. S -> X), which can newly
                // block waiters that were compatible with the old mode:
                // republish their edges and this queue's CATS contribution.
                self.sync_queue(&mut shard, obj);
                return Ok(AcquireOutcome::Granted { waited: 0 });
            }

            // Fresh requests (and blocked upgrades) join the queue at their
            // policy position, then the standard grant pass runs: the
            // request is granted right here iff it conflicts with no
            // granted lock and no still-waiting request ahead of it —
            // InnoDB's arrival rule. (Under FCFS an arrival is always last,
            // so this reduces to "grant iff compatible and queue empty",
            // footnote 7's starvation guard. Under VATS/RS an arrival may
            // sort at the head; refusing to grant a conflict-free head
            // request would strand it forever, since no release would ever
            // re-run the grant pass.)
            let seq = self.seq.next();
            let rand: u64 = shard.rng.gen();
            let key = self.config.policy.priority_key(&txn, seq, rand);
            slot = WaitSlot::new();
            let queue = shard.queues.get_mut(&obj).expect("exists");
            queue.insert_waiter(Waiter {
                txn,
                mode: effective,
                upgrade,
                key,
                slot: slot.clone(),
            });
            // The dynamically ranked policies (CATS, Predictive) must
            // publish the new request's rank *before* the grant pass so
            // the ranked scan sees the post-insert queue, exactly as a
            // from-scratch recompute would. The other policies don't read
            // the graph or rank snapshot during regrant, so they defer
            // publishing to after the pass — an immediately granted
            // request then never touches the graph at all.
            let ranked = matches!(self.config.policy, Policy::Cats | Policy::Predictive);
            if ranked {
                self.sync_queue(&mut shard, obj);
            }
            self.regrant(&mut shard, obj);
            if *slot.state.lock() == WaitState::Granted {
                self.immediate.fetch_add(1, Ordering::Relaxed);
                return Ok(AcquireOutcome::Granted { waited: 0 });
            }
            if !ranked {
                // Still blocked: publish our edges (and our effect on the
                // waiters we queued ahead of) before releasing the shard.
                self.sync_queue(&mut shard, obj);
            }
        }

        // Blocked: deadlock detection at block time, over the wait-for
        // graph alone — no shard mutex is held while the cycle search runs.
        // The graph mirrors the live queues (every mutation republishes
        // edges under its shard mutex), so a cycle found here is real.
        while let Some(victim) = self.graph.detect(txn.id, self.config.victim) {
            if victim == txn.id {
                let mut shard = self.shards[sidx].lock();
                let state = *slot.state.lock();
                match state {
                    // Raced: granted (or victimized) between the shard
                    // unlock and the detection pass.
                    WaitState::Granted => {
                        self.immediate.fetch_add(1, Ordering::Relaxed);
                        return Ok(AcquireOutcome::Granted { waited: 0 });
                    }
                    WaitState::Victim => return Err(LockError::Deadlock),
                    WaitState::Waiting => {
                        *slot.state.lock() = WaitState::Victim;
                        Self::remove_waiter(&mut shard, txn.id, obj);
                        self.graph.clear_wait(txn.id);
                        self.sync_queue(&mut shard, obj);
                        self.regrant(&mut shard, obj);
                        self.deadlocks.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Deadlock);
                    }
                }
            } else if self.abort_waiter(victim) {
                self.deadlocks.fetch_add(1, Ordering::Relaxed);
            }
            // Re-check: another cycle may remain, or the one we saw may
            // have dissolved in a race (abort_waiter found the victim
            // already granted/aborted) — the next detect() sees the
            // current graph either way.
        }

        // Suspended: this is the paper's `lock_wait_suspend_thread` /
        // `os_event_wait` — the #1 source of latency variance in MySQL.
        let wait_start = now_nanos();
        match Self::wait_on_slot(&slot, self.config.wait_timeout) {
            WaitState::Granted => {}
            WaitState::Victim => return Err(LockError::Deadlock),
            WaitState::Waiting => {
                // Timed out while still queued: dequeue ourselves.
                // Lock order: shard before slot.
                let mut shard = self.shards[sidx].lock();
                let mut st = slot.state.lock();
                match *st {
                    WaitState::Waiting => {
                        *st = WaitState::Victim;
                        drop(st);
                        Self::remove_waiter(&mut shard, txn.id, obj);
                        self.graph.clear_wait(txn.id);
                        self.sync_queue(&mut shard, obj);
                        self.regrant(&mut shard, obj);
                        self.timeouts.fetch_add(1, Ordering::Relaxed);
                        return Err(LockError::Timeout);
                    }
                    // Resolved while we raced for the shard lock.
                    WaitState::Granted => {}
                    WaitState::Victim => return Err(LockError::Deadlock),
                }
            }
        }
        let waited = now_nanos() - wait_start;
        self.waited.fetch_add(1, Ordering::Relaxed);
        self.wait_ns.fetch_add(waited, Ordering::Relaxed);
        self.wait_hist.record(waited);
        self.shard_waits[sidx].fetch_add(1, Ordering::Relaxed);
        Ok(AcquireOutcome::Granted { waited })
    }

    /// Release every lock `txn` holds (commit or abort), waking whatever the
    /// policy grants next. Also removes a pending wait if the transaction
    /// was aborted while enqueued.
    pub fn release_all(&self, txn: TxnId) {
        if let Some(obj) = self.graph.waiting_on(txn) {
            let mut shard = self.shards[self.shard_of(obj)].lock();
            let still_queued = shard
                .queues
                .get_mut(&obj)
                .map(|q| {
                    let before = q.waiting.len();
                    q.waiting.retain(|w| w.txn.id != txn);
                    q.waiting.len() != before
                })
                .unwrap_or(false);
            if still_queued {
                self.graph.clear_wait(txn);
                self.sync_queue(&mut shard, obj);
                self.regrant(&mut shard, obj);
            }
        }
        for shard_mutex in self.shards.iter() {
            let mut shard = shard_mutex.lock();
            let Some(objs) = shard.held.remove(&txn) else {
                continue;
            };
            for obj in objs {
                if let Some(queue) = shard.queues.get_mut(&obj) {
                    queue.granted.retain(|(t, _)| t.id != txn);
                }
                self.sync_queue(&mut shard, obj);
                self.regrant(&mut shard, obj);
                if shard.queues.get(&obj).is_some_and(LockQueue::is_empty) {
                    shard.queues.remove(&obj);
                }
            }
        }
        // A granted/aborted waiter always clears its node eagerly; this is
        // a backstop so a dead transaction can never leak a graph node.
        self.graph.clear_wait(txn);
        #[cfg(debug_assertions)]
        self.verify_cats_weights();
    }

    /// The mode `txn` currently holds on `obj`, if any.
    pub fn held_mode(&self, txn: TxnId, obj: ObjectId) -> Option<LockMode> {
        let shard = self.shards[self.shard_of(obj)].lock();
        shard.queues.get(&obj).and_then(|q| q.holder_mode(txn))
    }

    /// Number of transactions waiting on `obj` (introspection for tests and
    /// experiment instrumentation).
    pub fn waiting_count(&self, obj: ObjectId) -> usize {
        let shard = self.shards[self.shard_of(obj)].lock();
        shard.queues.get(&obj).map_or(0, |q| q.waiting.len())
    }

    /// Number of granted locks on `obj`.
    pub fn granted_count(&self, obj: ObjectId) -> usize {
        let shard = self.shards[self.shard_of(obj)].lock();
        shard.queues.get(&obj).map_or(0, |q| q.granted.len())
    }

    /// Total `(granted, waiting)` entries across every shard — the
    /// leak check for "a dead connection must leave the lock table
    /// clean". Takes each shard mutex in turn, so call it only when the
    /// workload has quiesced.
    pub fn outstanding(&self) -> (usize, usize) {
        let mut granted = 0;
        let mut waiting = 0;
        for shard_mutex in &self.shards {
            let shard = shard_mutex.lock();
            for q in shard.queues.values() {
                granted += q.granted.len();
                waiting += q.waiting.len();
            }
        }
        (granted, waiting)
    }

    /// Render the full lock-system state (diagnostics for tests).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (sidx, shard_mutex) in self.shards.iter().enumerate() {
            let shard = shard_mutex.lock();
            for (obj, q) in &shard.queues {
                if q.is_empty() {
                    continue;
                }
                let _ = write!(out, "[shard {sidx}] {obj}: granted[");
                for (t, m) in &q.granted {
                    let _ = write!(out, "{}:{m} ", t.id);
                }
                let _ = write!(out, "] waiting[");
                for w in &q.waiting {
                    let _ = write!(
                        out,
                        "{}:{}{} ",
                        w.txn.id,
                        w.mode,
                        if w.upgrade { "(up)" } else { "" }
                    );
                }
                let _ = writeln!(out, "]");
            }
        }
        self.graph.dump(&mut out);
        out
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            immediate: self.immediate.load(Ordering::Relaxed),
            waited: self.waited.load(Ordering::Relaxed),
            upgrades: self.upgrades.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wait_ns: self.wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the suspension-latency histogram (ns per suspension).
    pub fn wait_histogram(&self) -> HistogramSnapshot {
        self.wait_hist.snapshot()
    }

    /// Suspension counts per lock-table shard, index = shard id.
    pub fn shard_wait_counts(&self) -> Vec<u64> {
        self.shard_waits
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Assert that the incrementally maintained CATS weights equal a
    /// from-scratch recount over every queue. No-op unless the policy is
    /// CATS. Takes every shard mutex (in index order, then the board), so
    /// it sees a fully quiescent table; call with no shard lock held.
    pub fn verify_cats_weights(&self) {
        if self.config.policy != Policy::Cats {
            return;
        }
        let guards: Vec<_> = self.shards.iter().map(|m| m.lock()).collect();
        let mut expect: HashMap<TxnId, i64> = HashMap::new();
        for shard in &guards {
            for queue in shard.queues.values() {
                for (t, c) in queue.cats_contrib() {
                    *expect.entry(t).or_insert(0) += c;
                }
            }
        }
        expect.retain(|_, c| *c != 0);
        let got = self.weights.snapshot();
        assert_eq!(
            expect, got,
            "incremental CATS weights diverged from recount"
        );
    }

    /// Block on the wait slot until granted, victimized, or (when a timeout
    /// is configured) the timeout expires with the request still pending —
    /// signalled by returning `Waiting`.
    fn wait_on_slot(slot: &WaitSlot, timeout: Option<Duration>) -> WaitState {
        let mut state = slot.state.lock();
        loop {
            match *state {
                WaitState::Granted => return WaitState::Granted,
                WaitState::Victim => return WaitState::Victim,
                WaitState::Waiting => {}
            }
            match timeout {
                Some(t) => {
                    if slot.cv.wait_for(&mut state, t).timed_out() && *state == WaitState::Waiting {
                        return WaitState::Waiting;
                    }
                }
                None => slot.cv.wait(&mut state),
            }
        }
    }

    // ---- internals (all require the owning shard's mutex held) ----

    fn grant_in_place(queue: &mut LockQueue, txn: TxnToken, mode: LockMode, upgrade: bool) {
        if upgrade {
            let entry = queue
                .granted
                .iter_mut()
                .find(|(t, _)| t.id == txn.id)
                .expect("upgrade requires existing grant");
            entry.1 = mode;
        } else {
            queue.granted.push((txn, mode));
        }
    }

    /// Republish a queue's cross-object state after a mutation, while the
    /// shard mutex is still held: diff its CATS contribution onto the
    /// weight board, capture the scan order the next grant pass will use,
    /// and refresh its waiters' blocking edges in the wait-for graph.
    fn sync_queue(&self, shard: &mut Shard, obj: ObjectId) {
        let Some(queue) = shard.queues.get_mut(&obj) else {
            return;
        };
        let cats = self.config.policy == Policy::Cats;
        if cats {
            let fresh = queue.cats_contrib();
            let mut deltas = fresh.clone();
            for (t, old) in &queue.contrib {
                *deltas.entry(*t).or_insert(0) -= old;
            }
            deltas.retain(|_, d| *d != 0);
            if !deltas.is_empty() {
                self.weights.apply(&deltas);
            }
            queue.contrib = fresh;
        }
        // Nodes are only ever *removed* via clear_wait at the site that
        // dequeues a waiter, so an empty waiter list has nothing to
        // publish — skip the graph lock entirely (the uncontended path).
        if queue.waiting.is_empty() {
            queue.rank.clear();
            return;
        }
        // The scan order the grant pass will replay: storage order, except
        // CATS re-ranks by maintained weight (upgrades first; ties by
        // position) and Predictive by predicted conflict footprint
        // (highest first; ties fall back to VATS eldest-first order, so a
        // zero-history predictor degenerates to exactly VATS). Captured
        // HERE so the edges below and the next regrant() agree on who is
        // ahead of whom — see LockQueue::rank.
        let mut order: Vec<usize> = (0..queue.waiting.len()).collect();
        if cats {
            let weights: HashMap<TxnId, i64> = queue
                .waiting
                .iter()
                .map(|w| (w.txn.id, self.weights.get(w.txn.id)))
                .collect();
            order.sort_by_key(|&i| {
                let w = &queue.waiting[i];
                let weight = weights.get(&w.txn.id).copied().unwrap_or(0);
                (!w.upgrade, std::cmp::Reverse(weight), i)
            });
            queue.rank = order.iter().map(|&i| queue.waiting[i].txn.id).collect();
        } else if self.config.policy == Policy::Predictive {
            order.sort_by_key(|&i| {
                let w = &queue.waiting[i];
                (
                    std::cmp::Reverse(w.txn.footprint),
                    w.txn.birth,
                    w.key.tiebreak,
                )
            });
            queue.rank = order.iter().map(|&i| queue.waiting[i].txn.id).collect();
        }
        // Blockers by scan order: incompatible holders plus incompatible
        // waiters scanned ahead (for CATS that can include storage-later
        // waiters — exactly the edges storage order would miss).
        let entries: Vec<(TxnId, Nanos, Vec<TxnId>)> = order
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let me = &queue.waiting[i];
                let mut blockers: Vec<TxnId> = queue
                    .granted
                    .iter()
                    .filter(|(t, m)| t.id != me.txn.id && !me.mode.compatible(*m))
                    .map(|(t, _)| t.id)
                    .collect();
                for &j in &order[..k] {
                    let other = &queue.waiting[j];
                    if !me.mode.compatible(other.mode) {
                        blockers.push(other.txn.id);
                    }
                }
                (me.txn.id, me.txn.birth, blockers)
            })
            .collect();
        self.graph.update_waiters(obj, entries);
    }

    /// Walk the queue in priority order granting everything grantable, then
    /// republish the queue's state if anything changed.
    fn regrant(&self, shard: &mut Shard, obj: ObjectId) {
        let Some(queue) = shard.queues.get_mut(&obj) else {
            return;
        };
        if queue.waiting.is_empty() {
            return;
        }
        // CATS and Predictive scan in the ranked order captured at the
        // last sync_queue (every regrant call site syncs first in the
        // same critical section) — NOT a fresh sort over live
        // weights/footprints. Using the captured snapshot keeps the grant
        // rule and the published wait-for edges in agreement; the board
        // lookups behind it replace the old whole-table rescan.
        let mut order: Vec<usize> = (0..queue.waiting.len()).collect();
        if matches!(self.config.policy, Policy::Cats | Policy::Predictive) {
            let pos: HashMap<TxnId, usize> = queue
                .rank
                .iter()
                .enumerate()
                .map(|(k, t)| (*t, k))
                .collect();
            order.sort_by_key(|&i| {
                // A waiter missing from the snapshot (impossible today;
                // defensive) scans last, in storage order.
                (
                    pos.get(&queue.waiting[i].txn.id)
                        .copied()
                        .unwrap_or(usize::MAX),
                    i,
                )
            });
        }
        // Plan grants: each scanned waiter is granted iff compatible with
        // every granted lock, every grant planned in this pass, and every
        // still-waiting request scanned ahead of it.
        let mut barrier: Vec<(LockMode, TxnId)> = Vec::new();
        let mut planned: Vec<(usize, LockMode, TxnId)> = Vec::new();
        for &i in &order {
            let w = &queue.waiting[i];
            let ok_granted = !queue.conflicts_granted(w.txn.id, w.mode)
                && planned
                    .iter()
                    .all(|(_, m, t)| *t == w.txn.id || w.mode.compatible(*m));
            let ok_barrier = barrier
                .iter()
                .all(|(m, t)| *t == w.txn.id || w.mode.compatible(*m));
            if ok_granted && ok_barrier {
                planned.push((i, w.mode, w.txn.id));
            } else {
                barrier.push((w.mode, w.txn.id));
            }
        }
        if planned.is_empty() {
            return;
        }
        // Apply: remove planned waiters (descending index), grant, then
        // republish the queue's edges, and only THEN wake the grantees.
        // Two orderings are load-bearing here:
        //  * the graph node is cleared before the slot flips to Granted —
        //    the woken thread can block on its next object immediately,
        //    and a late clear would race with (and delete) the fresh node
        //    it publishes there, hiding it from deadlock detection;
        //  * sync_queue runs before any notify — a CATS grant can jump an
        //    incompatible waiter T, creating a new edge T -> grantee, and
        //    if the grantee woke first it could block on something T
        //    holds and run its cycle check before that edge exists.
        planned.sort_by_key(|&(i, _, _)| std::cmp::Reverse(i));
        let mut granted_txns: Vec<TxnId> = Vec::new();
        let mut to_wake: Vec<Arc<WaitSlot>> = Vec::new();
        for (i, _, _) in planned {
            let w = queue.waiting.remove(i);
            Self::grant_in_place(queue, w.txn, w.mode, w.upgrade);
            if w.upgrade {
                self.upgrades.fetch_add(1, Ordering::Relaxed);
            }
            granted_txns.push(w.txn.id);
            self.graph.clear_wait(w.txn.id);
            to_wake.push(w.slot);
        }
        for &t in &granted_txns {
            let held = shard.held.entry(t).or_default();
            if !held.contains(&obj) {
                held.push(obj);
            }
        }
        self.sync_queue(shard, obj);
        for slot in to_wake {
            let mut st = slot.state.lock();
            *st = WaitState::Granted;
            slot.cv.notify_one();
        }
    }

    /// Remove `txn`'s waiter entry from `obj`'s queue, if present. The
    /// caller clears the graph node and re-syncs the queue.
    fn remove_waiter(shard: &mut Shard, txn: TxnId, obj: ObjectId) {
        if let Some(queue) = shard.queues.get_mut(&obj) {
            queue.waiting.retain(|w| w.txn.id != txn);
        }
    }

    /// Mark a *waiting* transaction as a deadlock victim, dequeue it, and
    /// wake it. Its locks stay held until it observes the abort and
    /// releases. Returns false if the victim raced us and is no longer
    /// waiting (granted, timed out, or already victimized).
    fn abort_waiter(&self, victim: TxnId) -> bool {
        let Some(obj) = self.graph.waiting_on(victim) else {
            return false;
        };
        let mut shard = self.shards[self.shard_of(obj)].lock();
        let removed = shard.queues.get_mut(&obj).and_then(|queue| {
            let pos = queue.waiting.iter().position(|w| w.txn.id == victim)?;
            Some(queue.waiting.remove(pos))
        });
        let Some(w) = removed else {
            return false;
        };
        // Clear the graph node before waking (see regrant): the woken
        // victim releases and its successor may re-enter the graph.
        self.graph.clear_wait(victim);
        {
            // While we hold the shard mutex nobody else can be dequeuing
            // this waiter, so a queued entry implies a pending slot.
            let mut st = w.slot.state.lock();
            debug_assert_eq!(*st, WaitState::Waiting);
            *st = WaitState::Victim;
            w.slot.cv.notify_one();
        }
        self.sync_queue(&mut shard, obj);
        // Dequeuing the victim can unblock only this queue — it still
        // holds its other locks until it observes the abort — so the
        // regrant is targeted (the single-mutex manager rescanned every
        // queue here).
        self.regrant(&mut shard, obj);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn obj(k: u64) -> ObjectId {
        ObjectId::new(1, k)
    }

    fn tok(id: u64, birth: Nanos) -> TxnToken {
        TxnToken::new(id, birth)
    }

    fn config(policy: Policy, victim: VictimPolicy, shards: usize) -> LockManagerConfig {
        LockManagerConfig {
            policy,
            victim,
            wait_timeout: Some(Duration::from_secs(30)),
            shards,
            rng_seed: 1,
        }
    }

    /// Two objects guaranteed to live in different shards (panics if the
    /// manager has only one shard).
    fn cross_shard_pair(mgr: &LockManager) -> (ObjectId, ObjectId) {
        let a = obj(0);
        let b = (1..1024)
            .map(obj)
            .find(|o| mgr.shard_of(*o) != mgr.shard_of(a))
            .expect("some key hashes to another shard");
        (a, b)
    }

    /// Spawn a thread that acquires and reports, so tests can sequence
    /// enqueue order deterministically via `waiting_count`.
    fn acquire_async(
        mgr: &Arc<LockManager>,
        txn: TxnToken,
        o: ObjectId,
        mode: LockMode,
        tx: mpsc::Sender<(u64, Result<AcquireOutcome, LockError>)>,
    ) -> thread::JoinHandle<()> {
        let mgr = mgr.clone();
        thread::spawn(move || {
            let r = mgr.acquire(txn, o, mode);
            tx.send((txn.id.0, r)).expect("report");
        })
    }

    fn wait_for_waiters(mgr: &LockManager, o: ObjectId, n: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while mgr.waiting_count(o) < n {
            assert!(std::time::Instant::now() < deadline, "waiters never queued");
            thread::yield_now();
        }
    }

    #[test]
    fn shard_resolution_rules() {
        assert_eq!(resolve_shards(1), 1);
        assert_eq!(resolve_shards(2), 2);
        assert_eq!(resolve_shards(3), 4, "rounded up to a power of two");
        assert_eq!(resolve_shards(16), 16);
        assert_eq!(resolve_shards(1000), 256, "clamped");
        let auto = resolve_shards(0);
        assert!(auto.is_power_of_two() && auto <= 16);
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(6), 4);
        assert_eq!(floor_pow2(16), 16);
    }

    #[test]
    fn shard_mapping_is_stable_and_in_range() {
        let mgr = LockManager::new(config(Policy::Fcfs, VictimPolicy::Youngest, 8));
        assert_eq!(mgr.shard_count(), 8);
        for k in 0..1000 {
            let s = mgr.shard_of(obj(k));
            assert!(s < 8);
            assert_eq!(s, mgr.shard_of(obj(k)), "mapping is deterministic");
        }
        // The mix actually spreads sequential keys.
        let hit: std::collections::HashSet<usize> = (0..64).map(|k| mgr.shard_of(obj(k))).collect();
        assert!(hit.len() > 4, "sequential keys use multiple shards");
    }

    #[test]
    fn immediate_grant_and_already_held() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        let t = tok(1, 0);
        assert_eq!(
            mgr.acquire(t, obj(1), LockMode::S).unwrap(),
            AcquireOutcome::Granted { waited: 0 }
        );
        assert_eq!(
            mgr.acquire(t, obj(1), LockMode::S).unwrap(),
            AcquireOutcome::AlreadyHeld
        );
        assert_eq!(mgr.held_mode(t.id, obj(1)), Some(LockMode::S));
        mgr.release_all(t.id);
        assert_eq!(mgr.held_mode(t.id, obj(1)), None);
    }

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        let b = tok(2, 0);
        let c = tok(3, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        assert_eq!(mgr.granted_count(obj(1)), 2);

        let (tx, rx) = mpsc::channel();
        let h = acquire_async(&mgr, c, obj(1), LockMode::X, tx);
        wait_for_waiters(&mgr, obj(1), 1);
        mgr.release_all(a.id);
        assert_eq!(mgr.waiting_count(obj(1)), 1, "still blocked by b");
        mgr.release_all(b.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        assert!(matches!(r, Ok(AcquireOutcome::Granted { waited }) if waited > 0));
        h.join().unwrap();
        assert_eq!(mgr.held_mode(c.id, obj(1)), Some(LockMode::X));
    }

    #[test]
    fn fcfs_grants_in_arrival_order() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Births are *reversed* relative to arrival: FCFS must ignore them.
        for (i, birth) in [(1u64, 3000u64), (2, 2000), (3, 1000)] {
            handles.push(acquire_async(
                &mgr,
                tok(i, birth),
                obj(1),
                LockMode::X,
                tx.clone(),
            ));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        let mut order = Vec::new();
        for i in 0..3 {
            if i == 0 {
                mgr.release_all(holder.id);
            }
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            order.push(id);
            mgr.release_all(TxnId(id));
        }
        assert_eq!(order, vec![1, 2, 3], "FCFS follows arrival order");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn vats_grants_eldest_first() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Vats));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Arrival order 1,2,3 but txn 3 is the eldest (smallest birth).
        for (i, birth) in [(1u64, 3000u64), (2, 2000), (3, 1000)] {
            handles.push(acquire_async(
                &mgr,
                tok(i, birth),
                obj(1),
                LockMode::X,
                tx.clone(),
            ));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        let mut order = Vec::new();
        for i in 0..3 {
            if i == 0 {
                mgr.release_all(holder.id);
            }
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            order.push(id);
            mgr.release_all(TxnId(id));
        }
        assert_eq!(order, vec![3, 2, 1], "VATS grants eldest first");
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn vats_batches_compatible_requests() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Vats));
        let holder = tok(100, 0);
        mgr.acquire(holder, obj(1), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        // Three S waiters and one X waiter; the X's birth puts it last.
        for (i, birth, mode) in [
            (1u64, 1000u64, LockMode::S),
            (2, 2000, LockMode::S),
            (3, 3000, LockMode::S),
            (4, 4000, LockMode::X),
        ] {
            handles.push(acquire_async(&mgr, tok(i, birth), obj(1), mode, tx.clone()));
            wait_for_waiters(&mgr, obj(1), i as usize);
        }
        mgr.release_all(holder.id);
        // All three S should be granted together; X still waits.
        let mut granted = Vec::new();
        for _ in 0..3 {
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            granted.push(id);
        }
        granted.sort_unstable();
        assert_eq!(granted, vec![1, 2, 3]);
        assert_eq!(mgr.waiting_count(obj(1)), 1, "X still queued");
        for id in [1, 2, 3] {
            mgr.release_all(TxnId(id));
        }
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 4);
        r.unwrap();
        mgr.release_all(TxnId(4));
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cats_grants_the_heaviest_blocker_first() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Cats));
        let hot = obj(1);
        let holder = tok(100, 0);
        mgr.acquire(holder, hot, LockMode::X).unwrap();

        // "light" arrives FIRST but blocks nobody.
        // "heavy" arrives second but holds obj(2), on which two other
        // transactions wait -> weight 2 -> CATS must grant heavy first.
        let light = tok(1, 10);
        let heavy = tok(2, 20);
        mgr.acquire(heavy, obj(2), LockMode::X).unwrap();

        let (tx, rx) = mpsc::channel();
        let h_light = acquire_async(&mgr, light, hot, LockMode::X, tx.clone());
        wait_for_waiters(&mgr, hot, 1);
        let h_heavy = acquire_async(&mgr, heavy, hot, LockMode::X, tx.clone());
        wait_for_waiters(&mgr, hot, 2);
        // Two waiters pile up behind heavy's lock on obj(2).
        let (dep_tx, dep_rx) = mpsc::channel();
        let mut dependents = Vec::new();
        for id in [10u64, 11] {
            dependents.push(acquire_async(
                &mgr,
                tok(id, 30),
                obj(2),
                LockMode::X,
                dep_tx.clone(),
            ));
        }
        wait_for_waiters(&mgr, obj(2), 2);
        mgr.verify_cats_weights();

        mgr.release_all(holder.id);
        let (first, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        assert_eq!(
            first, heavy.id.0,
            "CATS grants the waiter that blocks 2 others"
        );
        mgr.release_all(heavy.id);
        let (second, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        assert_eq!(second, light.id.0);
        mgr.release_all(light.id);
        // Drain the dependents: heavy's release lets the first through.
        let (d1, r) = dep_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        mgr.release_all(TxnId(d1));
        let (d2, r) = dep_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        mgr.release_all(TxnId(d2));
        h_light.join().unwrap();
        h_heavy.join().unwrap();
        for d in dependents {
            d.join().unwrap();
        }
        mgr.verify_cats_weights();
    }

    #[test]
    fn s_behind_waiting_x_is_not_granted_on_arrival() {
        // Footnote 7: reads must not starve writers.
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        let hx = acquire_async(&mgr, tok(2, 0), obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // A new S request is *compatible* with the granted S, but must queue
        // behind the waiting X.
        let hs = acquire_async(&mgr, tok(3, 0), obj(1), LockMode::S, tx.clone());
        wait_for_waiters(&mgr, obj(1), 2);
        assert_eq!(mgr.granted_count(obj(1)), 1);
        mgr.release_all(a.id);
        let (id, _) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 2, "X granted first");
        mgr.release_all(TxnId(2));
        let (id, _) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        mgr.release_all(TxnId(3));
        hx.join().unwrap();
        hs.join().unwrap();
    }

    #[test]
    fn upgrade_jumps_waiter_queue() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        let b = tok(2, 0);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        // c queues for X.
        let hc = acquire_async(&mgr, tok(3, 0), obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // a upgrades S->X: must wait only on b, ahead of c.
        let ha = acquire_async(&mgr, a, obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 2);
        mgr.release_all(b.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1, "upgrade granted before queued X");
        r.unwrap();
        assert_eq!(mgr.held_mode(a.id, obj(1)), Some(LockMode::X));
        mgr.release_all(a.id);
        let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 3);
        r.unwrap();
        mgr.release_all(TxnId(3));
        ha.join().unwrap();
        hc.join().unwrap();
    }

    #[test]
    fn two_object_deadlock_resolves() {
        let mgr = Arc::new(LockManager::new(config(
            Policy::Fcfs,
            VictimPolicy::Youngest,
            1,
        )));
        let a = tok(1, 100); // elder
        let b = tok(2, 200); // younger -> victim
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        mgr.acquire(b, obj(2), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(2), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(2), 1);
        // b closes the cycle; the younger txn (b) must be the victim.
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock));
        mgr.release_all(b.id);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        ra.unwrap();
        mgr.release_all(a.id);
        ha.join().unwrap();
        assert_eq!(mgr.stats().deadlocks, 1);
    }

    #[test]
    fn cross_shard_deadlock_resolves() {
        // Same cycle as above, but the two objects live in different
        // shards: the wait-for graph must see edges from both.
        let mgr = Arc::new(LockManager::new(config(
            Policy::Fcfs,
            VictimPolicy::Youngest,
            4,
        )));
        let (o1, o2) = cross_shard_pair(&mgr);
        let a = tok(1, 100); // elder
        let b = tok(2, 200); // younger -> victim
        mgr.acquire(a, o1, LockMode::X).unwrap();
        mgr.acquire(b, o2, LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, o2, LockMode::X, tx.clone());
        wait_for_waiters(&mgr, o2, 1);
        let rb = mgr.acquire(b, o1, LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock));
        mgr.release_all(b.id);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        ra.unwrap();
        mgr.release_all(a.id);
        ha.join().unwrap();
        assert_eq!(mgr.stats().deadlocks, 1);
    }

    #[test]
    fn requester_victim_policy_aborts_requester() {
        let mgr = Arc::new(LockManager::new(config(
            Policy::Fcfs,
            VictimPolicy::Requester,
            1,
        )));
        let a = tok(1, 200);
        let b = tok(2, 100);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        mgr.acquire(b, obj(2), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(2), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(2), 1);
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock), "requester is the victim");
        mgr.release_all(b.id);
        let (_, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        ra.unwrap();
        mgr.release_all(a.id);
        ha.join().unwrap();
    }

    #[test]
    fn upgrade_upgrade_deadlock_detected() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 100);
        let b = tok(2, 200);
        mgr.acquire(a, obj(1), LockMode::S).unwrap();
        mgr.acquire(b, obj(1), LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        let ha = acquire_async(&mgr, a, obj(1), LockMode::X, tx.clone());
        wait_for_waiters(&mgr, obj(1), 1);
        // b's upgrade closes an S-S upgrade cycle; youngest (b) is victim.
        let rb = mgr.acquire(b, obj(1), LockMode::X);
        assert_eq!(rb, Err(LockError::Deadlock));
        mgr.release_all(b.id);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        ra.unwrap();
        assert_eq!(mgr.held_mode(a.id, obj(1)), Some(LockMode::X));
        mgr.release_all(a.id);
        ha.join().unwrap();
    }

    #[test]
    fn suspended_victim_is_woken_with_deadlock() {
        // a and b deadlock, but the victim is the *suspended* one.
        let mgr = Arc::new(LockManager::new(config(
            Policy::Fcfs,
            VictimPolicy::Youngest,
            1,
        )));
        suspended_victim_scenario(&mgr, obj(1), obj(2));
    }

    #[test]
    fn suspended_victim_is_woken_across_shards() {
        // The suspended victim waits in one shard; the requester that
        // closes the cycle runs in another.
        let mgr = Arc::new(LockManager::new(config(
            Policy::Fcfs,
            VictimPolicy::Youngest,
            8,
        )));
        let (o1, o2) = cross_shard_pair(&mgr);
        suspended_victim_scenario(&mgr, o1, o2);
    }

    fn suspended_victim_scenario(mgr: &Arc<LockManager>, o1: ObjectId, o2: ObjectId) {
        let a = tok(1, 200); // younger -> victim, will be suspended first
        let b = tok(2, 100); // elder, closes the cycle
        mgr.acquire(a, o1, LockMode::X).unwrap();
        mgr.acquire(b, o2, LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        // a's thread must release on abort, or b (blocked below) never wakes.
        let ha = {
            let mgr = mgr.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                let r = mgr.acquire(a, o2, LockMode::X);
                if r.is_err() {
                    mgr.release_all(a.id);
                }
                tx.send((a.id.0, r)).expect("report");
            })
        };
        wait_for_waiters(mgr, o2, 1);
        // b closes the cycle; a (younger) must be chosen and woken as victim.
        let rb = mgr.acquire(b, o1, LockMode::X);
        let (id, ra) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(id, 1);
        assert_eq!(ra, Err(LockError::Deadlock));
        rb.unwrap();
        mgr.release_all(b.id);
        ha.join().unwrap();
    }

    #[test]
    fn timeout_fires_when_configured() {
        let mgr = Arc::new(LockManager::new(LockManagerConfig {
            policy: Policy::Fcfs,
            victim: VictimPolicy::Youngest,
            wait_timeout: Some(Duration::from_millis(50)),
            shards: 1,
            rng_seed: 1,
        }));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        let r = mgr.acquire(tok(2, 0), obj(1), LockMode::X);
        assert_eq!(r, Err(LockError::Timeout));
        assert_eq!(mgr.stats().timeouts, 1);
        assert_eq!(mgr.waiting_count(obj(1)), 0, "timed-out waiter dequeued");
        mgr.release_all(a.id);
        mgr.release_all(TxnId(2));
    }

    #[test]
    fn release_all_unknown_txn_is_noop() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        mgr.release_all(TxnId(999));
        assert_eq!(mgr.stats().acquires, 0);
    }

    #[test]
    fn intention_locks_coexist_on_table() {
        let mgr = LockManager::with_policy(Policy::Fcfs);
        let table = ObjectId::new(0, 42);
        mgr.acquire(tok(1, 0), table, LockMode::IS).unwrap();
        mgr.acquire(tok(2, 0), table, LockMode::IX).unwrap();
        mgr.acquire(tok(3, 0), table, LockMode::IX).unwrap();
        assert_eq!(mgr.granted_count(table), 3);
        mgr.release_all(TxnId(1));
        mgr.release_all(TxnId(2));
        mgr.release_all(TxnId(3));
        assert_eq!(mgr.granted_count(table), 0);
    }

    #[test]
    fn stats_count_waits() {
        let mgr = Arc::new(LockManager::with_policy(Policy::Fcfs));
        let a = tok(1, 0);
        mgr.acquire(a, obj(1), LockMode::X).unwrap();
        let (tx, rx) = mpsc::channel();
        let h = acquire_async(&mgr, tok(2, 0), obj(1), LockMode::X, tx);
        wait_for_waiters(&mgr, obj(1), 1);
        thread::sleep(Duration::from_millis(5));
        mgr.release_all(a.id);
        let (_, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let waited = match r.unwrap() {
            AcquireOutcome::Granted { waited } => waited,
            other => panic!("unexpected {other:?}"),
        };
        assert!(waited >= 4_000_000, "waited {waited} ns");
        let s = mgr.stats();
        assert_eq!(s.acquires, 2);
        assert_eq!(s.immediate, 1);
        assert_eq!(s.waited, 1);
        assert!(s.wait_ns >= 4_000_000);
        mgr.release_all(TxnId(2));
        h.join().unwrap();
    }

    #[test]
    fn cats_weights_stay_exact_across_churn() {
        // Exercise every weight-mutating path — enqueue, grant, upgrade,
        // release, cross-object piles — and recount after each step.
        let mgr = Arc::new(LockManager::new(config(
            Policy::Cats,
            VictimPolicy::Youngest,
            4,
        )));
        let (o1, o2) = cross_shard_pair(&mgr);
        mgr.acquire(tok(1, 10), o1, LockMode::X).unwrap();
        mgr.acquire(tok(2, 20), o2, LockMode::S).unwrap();
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for (id, o, mode) in [
            (3u64, o1, LockMode::S),
            (4, o1, LockMode::S),
            (5, o2, LockMode::X),
            (6, o2, LockMode::X),
        ] {
            handles.push(acquire_async(&mgr, tok(id, id * 10), o, mode, tx.clone()));
        }
        wait_for_waiters(&mgr, o1, 2);
        wait_for_waiters(&mgr, o2, 2);
        mgr.verify_cats_weights();
        // Holder 1 blocks two S waiters; holder 2 blocks two X waiters.
        mgr.release_all(TxnId(1));
        let (_, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        r.unwrap();
        mgr.verify_cats_weights();
        mgr.release_all(TxnId(2));
        for _ in 0..3 {
            let (id, r) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            r.unwrap();
            mgr.release_all(TxnId(id));
        }
        mgr.verify_cats_weights();
        for id in [3u64, 4] {
            mgr.release_all(TxnId(id));
        }
        mgr.verify_cats_weights();
        assert!(
            mgr.weights.snapshot().is_empty(),
            "quiescent board is empty"
        );
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn basic_traffic_spreads_over_shards() {
        let mgr = LockManager::new(config(Policy::Vats, VictimPolicy::Youngest, 8));
        for k in 0..256 {
            mgr.acquire(tok(k + 1, k), obj(k), LockMode::X).unwrap();
        }
        for k in 0..256 {
            assert_eq!(mgr.held_mode(TxnId(k + 1), obj(k)), Some(LockMode::X));
        }
        for k in 0..256 {
            mgr.release_all(TxnId(k + 1));
        }
        for k in 0..256 {
            assert_eq!(mgr.granted_count(obj(k)), 0);
        }
        assert_eq!(mgr.stats().immediate, 256);
    }
}
