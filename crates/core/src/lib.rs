//! The paper's primary contribution: lock scheduling for transaction
//! predictability.
//!
//! This crate implements a strict two-phase-locking lock manager in the style
//! of MySQL 5.6's InnoDB lock system (condvar-suspended waiters, wait-for
//! deadlock detection at block time) with **pluggable transaction
//! scheduling**. The lock table is sharded — N partitions under independent
//! mutexes, with `shards = 1` reproducing the paper's single
//! lock-system-mutex layout exactly; deadlock detection runs over a
//! dedicated wait-for graph and CATS weights are maintained incrementally
//! (see [`manager`] for the full design). The policies:
//!
//! * [`Policy::Fcfs`] — first-come-first-served, the default in MySQL and
//!   Postgres and the baseline the paper measures against;
//! * [`Policy::Vats`] — Variance-Aware Transaction Scheduling (Section 5):
//!   grant to the *eldest* transaction, batching in compatible requests in
//!   eldest-first order;
//! * [`Policy::Random`] — the RS strawman from Section 7.2.
//! * [`Policy::Predictive`] — conflict-prediction scheduling: waiters are
//!   ranked by a conflict footprint learned online by the integer-only
//!   EWMA [`predictor`], degenerating to VATS when history is empty.
//!
//! It also contains [`des`], a discrete-event simulator of the single-queue
//! scheduling model from Section 5.2, used to validate Theorem 1 (VATS has
//! optimal expected Lp-norm "p-performance" when remaining times are i.i.d.,
//! even against schedulers given the remaining-time distribution as advice).

pub mod des;
pub mod manager;
pub mod mode;
pub mod policy;
pub mod predictor;
pub mod types;
mod waitgraph;
mod weights;

pub use manager::{
    default_shards, AcquireOutcome, LockError, LockManager, LockManagerConfig, LockStats,
};
pub use mode::LockMode;
pub use policy::{Policy, VictimPolicy};
pub use predictor::{ConflictPredictor, PredictorConfig};
pub use types::{ObjectId, TxnId, TxnToken};
