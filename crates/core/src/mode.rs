//! Lock modes and their compatibility matrix.
//!
//! The standard multi-granularity hierarchy: record locks are `S`/`X`,
//! table-level intention locks are `IS`/`IX`, and `SIX` is a shared lock
//! with intent to write (used by scans that update a subset of rows).

/// A lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared (table level).
    IS,
    /// Intention exclusive (table level).
    IX,
    /// Shared.
    S,
    /// Shared with intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Whether two locks held by *different* transactions can coexist.
    ///
    /// ```text
    ///        IS   IX   S    SIX  X
    ///  IS    ✓    ✓    ✓    ✓    ✗
    ///  IX    ✓    ✓    ✗    ✗    ✗
    ///  S     ✓    ✗    ✓    ✗    ✗
    ///  SIX   ✓    ✗    ✗    ✗    ✗
    ///  X     ✗    ✗    ✗    ✗    ✗
    /// ```
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (S, S) => true,
            _ => false,
        }
    }

    /// Whether holding `self` already satisfies a request for `want`
    /// (i.e. `self` is at least as strong as `want`).
    ///
    /// The strength (partial) order is `IS < IX, S < SIX < X` with `IX` and
    /// `S` incomparable.
    #[inline]
    pub fn covers(self, want: LockMode) -> bool {
        use LockMode::*;
        match (self, want) {
            (a, b) if a == b => true,
            (X, _) => true,
            (SIX, IS) | (SIX, IX) | (SIX, S) => true,
            (IX, IS) => true,
            (S, IS) => true,
            _ => false,
        }
    }

    /// The weakest mode at least as strong as both `self` and `other`
    /// (the supremum in the strength lattice). Used for lock upgrades:
    /// holding `S` and requesting `IX` must escalate to `SIX`.
    #[inline]
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        // The only incomparable pairs are {IX, S} (and their symmetric
        // closure with SIX already handled by covers).
        match (self, other) {
            (IX, S) | (S, IX) => SIX,
            _ => X,
        }
    }

    /// Whether the mode is exclusive at the record level (blocks readers).
    #[inline]
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::X)
    }

    /// All modes, for exhaustive tests.
    pub const ALL: [LockMode; 5] = [
        LockMode::IS,
        LockMode::IX,
        LockMode::S,
        LockMode::SIX,
        LockMode::X,
    ];
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LockMode::IS => "IS",
            LockMode::IX => "IX",
            LockMode::S => "S",
            LockMode::SIX => "SIX",
            LockMode::X => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::*;
    use super::*;

    #[test]
    fn compatibility_matrix() {
        // Full 5x5 truth table from the doc comment.
        let expected = [
            // (a, b, compatible)
            (IS, IS, true),
            (IS, IX, true),
            (IS, S, true),
            (IS, SIX, true),
            (IS, X, false),
            (IX, IX, true),
            (IX, S, false),
            (IX, SIX, false),
            (IX, X, false),
            (S, S, true),
            (S, SIX, false),
            (S, X, false),
            (SIX, SIX, false),
            (SIX, X, false),
            (X, X, false),
        ];
        for &(a, b, want) in &expected {
            assert_eq!(a.compatible(b), want, "{a} vs {b}");
            assert_eq!(b.compatible(a), want, "symmetry {b} vs {a}");
        }
    }

    #[test]
    fn covers_is_reflexive_and_x_covers_all() {
        for &m in &LockMode::ALL {
            assert!(m.covers(m));
            assert!(X.covers(m));
        }
        assert!(!S.covers(X));
        assert!(!S.covers(IX));
        assert!(!IX.covers(S));
        assert!(SIX.covers(S));
        assert!(SIX.covers(IX));
        assert!(!SIX.covers(X));
    }

    #[test]
    fn supremum_properties() {
        for &a in &LockMode::ALL {
            for &b in &LockMode::ALL {
                let s = a.supremum(b);
                assert!(s.covers(a), "sup({a},{b})={s} must cover {a}");
                assert!(s.covers(b), "sup({a},{b})={s} must cover {b}");
                assert_eq!(s, b.supremum(a), "commutative");
            }
        }
        assert_eq!(S.supremum(IX), SIX);
        assert_eq!(S.supremum(S), S);
        assert_eq!(IS.supremum(X), X);
    }

    #[test]
    fn exclusivity() {
        assert!(X.is_exclusive());
        for m in [IS, IX, S, SIX] {
            assert!(!m.is_exclusive());
        }
    }
}
