//! Degenerate-equivalence properties for `Policy::Predictive`.
//!
//! The predictive policy is *VATS plus a learned bias*: waiters are
//! ranked by `(footprint desc, birth, arrival)`. With no history every
//! footprint is zero, so the bias term vanishes and the rank must
//! degenerate to VATS's eldest-first order — not approximately, but
//! grant-for-grant. These properties pin that contract so predictor
//! changes can never silently shift the no-history schedule, which is
//! what keeps the doubled-run torture witnesses meaningful across the
//! policy matrix.
//!
//! Method: one holder pins an X lock while waiters with chosen
//! (birth, footprint) tokens queue behind it one at a time (arrival
//! order fixed by waiting-count handshakes); releasing the holder then
//! lets the policy drain the queue one grant at a time, each waiter
//! recording its position. Single object, X-only ⇒ no deadlocks, and
//! the observed sequence is exactly the policy's rank.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_core::{
    LockManager, LockManagerConfig, LockMode, ObjectId, Policy, TxnToken, VictimPolicy,
};

/// Queue waiters with the given `(birth, footprint)` tokens behind a
/// held X lock in slice order, release the holder, and return the txn
/// ids in grant order.
fn grant_order(policy: Policy, waiters: &[(u64, u64)]) -> Vec<u64> {
    let mgr = Arc::new(LockManager::new(LockManagerConfig {
        policy,
        victim: VictimPolicy::Youngest,
        wait_timeout: Some(Duration::from_secs(30)),
        shards: 1,
        rng_seed: 7,
    }));
    let obj = ObjectId::new(1, 0);
    let holder = TxnToken::new(u64::MAX, 0);
    mgr.acquire(holder, obj, LockMode::X).expect("holder");
    let order = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for (i, &(birth, footprint)) in waiters.iter().enumerate() {
            let worker = mgr.clone();
            let order = order.clone();
            let txn = TxnToken::new(i as u64 + 1, birth).with_footprint(footprint);
            scope.spawn(move || {
                worker.acquire(txn, obj, LockMode::X).expect("granted");
                order.lock().expect("no poison").push(txn.id.0);
                worker.release_all(txn.id);
            });
            // Arrival handshake: waiter i is queued before i+1 spawns,
            // so arrival order (the policies' tiebreak) is slice order.
            while mgr.waiting_count(obj) < i + 1 {
                std::thread::yield_now();
            }
        }
        mgr.release_all(holder.id);
    });
    let order = Arc::try_unwrap(order).expect("threads joined");
    order.into_inner().expect("no poison")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case runs two thread-scoped drains
        ..ProptestConfig::default()
    })]

    /// Zero history (every footprint 0) ⇒ the predictive grant order is
    /// identical to VATS, whatever order the waiters arrived in.
    #[test]
    fn zero_footprint_predictive_equals_vats(
        births in proptest::collection::vec(1u64..1_000_000, 2..7)
    ) {
        let waiters: Vec<(u64, u64)> = births.iter().map(|&b| (b, 0)).collect();
        let predictive = grant_order(Policy::Predictive, &waiters);
        let vats = grant_order(Policy::Vats, &waiters);
        prop_assert_eq!(predictive, vats);
    }

    /// With distinct footprints the predictive order is exactly
    /// descending footprint, regardless of births and arrival order.
    #[test]
    fn distinct_footprints_rank_descending(perm_seed in 0u64..1 << 32) {
        let mut shuffled: Vec<u64> = (1..=5).collect();
        // Fisher–Yates off a seeded RNG (the vendored rand has no
        // SliceRandom).
        let mut rng = SmallRng::seed_from_u64(perm_seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..=i);
            shuffled.swap(i, j);
        }
        // Waiter i (id i+1) gets footprint shuffled[i] << 16 and a birth
        // that *inverts* the footprint order, so a VATS fallback would
        // produce the exact opposite schedule.
        let waiters: Vec<(u64, u64)> = shuffled
            .iter()
            .map(|&f| (1_000_000 * f, f << 16))
            .collect();
        let got = grant_order(Policy::Predictive, &waiters);
        let mut want: Vec<u64> = (1..=waiters.len() as u64).collect();
        want.sort_by_key(|&id| std::cmp::Reverse(waiters[id as usize - 1].1));
        prop_assert_eq!(got, want);
    }
}

/// The degenerate case the proptests subsume, kept as a fast explicit
/// witness: reversed births, zero footprints, both policies grant
/// eldest-first.
#[test]
fn reversed_births_zero_footprint_matches_vats() {
    let waiters = [(500u64, 0u64), (400, 0), (300, 0), (200, 0), (100, 0)];
    let predictive = grant_order(Policy::Predictive, &waiters);
    let vats = grant_order(Policy::Vats, &waiters);
    assert_eq!(predictive, vats);
    assert_eq!(predictive, vec![5, 4, 3, 2, 1], "eldest (smallest birth) first");
}
