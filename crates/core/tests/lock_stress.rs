//! Randomized concurrency stress for the lock manager: many threads, many
//! objects, mixed modes, every policy and victim rule. The assertions are
//! liveness (no hangs — enforced by timeouts), conservation (what is
//! acquired is released), and isolation (an X holder is never concurrent
//! with another holder on the same object).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use tpd_core::{
    LockError, LockManager, LockManagerConfig, LockMode, ObjectId, Policy, TxnToken, VictimPolicy,
};

/// Per-object occupancy tracker: +1000 for an X holder, +1 per S holder.
/// Any state with an X holder must be exactly 1000.
struct Occupancy {
    slots: Vec<AtomicI32>,
}

impl Occupancy {
    fn new(n: usize) -> Self {
        Occupancy {
            slots: (0..n).map(|_| AtomicI32::new(0)).collect(),
        }
    }

    fn enter(&self, obj: usize, mode: LockMode) {
        let delta = if mode == LockMode::X { 1000 } else { 1 };
        let after = self.slots[obj].fetch_add(delta, Ordering::SeqCst) + delta;
        // Legal states: k (S holders, k < 1000) or exactly 1000 (one X).
        assert!(
            after <= 1000,
            "object {obj}: illegal occupancy {after} after {mode} enter"
        );
    }

    fn exit(&self, obj: usize, mode: LockMode) {
        let delta = if mode == LockMode::X { 1000 } else { 1 };
        let before = self.slots[obj].fetch_sub(delta, Ordering::SeqCst);
        assert!(before >= delta, "object {obj}: negative occupancy");
    }
}

fn stress(policy: Policy, victim: VictimPolicy, seed: u64, shards: usize) {
    let objects = 12usize;
    let threads = 8usize;
    let txns_per_thread = 60usize;
    let mgr = Arc::new(LockManager::new(LockManagerConfig {
        policy,
        victim,
        wait_timeout: Some(Duration::from_secs(5)),
        shards,
        rng_seed: seed,
    }));
    let occupancy = Arc::new(Occupancy::new(objects));
    let committed = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let ids = Arc::new(AtomicU64::new(1));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let mgr = mgr.clone();
            let occupancy = occupancy.clone();
            let committed = committed.clone();
            let aborted = aborted.clone();
            let ids = ids.clone();
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64) << 32);
                for _ in 0..txns_per_thread {
                    // A small random conflict footprint so the predictive
                    // policy's ranked queue actually re-orders waiters
                    // (other policies ignore the field).
                    let txn =
                        TxnToken::new(ids.fetch_add(1, Ordering::Relaxed), tpd_common::now_nanos())
                            .with_footprint(rng.gen_range(0u64..4) << 16);
                    let mut held: HashMap<usize, LockMode> = HashMap::new();
                    let n_locks = rng.gen_range(1..5);
                    let mut ok = true;
                    for _ in 0..n_locks {
                        let obj = rng.gen_range(0..objects);
                        let mode = if rng.gen_bool(0.4) {
                            LockMode::X
                        } else {
                            LockMode::S
                        };
                        let prior = held.get(&obj).copied();
                        match mgr.acquire(txn, ObjectId::new(1, obj as u64), mode) {
                            Ok(outcome) => {
                                // Track occupancy transitions, including
                                // upgrades (S -> X replaces the S share).
                                match (prior, outcome) {
                                    (None, _) => {
                                        held.insert(obj, mode);
                                        occupancy.enter(obj, mode);
                                    }
                                    (Some(LockMode::S), _) if mode == LockMode::X => {
                                        occupancy.exit(obj, LockMode::S);
                                        occupancy.enter(obj, LockMode::X);
                                        held.insert(obj, LockMode::X);
                                    }
                                    _ => {} // covered re-acquire
                                }
                                // Simulate work while holding.
                                if rng.gen_bool(0.2) {
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                            }
                            Err(LockError::Deadlock | LockError::Timeout) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    for (&obj, &mode) in &held {
                        occupancy.exit(obj, mode);
                    }
                    mgr.release_all(txn.id);
                    if ok {
                        committed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let total = committed.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed);
    assert_eq!(total as usize, threads * txns_per_thread, "no lost txns");
    assert!(
        committed.load(Ordering::Relaxed) > 0,
        "some transactions must commit"
    );
    // All queues drained.
    for obj in 0..objects {
        assert_eq!(
            mgr.granted_count(ObjectId::new(1, obj as u64)),
            0,
            "object {obj} still has grants"
        );
        assert_eq!(mgr.waiting_count(ObjectId::new(1, obj as u64)), 0);
    }
    let stats = mgr.stats();
    assert_eq!(stats.timeouts, 0, "timeouts indicate a missed wakeup");
    // For CATS, the incrementally maintained weights must equal a
    // from-scratch recount (both empty at quiescence, but the assertion
    // also catches any leaked non-zero entry).
    mgr.verify_cats_weights();
}

#[test]
fn stress_fcfs_youngest() {
    stress(Policy::Fcfs, VictimPolicy::Youngest, 0xA1, 1);
}

#[test]
fn stress_vats_youngest() {
    stress(Policy::Vats, VictimPolicy::Youngest, 0xB2, 1);
}

#[test]
fn stress_random_youngest() {
    stress(Policy::Random, VictimPolicy::Youngest, 0xC3, 1);
}

#[test]
fn stress_vats_requester_victim() {
    stress(Policy::Vats, VictimPolicy::Requester, 0xD4, 1);
}

#[test]
fn stress_fcfs_oldest_victim() {
    stress(Policy::Fcfs, VictimPolicy::Oldest, 0xE5, 1);
}

#[test]
fn stress_cats_youngest() {
    stress(Policy::Cats, VictimPolicy::Youngest, 0xF6, 1);
}

#[test]
fn stress_predictive_youngest() {
    stress(Policy::Predictive, VictimPolicy::Youngest, 0xA7, 1);
}

// The same churn over a partitioned lock table: multi-object transactions
// now span shards, so deadlock cycles cross shard boundaries and must be
// found via the shared wait-for graph.

#[test]
fn stress_fcfs_sharded() {
    stress(Policy::Fcfs, VictimPolicy::Youngest, 0x1A1, 4);
}

#[test]
fn stress_vats_sharded() {
    stress(Policy::Vats, VictimPolicy::Youngest, 0x1B2, 4);
}

#[test]
fn stress_random_sharded() {
    stress(Policy::Random, VictimPolicy::Youngest, 0x1C3, 8);
}

#[test]
fn stress_cats_sharded() {
    stress(Policy::Cats, VictimPolicy::Youngest, 0x1F6, 4);
}

#[test]
fn stress_predictive_sharded() {
    stress(Policy::Predictive, VictimPolicy::Youngest, 0x1A7, 4);
}

#[test]
fn stress_vats_oldest_sharded() {
    stress(Policy::Vats, VictimPolicy::Oldest, 0x1D4, 8);
}

/// Long soak: 300 stress runs cycling every policy × victim rule × shard
/// count with fresh seeds. Run with `TPD_SOAK=1 cargo test -p tpd-core --
/// --ignored`.
#[test]
#[ignore = "long soak; enable with TPD_SOAK=1"]
fn lock_stress_soak_300_runs() {
    if std::env::var("TPD_SOAK").as_deref() != Ok("1") {
        eprintln!("lock_stress_soak_300_runs: set TPD_SOAK=1 to run");
        return;
    }
    let policies = [
        Policy::Fcfs,
        Policy::Vats,
        Policy::Cats,
        Policy::Random,
        Policy::Predictive,
    ];
    let victims = [
        VictimPolicy::Youngest,
        VictimPolicy::Oldest,
        VictimPolicy::Requester,
    ];
    let shard_counts = [1usize, 4, 8];
    for run in 0..300u64 {
        let policy = policies[run as usize % policies.len()];
        let victim = victims[(run as usize / policies.len()) % victims.len()];
        let shards = shard_counts[run as usize % shard_counts.len()];
        stress(
            policy,
            victim,
            0x50AC ^ run.wrapping_mul(0x9E37_79B9),
            shards,
        );
    }
}

/// Single-object hammer: maximal queue churn on one hot object.
#[test]
fn hot_object_hammer() {
    let mgr = Arc::new(LockManager::with_policy(Policy::Vats));
    let obj = ObjectId::new(1, 0);
    let counter = Arc::new(AtomicU64::new(0));
    let ids = Arc::new(AtomicU64::new(1));
    std::thread::scope(|scope| {
        for _ in 0..12 {
            let mgr = mgr.clone();
            let counter = counter.clone();
            let ids = ids.clone();
            scope.spawn(move || {
                for _ in 0..100 {
                    let txn =
                        TxnToken::new(ids.fetch_add(1, Ordering::Relaxed), tpd_common::now_nanos());
                    match mgr.acquire(txn, obj, LockMode::X) {
                        Ok(_) => {
                            counter.fetch_add(1, Ordering::Relaxed);
                            mgr.release_all(txn.id);
                        }
                        Err(e) => panic!("single-object X can never deadlock: {e}"),
                    }
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 1200);
    assert_eq!(mgr.stats().deadlocks, 0);
}
