//! Statistics kernels used throughout the study.
//!
//! The paper reasons about *variance* (and its decomposition into per-function
//! variances and covariances, eq. 1), about the *Lp norm* of latency vectors
//! (the loss function VATS minimizes, eq. 4), and about *Pearson correlation*
//! (Appendix C.2, age vs. remaining time). This module implements each with
//! numerically stable streaming algorithms.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Single pass, numerically stable, mergeable (for sharded collection).
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (σ/μ), the paper's standardized dispersion
    /// measure; 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Streaming covariance accumulator for paired observations.
///
/// Used by the variance tree (eq. 1) to attribute the cross terms
/// `2·Cov(Xi, Xj)` between sibling functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Covariance {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    c: f64,
    mx2: f64,
    my2: f64,
}

impl Covariance {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one paired observation.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        self.mean_x += dx / n;
        self.mx2 += dx * (x - self.mean_x);
        let dy = y - self.mean_y;
        self.mean_y += dy / n;
        self.my2 += dy * (y - self.mean_y);
        self.c += dx * (y - self.mean_y);
    }

    /// Number of pairs.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Population covariance (0 when fewer than two pairs).
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.c / self.n as f64
        }
    }

    /// Pearson correlation coefficient in [-1, 1]; 0 when either variable is
    /// constant.
    pub fn correlation(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let denom = (self.mx2 * self.my2).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            self.c / denom
        }
    }
}

/// Pearson correlation of two equal-length slices (0 for degenerate input).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires paired samples");
    let mut cov = Covariance::new();
    for (&x, &y) in xs.iter().zip(ys) {
        cov.push(x, y);
    }
    cov.correlation()
}

/// The Lp norm of a latency vector: `(Σ |l_i|^p)^(1/p)` (paper eq. 4).
///
/// `p = 1` is total latency, `p = 2` penalizes dispersion, `p → ∞` approaches
/// the maximum. The paper's scheduling objective is expected Lp norm
/// ("p-performance").
pub fn lp_norm(latencies: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "Lp norm requires p >= 1");
    if latencies.is_empty() {
        return 0.0;
    }
    if p.is_infinite() {
        return latencies.iter().cloned().fold(0.0_f64, f64::max);
    }
    // Scale by the max to avoid overflow for large p.
    let max = latencies
        .iter()
        .cloned()
        .fold(0.0_f64, |a, b| a.max(b.abs()));
    if max == 0.0 {
        return 0.0;
    }
    let sum: f64 = latencies.iter().map(|&l| (l.abs() / max).powf(p)).sum();
    max * sum.powf(1.0 / p)
}

/// The `q`-th percentile (0..=100) of a sample, by linear interpolation on the
/// sorted order statistics. Sorts a copy; intended for offline analysis.
pub fn percentile(sample: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if sample.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_of_sorted(&sorted, q)
}

/// The `q`-th percentile of an already-sorted sample.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Full descriptive summary of a sample: the statistics every experiment in
/// the paper reports (mean, variance, σ, p50/p99/p999, min/max, CV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleSummary {
    pub count: usize,
    pub mean: f64,
    pub variance: f64,
    pub std_dev: f64,
    pub cv: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub p999: f64,
}

impl SampleSummary {
    /// Summarize a sample (empty samples yield all-zero summaries).
    pub fn from_sample(sample: &[f64]) -> Self {
        if sample.is_empty() {
            return SampleSummary {
                count: 0,
                mean: 0.0,
                variance: 0.0,
                std_dev: 0.0,
                cv: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                p999: 0.0,
            };
        }
        let mut stats = OnlineStats::new();
        for &x in sample {
            stats.push(x);
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        SampleSummary {
            count: sample.len(),
            mean: stats.mean(),
            variance: stats.variance(),
            std_dev: stats.std_dev(),
            cv: stats.cv(),
            min: sorted[0],
            max: *sorted.last().expect("nonempty"),
            p50: percentile_of_sorted(&sorted, 50.0),
            p95: percentile_of_sorted(&sorted, 95.0),
            p99: percentile_of_sorted(&sorted, 99.0),
            p999: percentile_of_sorted(&sorted, 99.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() <= eps, "{a} != {b} (eps {eps})");
    }

    #[test]
    fn online_stats_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert_close(s.mean(), 5.0, 1e-12);
        assert_close(s.variance(), 4.0, 1e-12);
        assert_close(s.std_dev(), 2.0, 1e-12);
        assert_close(s.cv(), 0.4, 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = OnlineStats::new();
        s1.push(42.0);
        assert_eq!(s1.mean(), 42.0);
        assert_eq!(s1.variance(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_close(a.mean(), all.mean(), 1e-9);
        assert_close(a.variance(), all.variance(), 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_close(empty.mean(), 2.0, 1e-12);
    }

    #[test]
    fn covariance_of_linear_relation() {
        let mut c = Covariance::new();
        for i in 0..50 {
            let x = i as f64;
            c.push(x, 3.0 * x + 1.0);
        }
        assert_close(c.correlation(), 1.0, 1e-12);
        // Cov(x, 3x+1) = 3 Var(x); Var(0..49) = (n^2-1)/12 = 208.25
        assert_close(c.covariance(), 3.0 * 208.25, 1e-9);
    }

    #[test]
    fn covariance_of_independent_is_small() {
        let mut c = Covariance::new();
        for i in 0..1000 {
            let x = (i % 7) as f64;
            let y = ((i * 13 + 5) % 11) as f64;
            c.push(x, y);
        }
        assert!(c.correlation().abs() < 0.1);
    }

    #[test]
    fn pearson_anticorrelated() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| -2.0 * x + 7.0).collect();
        assert_close(pearson(&xs, &ys), -1.0, 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn lp_norm_basics() {
        let v = [3.0, 4.0];
        assert_close(lp_norm(&v, 1.0), 7.0, 1e-12);
        assert_close(lp_norm(&v, 2.0), 5.0, 1e-12);
        assert_close(lp_norm(&v, f64::INFINITY), 4.0, 1e-12);
        assert_eq!(lp_norm(&[], 2.0), 0.0);
        assert_eq!(lp_norm(&[0.0, 0.0], 2.0), 0.0);
    }

    #[test]
    fn lp_norm_large_p_does_not_overflow() {
        let v = [1e9, 2e9, 3e9];
        let n = lp_norm(&v, 50.0);
        assert!(n.is_finite());
        assert!((3e9..3.3e9).contains(&n));
    }

    #[test]
    #[should_panic(expected = "p >= 1")]
    fn lp_norm_rejects_small_p() {
        lp_norm(&[1.0], 0.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_close(percentile(&xs, 0.0), 1.0, 1e-12);
        assert_close(percentile(&xs, 100.0), 4.0, 1e-12);
        assert_close(percentile(&xs, 50.0), 2.5, 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[5.0], 99.0), 5.0);
    }

    #[test]
    fn summary_consistency() {
        let xs: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = SampleSummary::from_sample(&xs);
        assert_eq!(s.count, 1000);
        assert_close(s.mean, 500.5, 1e-9);
        assert_close(s.p50, 500.5, 1e-9);
        assert!(s.p99 > 989.0 && s.p99 < 991.0);
        assert!(s.p999 > s.p99);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1000.0);
        assert!(s.std_dev > 0.0);
        assert_close(s.cv, s.std_dev / s.mean, 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = SampleSummary::from_sample(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }
}
