//! Shared substrate for the predictability study.
//!
//! This crate holds everything the engines, profiler, and harness have in
//! common and that carries no database semantics of its own:
//!
//! * [`stats`] — streaming and batch statistics: Welford mean/variance,
//!   covariance, Pearson correlation, quantiles, and the Lp norm the paper
//!   uses as its loss function (Section 5.1, eq. 4).
//! * [`latency`] — thread-safe latency recording and the
//!   mean/variance/p99 summaries every experiment reports.
//! * [`dist`] — key-access distributions (uniform, Zipfian, TPC-C NURand)
//!   and service-time distributions for the simulated devices.
//! * [`disk`] — [`disk::SimDisk`], a single-channel device with a
//!   configurable service-time model; stands in for the paper's real disks.
//! * [`fault`] — seeded [`fault::FaultPlan`]s (write stalls, latency
//!   spikes) the harness injects into the simulated devices.
//! * [`clock`] — monotonic nanosecond timestamps relative to process start,
//!   switchable per-thread to a virtual clock for deterministic simulation.
//! * [`poll`] — hermetic readiness multiplexing ([`poll::Poller`] over
//!   `epoll`/`poll(2)`, a cross-thread [`poll::Waker`], and the socket
//!   shims the event-driven server front end needs).
//! * [`table`] — fixed-width ASCII table rendering for experiment output.

pub mod clock;
pub mod disk;
pub mod dist;
pub mod fault;
pub mod latency;
pub mod poll;
pub mod stats;
pub mod table;

pub use clock::{now_nanos, Nanos, VirtualClock};
pub use disk::{DiskConfig, DiskDevice, DiskStats, FileDisk, IoKind, SimDisk};
pub use fault::FaultPlan;
pub use latency::{LatencyRecorder, LatencySummary};
pub use poll::{Interest, PollBackend, PollEvent, Poller, Token, Waker};
pub use stats::{lp_norm, pearson, percentile, Covariance, OnlineStats, SampleSummary};
