//! A simulated disk device.
//!
//! The paper's experiments ran against real storage whose service-time
//! variability surfaces in `fil_flush` (MySQL) and the WAL flush path
//! (Postgres). We stand in a [`SimDisk`]: a device that services one request
//! at a time (requests queue on the device mutex, exactly like a disk queue),
//! where each request costs a base service time drawn from a configurable
//! distribution plus a per-byte transfer cost. "Service" is charged through
//! [`clock::advance`](crate::clock::advance): `thread::sleep` in real mode —
//! which yields the CPU, so concurrency effects (other transactions making
//! progress during I/O) are preserved even on a single-core host — and a
//! free logical-clock bump under the harness's virtual clock.
//!
//! A device may additionally carry a seeded [`FaultPlan`] (write stalls,
//! latency spikes); see [`SimDisk::with_faults`].
//!
//! Both [`SimDisk`] and the real-file [`FileDisk`] implement the
//! [`DiskDevice`] trait, so the WAL, buffer pool, and engine are generic
//! over the backend: simulation keeps the deterministic digests
//! byte-identical, while `disk_backend = file` pays real `write(2)` +
//! `fdatasync(2)` costs against an on-disk file.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::ServiceTime;
use crate::fault::FaultPlan;
use crate::{now_nanos, Nanos};

/// Configuration for one simulated device.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Base service time per request (seek + rotational or flash overhead).
    pub service: ServiceTime,
    /// Transfer cost per byte, nanoseconds (e.g. 0.01 ns/B ≈ 100 GB/s bus,
    /// 10 ns/B ≈ 100 MB/s disk).
    pub ns_per_byte: f64,
    /// RNG seed so experiments are repeatable.
    pub seed: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            // ~200 µs median with a heavy tail: a fast SSD scaled up so the
            // 1-core host's ~50 µs sleep granularity stays negligible.
            service: ServiceTime::LogNormal {
                median: 200_000,
                sigma: 0.4,
            },
            ns_per_byte: 2.0,
            seed: 0xD15C,
        }
    }
}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Completed flush (durability barrier) requests.
    pub flushes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total nanoseconds spent in service (not counting queueing).
    pub busy_ns: u64,
    /// Injected write stalls that fired (fault plan).
    pub stalls: u64,
    /// Injected latency spikes that fired (fault plan).
    pub spikes: u64,
}

/// A single simulated device. One request in service at a time; callers
/// queue on the internal channel mutex, which models the device queue.
#[derive(Debug)]
pub struct SimDisk {
    channel: Mutex<SmallRng>,
    config: DiskConfig,
    /// Fault plan with its own RNG, so enabling faults never shifts the
    /// base service-time sequence.
    faults: Option<Mutex<(FaultPlan, SmallRng)>>,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    bytes: AtomicU64,
    busy_ns: AtomicU64,
    stalls: AtomicU64,
    spikes: AtomicU64,
}

/// What kind of request a caller issued (affects only accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Page or log read.
    Read,
    /// Page or log write (into the device cache).
    Write,
    /// Durability barrier (fsync-like; what commit waits on).
    Flush,
}

/// A block device the storage and log layers can issue requests against.
///
/// Two implementations: [`SimDisk`] (modeled service times, deterministic
/// under the virtual clock) and [`FileDisk`] (a real file; writes and
/// durability barriers are real syscalls). Callers only care about the
/// request/stats surface, so everything above the device takes
/// `Arc<dyn DiskDevice>`.
pub trait DiskDevice: Send + Sync + std::fmt::Debug {
    /// Issue one request of `bytes` bytes and block until it completes.
    /// Returns the time spent, including queueing behind other requests.
    fn request(&self, kind: IoKind, bytes: u64) -> Nanos;

    /// Convenience wrapper for a read.
    fn read(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Read, bytes)
    }

    /// Convenience wrapper for a write.
    fn write(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Write, bytes)
    }

    /// Convenience wrapper for a flush (durability barrier).
    fn flush(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Flush, bytes)
    }

    /// Snapshot of cumulative statistics.
    fn stats(&self) -> DiskStats;
}

impl DiskDevice for SimDisk {
    fn request(&self, kind: IoKind, bytes: u64) -> Nanos {
        SimDisk::request(self, kind, bytes)
    }

    fn stats(&self) -> DiskStats {
        SimDisk::stats(self)
    }
}

impl SimDisk {
    /// A new device with the given configuration.
    pub fn new(config: DiskConfig) -> Self {
        Self::with_faults(config, None)
    }

    /// A new device that perturbs service times with the given fault plan.
    pub fn with_faults(config: DiskConfig, plan: Option<FaultPlan>) -> Self {
        SimDisk {
            channel: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            faults: plan.map(|p| {
                let rng = SmallRng::seed_from_u64(p.seed);
                Mutex::new((p, rng))
            }),
            config,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
        }
    }

    /// A device with default (SSD-like, heavy-tailed) service times.
    pub fn default_device() -> Self {
        Self::new(DiskConfig::default())
    }

    /// Issue one request of `bytes` bytes and block until it completes.
    ///
    /// Returns the time spent, including queueing behind other requests.
    pub fn request(&self, kind: IoKind, bytes: u64) -> Nanos {
        let start = now_nanos();
        {
            // Hold the channel for the duration of service: requests behind
            // us queue here, exactly like a disk queue.
            let mut rng = self.channel.lock();
            let base = self.config.service.sample(&mut *rng);
            let mut service = base + (bytes as f64 * self.config.ns_per_byte) as Nanos;
            if let Some(faults) = &self.faults {
                let (plan, fault_rng) = &mut *faults.lock();
                let (extra, stalled, spiked) = plan.perturb(fault_rng, kind, base);
                service = service.saturating_add(extra);
                if stalled {
                    self.stalls.fetch_add(1, Ordering::Relaxed);
                }
                if spiked {
                    self.spikes.fetch_add(1, Ordering::Relaxed);
                }
            }
            crate::clock::advance(service);
            self.busy_ns.fetch_add(service, Ordering::Relaxed);
        }
        match kind {
            IoKind::Read => self.reads.fetch_add(1, Ordering::Relaxed),
            IoKind::Write => self.writes.fetch_add(1, Ordering::Relaxed),
            IoKind::Flush => self.flushes.fetch_add(1, Ordering::Relaxed),
        };
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        now_nanos() - start
    }

    /// Convenience wrapper for a read.
    pub fn read(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Read, bytes)
    }

    /// Convenience wrapper for a write.
    pub fn write(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Write, bytes)
    }

    /// Convenience wrapper for a flush (durability barrier).
    pub fn flush(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Flush, bytes)
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }
}

/// A real file as a disk device.
///
/// Byte-count requests ([`DiskDevice::write`]) append zero-fill of the
/// requested length — the simulation-style callers only model I/O volume —
/// while the file-backed WAL writes real frame payloads through
/// [`FileDisk::append_raw`]. A flush is a real `fdatasync(2)`, so commit
/// latency in `disk_backend = file` mode includes genuine device cost.
/// Appends reserve disjoint offsets under the state lock and land via
/// `pwrite`, so concurrent writers never interleave bytes.
#[derive(Debug)]
pub struct FileDisk {
    state: Mutex<FileState>,
    path: PathBuf,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    bytes: AtomicU64,
    busy_ns: AtomicU64,
    /// Crash-injection: a killed device issues no further syscalls — in
    /// particular the `fdatasync` of [`IoKind::Flush`] never happens, so
    /// bytes already `pwrite`-landed sit unsynced exactly as after a
    /// process death between `pwrite` and `fdatasync`.
    killed: AtomicBool,
}

#[derive(Debug)]
struct FileState {
    file: File,
    /// Logical end of file: next append offset.
    len: u64,
}

/// Zero-fill chunk for byte-count writes.
const ZERO_CHUNK: [u8; 16 * 1024] = [0u8; 16 * 1024];

impl FileDisk {
    /// Create (or truncate) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self::from_file(file, 0, path))
    }

    /// Open the existing file at `path`, appending after its current
    /// contents.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::options().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Self::from_file(file, len, path))
    }

    fn from_file(file: File, len: u64, path: PathBuf) -> Self {
        FileDisk {
            state: Mutex::new(FileState { file, len }),
            path,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            killed: AtomicBool::new(false),
        }
    }

    /// Kill the device: every later request (including the `fdatasync`
    /// behind [`IoKind::Flush`]) and [`FileDisk::append_raw`] silently
    /// does nothing, as if the owning process died. Bytes written before
    /// the kill stay in the file — the "landed but never synced" window
    /// the crash matrix's after-write phase exercises.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::SeqCst);
    }

    /// Whether [`FileDisk::kill`] has fired.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// The path this device writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current logical length (next append offset).
    pub fn len(&self) -> u64 {
        self.state.lock().len
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a real payload (a WAL frame) and return the time spent.
    /// Counts as one write request of `buf.len()` bytes.
    pub fn append_raw(&self, buf: &[u8]) -> io::Result<Nanos> {
        if self.killed.load(Ordering::Acquire) {
            return Ok(0);
        }
        let wall = std::time::Instant::now();
        {
            let mut st = self.state.lock();
            let off = st.len;
            st.file.write_all_at(buf, off)?;
            st.len = off + buf.len() as u64;
        }
        let spent = wall.elapsed().as_nanos() as Nanos;
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        self.busy_ns.fetch_add(spent, Ordering::Relaxed);
        Ok(spent)
    }

    /// Swap in a fresh file (segment rotation). Subsequent requests land in
    /// `file`; the old handle is returned so the caller can decide whether
    /// to keep or drop it.
    pub fn swap_file(&self, file: File) -> File {
        let mut st = self.state.lock();
        let old = std::mem::replace(&mut st.file, file);
        st.len = 0;
        old
    }

    /// Real `fdatasync(2)` on the current file.
    fn sync(&self) -> io::Result<()> {
        let st = self.state.lock();
        st.file.sync_data()
    }
}

impl DiskDevice for FileDisk {
    fn request(&self, kind: IoKind, bytes: u64) -> Nanos {
        if self.killed.load(Ordering::Acquire) {
            return 0;
        }
        let wall = std::time::Instant::now();
        match kind {
            IoKind::Read => {
                // Read `bytes` from the head of the file (content is
                // irrelevant to the storage model; the syscall cost is not).
                let st = self.state.lock();
                let mut buf = [0u8; ZERO_CHUNK.len()];
                let mut off = 0u64;
                let end = bytes.min(st.len);
                while off < end {
                    let n = ((end - off) as usize).min(buf.len());
                    if st.file.read_at(&mut buf[..n], off).is_err() {
                        break;
                    }
                    off += n as u64;
                }
                self.reads.fetch_add(1, Ordering::Relaxed);
            }
            IoKind::Write => {
                let mut st = self.state.lock();
                let mut off = st.len;
                let end = off + bytes;
                while off < end {
                    let n = ((end - off) as usize).min(ZERO_CHUNK.len());
                    if st.file.write_all_at(&ZERO_CHUNK[..n], off).is_err() {
                        break;
                    }
                    off += n as u64;
                }
                st.len = end;
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            IoKind::Flush => {
                let _ = self.sync();
                self.flushes.fetch_add(1, Ordering::Relaxed);
            }
        }
        let spent = wall.elapsed().as_nanos() as Nanos;
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.busy_ns.fetch_add(spent, Ordering::Relaxed);
        spent
    }

    fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            stalls: 0,
            spikes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fast_disk() -> SimDisk {
        SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(100_000), // 100 µs
            ns_per_byte: 0.0,
            seed: 7,
        })
    }

    #[test]
    fn request_takes_at_least_service_time() {
        let disk = fast_disk();
        let t = disk.read(0);
        assert!(t >= 100_000, "took {t} ns");
    }

    #[test]
    fn stats_account_by_kind() {
        let disk = fast_disk();
        disk.read(10);
        disk.write(20);
        disk.flush(0);
        let s = disk.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes, 30);
        assert!(s.busy_ns >= 300_000);
    }

    #[test]
    fn per_byte_cost_applies() {
        let disk = SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(0),
            ns_per_byte: 1000.0, // 1 µs per byte
            seed: 7,
        });
        let t = disk.write(1000); // = 1 ms transfer
        assert!(t >= 1_000_000, "took {t} ns");
    }

    #[test]
    fn faults_fire_and_are_counted() {
        let disk = SimDisk::with_faults(
            DiskConfig {
                service: ServiceTime::Fixed(1_000),
                ns_per_byte: 0.0,
                seed: 7,
            },
            Some(FaultPlan {
                seed: 11,
                stall_prob: 1.0,
                stall_ns: 50_000,
                spike_prob: 0.0,
                spike_mult: 1,
            }),
        );
        disk.read(0); // reads never stall
        disk.write(0);
        let s = disk.stats();
        assert_eq!(s.stalls, 1);
        assert_eq!(s.spikes, 0);
        assert!(s.busy_ns >= 51_000 + 1_000, "stall charged: {}", s.busy_ns);
    }

    #[test]
    fn virtual_clock_makes_io_free_and_deterministic() {
        let run = || {
            let _guard = crate::clock::VirtualClock::enable(0);
            let disk = SimDisk::with_faults(
                DiskConfig {
                    service: ServiceTime::LogNormal {
                        median: 200_000,
                        sigma: 0.4,
                    },
                    ns_per_byte: 2.0,
                    seed: 99,
                },
                Some(FaultPlan::chaos(3)),
            );
            for i in 0..200 {
                match i % 3 {
                    0 => disk.read(512),
                    1 => disk.write(4096),
                    _ => disk.flush(0),
                };
            }
            (now_nanos(), disk.stats())
        };
        let wall = std::time::Instant::now();
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "same seed, same virtual elapsed time");
        assert_eq!(s1, s2, "same seed, same stats (incl. fault counters)");
        assert!(s1.busy_ns > 0 && t1 >= s1.busy_ns);
        // 200 requests at ~200 µs each is ~40 ms of modeled time; the
        // virtual runs must cost far less wall time than that.
        assert!(wall.elapsed() < std::time::Duration::from_millis(40));
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "tpd-filedisk-{tag}-{}-{:x}",
            std::process::id(),
            now_nanos()
        ));
        p
    }

    #[test]
    fn file_disk_appends_flushes_and_accounts() {
        let path = temp_path("basic");
        let disk = FileDisk::create(&path).expect("create");
        disk.append_raw(b"hello").expect("append");
        disk.write(11); // zero-fill
        disk.flush(0);
        disk.read(16);
        let s = DiskDevice::stats(&disk);
        assert_eq!((s.reads, s.writes, s.flushes), (1, 2, 1));
        assert_eq!(s.bytes, 5 + 11 + 16);
        assert_eq!(disk.len(), 16);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), 16);
        let contents = std::fs::read(&path).expect("read back");
        assert_eq!(&contents[..5], b"hello");
        assert!(contents[5..].iter().all(|&b| b == 0));
        drop(disk);
        let reopened = FileDisk::open(&path).expect("open");
        assert_eq!(reopened.len(), 16, "open resumes after existing bytes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_disk_swap_file_restarts_offsets() {
        let path = temp_path("swap");
        let path2 = temp_path("swap2");
        let disk = FileDisk::create(&path).expect("create");
        disk.append_raw(b"old segment").expect("append");
        let fresh = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path2)
            .expect("new segment");
        drop(disk.swap_file(fresh));
        disk.append_raw(b"new").expect("append");
        assert_eq!(disk.len(), 3);
        assert_eq!(std::fs::read(&path2).expect("read"), b"new");
        assert_eq!(std::fs::read(&path).expect("read"), b"old segment");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn dyn_device_dispatch_reaches_both_backends() {
        let path = temp_path("dyn");
        let devices: Vec<Arc<dyn DiskDevice>> = vec![
            Arc::new(fast_disk()),
            Arc::new(FileDisk::create(&path).expect("create")),
        ];
        for d in &devices {
            d.write(8);
            d.flush(0);
            let s = d.stats();
            assert_eq!((s.writes, s.flushes), (1, 1));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_requests_serialize() {
        let disk = Arc::new(fast_disk());
        let start = now_nanos();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = disk.clone();
            handles.push(std::thread::spawn(move || d.flush(0)));
        }
        for h in handles {
            h.join().expect("io thread panicked");
        }
        let elapsed = now_nanos() - start;
        // Four 100 µs requests through one channel take >= 400 µs.
        assert!(elapsed >= 400_000, "elapsed {elapsed} ns");
        assert_eq!(disk.stats().flushes, 4);
    }
}
