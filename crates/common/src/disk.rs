//! A simulated disk device.
//!
//! The paper's experiments ran against real storage whose service-time
//! variability surfaces in `fil_flush` (MySQL) and the WAL flush path
//! (Postgres). We stand in a [`SimDisk`]: a device that services one request
//! at a time (requests queue on the device mutex, exactly like a disk queue),
//! where each request costs a base service time drawn from a configurable
//! distribution plus a per-byte transfer cost. "Service" is charged through
//! [`clock::advance`](crate::clock::advance): `thread::sleep` in real mode —
//! which yields the CPU, so concurrency effects (other transactions making
//! progress during I/O) are preserved even on a single-core host — and a
//! free logical-clock bump under the harness's virtual clock.
//!
//! A device may additionally carry a seeded [`FaultPlan`] (write stalls,
//! latency spikes); see [`SimDisk::with_faults`].

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::dist::ServiceTime;
use crate::fault::FaultPlan;
use crate::{now_nanos, Nanos};

/// Configuration for one simulated device.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Base service time per request (seek + rotational or flash overhead).
    pub service: ServiceTime,
    /// Transfer cost per byte, nanoseconds (e.g. 0.01 ns/B ≈ 100 GB/s bus,
    /// 10 ns/B ≈ 100 MB/s disk).
    pub ns_per_byte: f64,
    /// RNG seed so experiments are repeatable.
    pub seed: u64,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            // ~200 µs median with a heavy tail: a fast SSD scaled up so the
            // 1-core host's ~50 µs sleep granularity stays negligible.
            service: ServiceTime::LogNormal {
                median: 200_000,
                sigma: 0.4,
            },
            ns_per_byte: 2.0,
            seed: 0xD15C,
        }
    }
}

/// Cumulative device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Completed read requests.
    pub reads: u64,
    /// Completed write requests.
    pub writes: u64,
    /// Completed flush (durability barrier) requests.
    pub flushes: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Total nanoseconds spent in service (not counting queueing).
    pub busy_ns: u64,
    /// Injected write stalls that fired (fault plan).
    pub stalls: u64,
    /// Injected latency spikes that fired (fault plan).
    pub spikes: u64,
}

/// A single simulated device. One request in service at a time; callers
/// queue on the internal channel mutex, which models the device queue.
#[derive(Debug)]
pub struct SimDisk {
    channel: Mutex<SmallRng>,
    config: DiskConfig,
    /// Fault plan with its own RNG, so enabling faults never shifts the
    /// base service-time sequence.
    faults: Option<Mutex<(FaultPlan, SmallRng)>>,
    reads: AtomicU64,
    writes: AtomicU64,
    flushes: AtomicU64,
    bytes: AtomicU64,
    busy_ns: AtomicU64,
    stalls: AtomicU64,
    spikes: AtomicU64,
}

/// What kind of request a caller issued (affects only accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Page or log read.
    Read,
    /// Page or log write (into the device cache).
    Write,
    /// Durability barrier (fsync-like; what commit waits on).
    Flush,
}

impl SimDisk {
    /// A new device with the given configuration.
    pub fn new(config: DiskConfig) -> Self {
        Self::with_faults(config, None)
    }

    /// A new device that perturbs service times with the given fault plan.
    pub fn with_faults(config: DiskConfig, plan: Option<FaultPlan>) -> Self {
        SimDisk {
            channel: Mutex::new(SmallRng::seed_from_u64(config.seed)),
            faults: plan.map(|p| {
                let rng = SmallRng::seed_from_u64(p.seed);
                Mutex::new((p, rng))
            }),
            config,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            spikes: AtomicU64::new(0),
        }
    }

    /// A device with default (SSD-like, heavy-tailed) service times.
    pub fn default_device() -> Self {
        Self::new(DiskConfig::default())
    }

    /// Issue one request of `bytes` bytes and block until it completes.
    ///
    /// Returns the time spent, including queueing behind other requests.
    pub fn request(&self, kind: IoKind, bytes: u64) -> Nanos {
        let start = now_nanos();
        {
            // Hold the channel for the duration of service: requests behind
            // us queue here, exactly like a disk queue.
            let mut rng = self.channel.lock();
            let base = self.config.service.sample(&mut *rng);
            let mut service = base + (bytes as f64 * self.config.ns_per_byte) as Nanos;
            if let Some(faults) = &self.faults {
                let (plan, fault_rng) = &mut *faults.lock();
                let (extra, stalled, spiked) = plan.perturb(fault_rng, kind, base);
                service = service.saturating_add(extra);
                if stalled {
                    self.stalls.fetch_add(1, Ordering::Relaxed);
                }
                if spiked {
                    self.spikes.fetch_add(1, Ordering::Relaxed);
                }
            }
            crate::clock::advance(service);
            self.busy_ns.fetch_add(service, Ordering::Relaxed);
        }
        match kind {
            IoKind::Read => self.reads.fetch_add(1, Ordering::Relaxed),
            IoKind::Write => self.writes.fetch_add(1, Ordering::Relaxed),
            IoKind::Flush => self.flushes.fetch_add(1, Ordering::Relaxed),
        };
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        now_nanos() - start
    }

    /// Convenience wrapper for a read.
    pub fn read(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Read, bytes)
    }

    /// Convenience wrapper for a write.
    pub fn write(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Write, bytes)
    }

    /// Convenience wrapper for a flush (durability barrier).
    pub fn flush(&self, bytes: u64) -> Nanos {
        self.request(IoKind::Flush, bytes)
    }

    /// Snapshot of cumulative statistics.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            spikes: self.spikes.load(Ordering::Relaxed),
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fast_disk() -> SimDisk {
        SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(100_000), // 100 µs
            ns_per_byte: 0.0,
            seed: 7,
        })
    }

    #[test]
    fn request_takes_at_least_service_time() {
        let disk = fast_disk();
        let t = disk.read(0);
        assert!(t >= 100_000, "took {t} ns");
    }

    #[test]
    fn stats_account_by_kind() {
        let disk = fast_disk();
        disk.read(10);
        disk.write(20);
        disk.flush(0);
        let s = disk.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes, 30);
        assert!(s.busy_ns >= 300_000);
    }

    #[test]
    fn per_byte_cost_applies() {
        let disk = SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(0),
            ns_per_byte: 1000.0, // 1 µs per byte
            seed: 7,
        });
        let t = disk.write(1000); // = 1 ms transfer
        assert!(t >= 1_000_000, "took {t} ns");
    }

    #[test]
    fn faults_fire_and_are_counted() {
        let disk = SimDisk::with_faults(
            DiskConfig {
                service: ServiceTime::Fixed(1_000),
                ns_per_byte: 0.0,
                seed: 7,
            },
            Some(FaultPlan {
                seed: 11,
                stall_prob: 1.0,
                stall_ns: 50_000,
                spike_prob: 0.0,
                spike_mult: 1,
            }),
        );
        disk.read(0); // reads never stall
        disk.write(0);
        let s = disk.stats();
        assert_eq!(s.stalls, 1);
        assert_eq!(s.spikes, 0);
        assert!(s.busy_ns >= 51_000 + 1_000, "stall charged: {}", s.busy_ns);
    }

    #[test]
    fn virtual_clock_makes_io_free_and_deterministic() {
        let run = || {
            let _guard = crate::clock::VirtualClock::enable(0);
            let disk = SimDisk::with_faults(
                DiskConfig {
                    service: ServiceTime::LogNormal {
                        median: 200_000,
                        sigma: 0.4,
                    },
                    ns_per_byte: 2.0,
                    seed: 99,
                },
                Some(FaultPlan::chaos(3)),
            );
            for i in 0..200 {
                match i % 3 {
                    0 => disk.read(512),
                    1 => disk.write(4096),
                    _ => disk.flush(0),
                };
            }
            (now_nanos(), disk.stats())
        };
        let wall = std::time::Instant::now();
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!(t1, t2, "same seed, same virtual elapsed time");
        assert_eq!(s1, s2, "same seed, same stats (incl. fault counters)");
        assert!(s1.busy_ns > 0 && t1 >= s1.busy_ns);
        // 200 requests at ~200 µs each is ~40 ms of modeled time; the
        // virtual runs must cost far less wall time than that.
        assert!(wall.elapsed() < std::time::Duration::from_millis(40));
    }

    #[test]
    fn concurrent_requests_serialize() {
        let disk = Arc::new(fast_disk());
        let start = now_nanos();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = disk.clone();
            handles.push(std::thread::spawn(move || d.flush(0)));
        }
        for h in handles {
            h.join().expect("io thread panicked");
        }
        let elapsed = now_nanos() - start;
        // Four 100 µs requests through one channel take >= 400 µs.
        assert!(elapsed >= 400_000, "elapsed {elapsed} ns");
        assert_eq!(disk.stats().flushes, 4);
    }
}
