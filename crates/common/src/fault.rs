//! Seeded fault plans for the simulated devices.
//!
//! A [`FaultPlan`] perturbs a [`SimDisk`](crate::SimDisk)'s service times
//! with two failure shapes the variance studies single out: *write stalls*
//! (a write or flush occasionally blocks for a long, fixed hiccup — the
//! `fil_flush` pathology) and *latency spikes* (any request occasionally
//! takes a multiple of its drawn service time — a background-GC style
//! tail). Faults draw from their own seeded RNG, so enabling a plan never
//! shifts the base service-time sequence, and the same seed always yields
//! the same fault schedule.
//!
//! WAL-level faults (torn tail records, crash-at-LSN points, ack-before-
//! flush bugs) are modeled separately in `tpd-wal`, where log structure is
//! known.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::disk::IoKind;
use crate::Nanos;

/// A seeded schedule of device-level faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG (independent of the device's service RNG).
    pub seed: u64,
    /// Probability that a write or flush stalls.
    pub stall_prob: f64,
    /// Added service time when a stall fires.
    pub stall_ns: Nanos,
    /// Probability that any request's service time spikes.
    pub spike_prob: f64,
    /// Multiplier applied to the drawn service time on a spike.
    pub spike_mult: u64,
}

impl FaultPlan {
    /// A plan that never fires; useful as an explicit "faults off".
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stall_prob: 0.0,
            stall_ns: 0,
            spike_prob: 0.0,
            spike_mult: 1,
        }
    }

    /// The default torture-grade plan: 3% write stalls of 2 ms, 5% spikes
    /// at 8x service time.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            stall_prob: 0.03,
            stall_ns: 2_000_000,
            spike_prob: 0.05,
            spike_mult: 8,
        }
    }

    /// Extra service time charged to a request whose base service time is
    /// `base`, plus which fault classes fired: `(extra, stalled, spiked)`.
    pub fn perturb(&self, rng: &mut SmallRng, kind: IoKind, base: Nanos) -> (Nanos, bool, bool) {
        let mut extra: Nanos = 0;
        let mut stalled = false;
        let mut spiked = false;
        if matches!(kind, IoKind::Write | IoKind::Flush)
            && self.stall_prob > 0.0
            && rng.gen_bool(self.stall_prob)
        {
            extra = extra.saturating_add(self.stall_ns);
            stalled = true;
        }
        if self.spike_prob > 0.0 && rng.gen_bool(self.spike_prob) {
            extra = extra.saturating_add(base.saturating_mul(self.spike_mult.saturating_sub(1)));
            spiked = true;
        }
        (extra, stalled, spiked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::quiet(1);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let (extra, stalled, spiked) = plan.perturb(&mut rng, IoKind::Flush, 1_000);
            assert_eq!((extra, stalled, spiked), (0, false, false));
        }
    }

    #[test]
    fn chaos_plan_is_seed_deterministic() {
        let plan = FaultPlan::chaos(42);
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..1000)
                .map(|i| {
                    let kind = if i % 2 == 0 {
                        IoKind::Write
                    } else {
                        IoKind::Read
                    };
                    plan.perturb(&mut rng, kind, 100_000)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds, different schedules");
    }

    #[test]
    fn stalls_only_hit_writes_and_flushes() {
        let plan = FaultPlan {
            seed: 0,
            stall_prob: 1.0,
            stall_ns: 500,
            spike_prob: 0.0,
            spike_mult: 1,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let (extra, stalled, _) = plan.perturb(&mut rng, IoKind::Read, 100);
        assert_eq!((extra, stalled), (0, false));
        let (extra, stalled, _) = plan.perturb(&mut rng, IoKind::Write, 100);
        assert_eq!((extra, stalled), (500, true));
        let (extra, stalled, _) = plan.perturb(&mut rng, IoKind::Flush, 100);
        assert_eq!((extra, stalled), (500, true));
    }

    #[test]
    fn spike_multiplies_base_service() {
        let plan = FaultPlan {
            seed: 0,
            stall_prob: 0.0,
            stall_ns: 0,
            spike_prob: 1.0,
            spike_mult: 8,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let (extra, _, spiked) = plan.perturb(&mut rng, IoKind::Read, 1_000);
        assert_eq!(extra, 7_000, "8x total = base + 7x extra");
        assert!(spiked);
    }
}
