//! Fixed-width ASCII table rendering for experiment output.
//!
//! Every experiment binary prints its results in the same tabular format the
//! paper's tables use; this keeps that formatting in one place.

/// A simple column-aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must have the same arity as the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns, a rule under the header, and `|` separators.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding on the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 3 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format a float with 2 decimal places (the paper's table precision).
pub fn f2(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Format a ratio as `N.NNx` like the paper ("5.6x lower variance").
pub fn ratio(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{x:.2}x")
    }
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("short"));
        assert!(lines[3].contains("a-much-longer-name | 123456"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ratio(5.678), "5.68x");
        assert_eq!(pct(0.329), "32.9%");
        assert_eq!(f2(f64::NAN), "n/a");
        assert_eq!(ratio(f64::NAN), "n/a");
    }

    #[test]
    fn len_and_empty() {
        let mut t = TextTable::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
