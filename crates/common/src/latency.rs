//! Thread-safe latency recording for experiments.
//!
//! The harness records one latency per committed transaction, tagged with a
//! transaction-type index so per-type analyses (e.g. Fig. 8's per-TPC-C-type
//! correlations) can slice the data. Recording appends to per-thread shards
//! to keep the hot path cheap; analysis drains the shards.

use parking_lot::Mutex;

use crate::stats::SampleSummary;
use crate::Nanos;

/// One recorded transaction outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRecord {
    /// Workload-defined transaction type index.
    pub txn_type: u8,
    /// End-to-end latency, nanoseconds (from scheduled arrival to completion).
    pub latency: Nanos,
}

/// Concurrent latency recorder.
///
/// Internally sharded: each recording thread should obtain its own
/// [`LatencyShard`] via [`LatencyRecorder::shard`]; shards push without
/// cross-thread contention and are merged at drain time.
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    shards: Mutex<Vec<std::sync::Arc<Mutex<Vec<LatencyRecord>>>>>,
}

/// A per-thread recording handle.
#[derive(Debug, Clone)]
pub struct LatencyShard {
    buf: std::sync::Arc<Mutex<Vec<LatencyRecord>>>,
}

impl LatencyShard {
    /// Record one completed transaction.
    #[inline]
    pub fn record(&self, txn_type: u8, latency: Nanos) {
        self.buf.lock().push(LatencyRecord { txn_type, latency });
    }
}

impl LatencyRecorder {
    /// A new, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new shard for a recording thread.
    pub fn shard(&self) -> LatencyShard {
        let buf = std::sync::Arc::new(Mutex::new(Vec::with_capacity(4096)));
        self.shards.lock().push(buf.clone());
        LatencyShard { buf }
    }

    /// Collect all records (leaves shards in place but empty).
    pub fn drain(&self) -> Vec<LatencyRecord> {
        let shards = self.shards.lock();
        let mut out = Vec::new();
        for shard in shards.iter() {
            out.append(&mut shard.lock());
        }
        out
    }

    /// Snapshot all records without draining.
    pub fn snapshot(&self) -> Vec<LatencyRecord> {
        let shards = self.shards.lock();
        let mut out = Vec::new();
        for shard in shards.iter() {
            out.extend(shard.lock().iter().copied());
        }
        out
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.shards.lock().iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The summary every experiment in the paper reports, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of transactions.
    pub count: usize,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Population variance, ms².
    pub variance_ms2: f64,
    /// Standard deviation, ms.
    pub std_dev_ms: f64,
    /// Coefficient of variation (σ/μ).
    pub cv: f64,
    /// 50th percentile, ms.
    pub p50_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarize a set of records (all types pooled).
    pub fn from_records(records: &[LatencyRecord]) -> Self {
        let ms: Vec<f64> = records.iter().map(|r| r.latency as f64 / 1e6).collect();
        Self::from_ms(&ms)
    }

    /// Summarize a sample already converted to milliseconds.
    pub fn from_ms(ms: &[f64]) -> Self {
        let s = SampleSummary::from_sample(ms);
        LatencySummary {
            count: s.count,
            mean_ms: s.mean,
            variance_ms2: s.variance,
            std_dev_ms: s.std_dev,
            cv: s.cv,
            p50_ms: s.p50,
            p99_ms: s.p99,
            p999_ms: s.p999,
            max_ms: s.max,
        }
    }

    /// Ratio of this summary's (mean, variance, p99) to `other`'s —
    /// the "Orig. / Modified" ratios the paper's tables report.
    pub fn ratios_vs(&self, other: &LatencySummary) -> (f64, f64, f64) {
        fn ratio(a: f64, b: f64) -> f64 {
            if b == 0.0 {
                f64::NAN
            } else {
                a / b
            }
        }
        (
            ratio(self.mean_ms, other.mean_ms),
            ratio(self.variance_ms2, other.variance_ms2),
            ratio(self.p99_ms, other.p99_ms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_drain() {
        let rec = LatencyRecorder::new();
        let shard = rec.shard();
        shard.record(0, 1_000_000);
        shard.record(1, 2_000_000);
        assert_eq!(rec.len(), 2);
        let records = rec.drain();
        assert_eq!(records.len(), 2);
        assert!(rec.is_empty());
        assert_eq!(records[0].txn_type, 0);
        assert_eq!(records[1].latency, 2_000_000);
    }

    #[test]
    fn shards_merge_across_threads() {
        let rec = std::sync::Arc::new(LatencyRecorder::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let shard = rec.shard();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    shard.record(t, i * 1000);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(rec.len(), 400);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 400);
        assert_eq!(rec.len(), 400, "snapshot must not drain");
    }

    #[test]
    fn summary_from_records() {
        let records: Vec<LatencyRecord> = (1..=100)
            .map(|i| LatencyRecord {
                txn_type: 0,
                latency: i * 1_000_000, // 1..=100 ms
            })
            .collect();
        let s = LatencySummary::from_records(&records);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!(s.p99_ms > 98.0 && s.p99_ms <= 100.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn ratios() {
        let a = LatencySummary::from_ms(&[10.0; 100]);
        let b = LatencySummary::from_ms(&[5.0; 100]);
        let (mean_r, _var_r, p99_r) = a.ratios_vs(&b);
        assert!((mean_r - 2.0).abs() < 1e-12);
        assert!((p99_r - 2.0).abs() < 1e-12);
        // Variance of constant samples is zero -> NaN ratio, flagged not hidden.
        let (_m, var_r, _p) = a.ratios_vs(&b);
        assert!(var_r.is_nan());
    }
}
