//! Access-skew and service-time distributions.
//!
//! * [`KeyDist`] — how workloads pick keys: uniform, Zipfian (YCSB's
//!   incremental-friendly formulation), hotspot, and TPC-C's NURand.
//! * [`ServiceTime`] — how long a simulated device takes per request:
//!   fixed, uniform, or lognormal (heavy-tailed, like real disk service
//!   times — the source of the "inherent I/O variance" the paper observes
//!   in `fil_flush`).

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

use crate::Nanos;

/// Key-selection distribution over `0..n`.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform { n: u64 },
    /// Zipfian with parameter `theta` (YCSB uses 0.99).
    Zipfian(Zipfian),
    /// `hot_fraction` of accesses hit the first `hot_keys` keys.
    HotSpot {
        n: u64,
        hot_keys: u64,
        hot_fraction: f64,
    },
}

impl KeyDist {
    /// Uniform over `0..n`.
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0);
        KeyDist::Uniform { n }
    }

    /// Zipfian over `0..n` with skew `theta` in (0, 1).
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyDist::Zipfian(Zipfian::new(n, theta))
    }

    /// Hotspot distribution.
    pub fn hotspot(n: u64, hot_keys: u64, hot_fraction: f64) -> Self {
        assert!(hot_keys <= n && (0.0..=1.0).contains(&hot_fraction));
        KeyDist::HotSpot {
            n,
            hot_keys,
            hot_fraction,
        }
    }

    /// Draw one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.gen_range(0..*n),
            KeyDist::Zipfian(z) => z.sample(rng),
            KeyDist::HotSpot {
                n,
                hot_keys,
                hot_fraction,
            } => {
                if rng.gen::<f64>() < *hot_fraction {
                    rng.gen_range(0..*hot_keys)
                } else {
                    rng.gen_range(*hot_keys..*n)
                }
            }
        }
    }

    /// Size of the key space.
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } => *n,
            KeyDist::Zipfian(z) => z.n,
            KeyDist::HotSpot { n, .. } => *n,
        }
    }
}

/// Zipfian generator (Gray et al.'s rejection-free method, as used by YCSB).
///
/// Key 0 is the most popular. Construction is O(n) (harmonic sum); sampling
/// is O(1).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Build a Zipfian distribution over `0..n` with skew `theta` in (0,1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draw one key (0 is hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// `zeta(2, theta)`, exposed for tests.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// TPC-C's non-uniform random function NURand(A, x, y).
///
/// `c` is the per-run constant the spec draws once; callers should hold one
/// per field.
pub fn nurand<R: Rng + ?Sized>(rng: &mut R, a: u64, x: u64, y: u64, c: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Service-time model for a simulated device, in nanoseconds.
#[derive(Debug, Clone)]
pub enum ServiceTime {
    /// Constant service time.
    Fixed(Nanos),
    /// Uniform in `[lo, hi]`.
    Uniform { lo: Nanos, hi: Nanos },
    /// Lognormal with the given *median* (ns) and `sigma` (log-space spread).
    /// Heavy right tail — the canonical disk service-time shape.
    LogNormal { median: Nanos, sigma: f64 },
}

impl ServiceTime {
    /// Draw one service time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Nanos {
        match self {
            ServiceTime::Fixed(ns) => *ns,
            ServiceTime::Uniform { lo, hi } => rng.gen_range(*lo..=*hi),
            ServiceTime::LogNormal { median, sigma } => {
                let mu = (*median as f64).ln();
                let d = LogNormal::new(mu, *sigma).expect("valid lognormal");
                d.sample(rng) as Nanos
            }
        }
    }

    /// The distribution's median, used for capacity planning in the harness.
    pub fn median(&self) -> Nanos {
        match self {
            ServiceTime::Fixed(ns) => *ns,
            ServiceTime::Uniform { lo, hi } => (lo + hi) / 2,
            ServiceTime::LogNormal { median, .. } => *median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = KeyDist::uniform(10);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        let z = Zipfian::new(1000, 0.99);
        let mut counts = vec![0u64; 1000];
        for _ in 0..100_000 {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            counts[k as usize] += 1;
        }
        // Key 0 should be far more popular than key 500.
        assert!(counts[0] > 20 * counts[500].max(1));
        // Hottest key frequency roughly 1/zeta(n) ~ 13% for n=1000, theta=.99
        let f0 = counts[0] as f64 / 100_000.0;
        assert!(f0 > 0.08 && f0 < 0.25, "f0 = {f0}");
    }

    #[test]
    fn zipfian_rejects_bad_theta() {
        let r = std::panic::catch_unwind(|| Zipfian::new(10, 1.5));
        assert!(r.is_err());
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = KeyDist::hotspot(1000, 10, 0.9);
        let mut hot = 0;
        for _ in 0..10_000 {
            if d.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        let frac = hot as f64 / 10_000.0;
        assert!(frac > 0.85 && frac < 0.95, "frac = {frac}");
    }

    #[test]
    fn nurand_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = nurand(&mut rng, 1023, 1, 3000, 123);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn service_time_medians() {
        let mut rng = SmallRng::seed_from_u64(5);
        let d = ServiceTime::LogNormal {
            median: 100_000,
            sigma: 0.5,
        };
        let mut samples: Vec<Nanos> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let med = samples[5000];
        assert!(med > 90_000 && med < 110_000, "lognormal median off: {med}");
        // Heavy tail: p99 well above the median.
        let p99 = samples[9900];
        assert!(p99 > med * 2, "expected heavy tail, p99={p99} med={med}");
        assert_eq!(ServiceTime::Fixed(5).sample(&mut rng), 5);
        let u = ServiceTime::Uniform { lo: 10, hi: 20 };
        for _ in 0..100 {
            let s = u.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(u.median(), 15);
    }
}
