//! Readiness polling and low-level socket shims, hand-rolled so the
//! workspace stays hermetic (no `libc`/`mio`; the needed syscalls are
//! declared directly — std already links the C library).
//!
//! [`Poller`] is a mio-style level-triggered readiness multiplexer over
//! one of two kernel interfaces, selectable at construction:
//!
//! * **epoll** (Linux, the default): `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait`, O(ready) per wake — the backend the evented server
//!   runs on at 5–10k connections;
//! * **poll(2)** (any Unix, and the comparison baseline): the fd set is
//!   rebuilt into a `pollfd` array per wait, O(registered) per wake.
//!
//! Both backends share the same semantics: level-triggered readiness,
//! one `Token` per fd chosen by the caller, and a [`Waker`] (eventfd on
//! the epoll backend, a self-pipe on the poll backend) that interrupts a
//! blocked [`Poller::wait`] from any thread.
//!
//! The module also carries the two socket shims the front end needs that
//! std does not expose: `SO_LINGER(0)` for generating a real RST on
//! close (the disconnect-matrix tests), and `RLIMIT_NOFILE` inspection /
//! raising for high-connection load generation.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::RawFd;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

// ---------------------------------------------------------------------------
// Syscall declarations. std links libc; these symbols resolve from there.
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: c_int) -> c_int;
    fn setsockopt(fd: c_int, level: c_int, name: c_int, value: *const c_void, len: u32) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

const O_NONBLOCK: c_int = 0o4000;
const O_CLOEXEC: c_int = 0o2000000;

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

#[cfg(target_os = "linux")]
mod epoll_abi {
    use super::c_int;
    pub const EPOLL_CLOEXEC: c_int = super::O_CLOEXEC;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_NONBLOCK: c_int = super::O_NONBLOCK;
    pub const EFD_CLOEXEC: c_int = super::O_CLOEXEC;
}

/// Matches the kernel's `struct epoll_event`, which is packed on x86-64.
#[cfg(target_os = "linux")]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

/// Caller-chosen identifier attached to a registered fd and carried back
/// on every readiness event. `Token(usize::MAX)` is reserved for the
/// internal waker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

impl Token {
    const WAKER: Token = Token(usize::MAX);
}

/// Which readiness directions to watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The registered token.
    pub token: Token,
    /// Readable (level-triggered: stays set while unread bytes remain).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hung up (`EPOLLHUP`/`EPOLLRDHUP`/`POLLHUP`); a read will
    /// observe EOF.
    pub hangup: bool,
    /// Error condition on the fd; reads/writes will surface it.
    pub error: bool,
}

/// Which kernel interface backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollBackend {
    /// `epoll(7)` — Linux only, O(ready) wakeups.
    #[default]
    Epoll,
    /// `poll(2)` — portable, O(registered) wakeups.
    Poll,
}

impl std::str::FromStr for PollBackend {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "epoll" => Ok(PollBackend::Epoll),
            "poll" => Ok(PollBackend::Poll),
            other => Err(format!("unknown poll backend {other:?} (epoll|poll)")),
        }
    }
}

/// An owned fd that closes on drop (we cannot use std's `OwnedFd`
/// constructors for fds born from raw syscalls without unsafe anyway,
/// so keep the one unsafe point here).
#[derive(Debug)]
struct OwnedRawFd(RawFd);

impl Drop for OwnedRawFd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

#[derive(Debug)]
enum WakeFds {
    /// eventfd: read and write sides are the same fd.
    #[cfg(target_os = "linux")]
    EventFd(OwnedRawFd),
    /// self-pipe: (read end, write end), both nonblocking.
    Pipe(OwnedRawFd, OwnedRawFd),
}

impl WakeFds {
    fn read_fd(&self) -> RawFd {
        match self {
            #[cfg(target_os = "linux")]
            WakeFds::EventFd(fd) => fd.0,
            WakeFds::Pipe(r, _) => r.0,
        }
    }

    fn write_fd(&self) -> RawFd {
        match self {
            #[cfg(target_os = "linux")]
            WakeFds::EventFd(fd) => fd.0,
            WakeFds::Pipe(_, w) => w.0,
        }
    }

    /// Consume pending wakeups so level-triggered polls stop firing.
    fn drain(&self) {
        let fd = self.read_fd();
        let mut buf = [0u8; 16];
        loop {
            let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
            if n <= 0 {
                return; // EAGAIN (drained) or a transient error — either way stop
            }
        }
    }
}

/// Wakes a blocked [`Poller::wait`] from any thread. Cloneable and cheap;
/// safe to call after the poller is gone (the write just fails).
#[derive(Debug, Clone)]
pub struct Waker {
    fds: Arc<WakeFds>,
}

impl Waker {
    /// Interrupt the poller. Coalesces: many wakes before the next
    /// `wait` cost one wakeup.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            // A full pipe / failed write is fine: the poller is already
            // guaranteed to wake.
            let _ = write(
                self.fds.write_fd(),
                (&one as *const u64) as *const c_void,
                8,
            );
        }
    }
}

#[derive(Debug)]
enum BackendState {
    #[cfg(target_os = "linux")]
    Epoll { epfd: OwnedRawFd },
    Poll {
        /// fd → (token, interest); rebuilt into a pollfd array per wait.
        registered: Mutex<HashMap<RawFd, (Token, Interest)>>,
    },
}

/// A level-triggered readiness multiplexer. See the module docs.
#[derive(Debug)]
pub struct Poller {
    backend: BackendState,
    wake: Arc<WakeFds>,
}

fn new_wake_pipe() -> io::Result<WakeFds> {
    let mut fds = [0 as c_int; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok(WakeFds::Pipe(OwnedRawFd(fds[0]), OwnedRawFd(fds[1])))
}

impl Poller {
    /// A poller on the platform default backend (epoll on Linux).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Poller::with_backend(PollBackend::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::with_backend(PollBackend::Poll)
        }
    }

    /// A poller on an explicit backend. `Epoll` fails off Linux.
    pub fn with_backend(backend: PollBackend) -> io::Result<Poller> {
        match backend {
            PollBackend::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    let epfd = OwnedRawFd(cvt(unsafe { epoll_create1(epoll_abi::EPOLL_CLOEXEC) })?);
                    let wake = Arc::new({
                        let fd = cvt(unsafe {
                            eventfd(0, epoll_abi::EFD_NONBLOCK | epoll_abi::EFD_CLOEXEC)
                        })?;
                        WakeFds::EventFd(OwnedRawFd(fd))
                    });
                    let poller = Poller {
                        backend: BackendState::Epoll { epfd },
                        wake,
                    };
                    poller.register(poller.wake.read_fd(), Token::WAKER, Interest::READ)?;
                    Ok(poller)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll backend requires Linux",
                    ))
                }
            }
            PollBackend::Poll => {
                let wake = Arc::new(new_wake_pipe()?);
                let poller = Poller {
                    backend: BackendState::Poll {
                        registered: Mutex::new(HashMap::new()),
                    },
                    wake,
                };
                poller.register(poller.wake.read_fd(), Token::WAKER, Interest::READ)?;
                Ok(poller)
            }
        }
    }

    /// The backend this poller runs on.
    pub fn backend(&self) -> PollBackend {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendState::Epoll { .. } => PollBackend::Epoll,
            BackendState::Poll { .. } => PollBackend::Poll,
        }
    }

    /// A handle that wakes `wait` from any thread.
    pub fn waker(&self) -> Waker {
        Waker {
            fds: self.wake.clone(),
        }
    }

    #[cfg(target_os = "linux")]
    fn epoll_op(
        &self,
        epfd: RawFd,
        op: c_int,
        fd: RawFd,
        token: Token,
        i: Interest,
    ) -> io::Result<()> {
        let mut events = epoll_abi::EPOLLRDHUP;
        if i.readable {
            events |= epoll_abi::EPOLLIN;
        }
        if i.writable {
            events |= epoll_abi::EPOLLOUT;
        }
        let mut ev = EpollEvent {
            events,
            data: token.0 as u64,
        };
        cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Start watching `fd` with `token`. The fd should be nonblocking.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendState::Epoll { epfd } => {
                self.epoll_op(epfd.0, epoll_abi::EPOLL_CTL_ADD, fd, token, interest)
            }
            BackendState::Poll { registered } => {
                registered.lock().insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Change the interest set of a registered fd.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendState::Epoll { epfd } => {
                self.epoll_op(epfd.0, epoll_abi::EPOLL_CTL_MOD, fd, token, interest)
            }
            BackendState::Poll { registered } => {
                registered.lock().insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Stop watching a registered fd. Call before closing it.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendState::Epoll { epfd } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                cvt(unsafe { epoll_ctl(epfd.0, epoll_abi::EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
            }
            BackendState::Poll { registered } => {
                registered.lock().remove(&fd);
                Ok(())
            }
        }
    }

    /// Block until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires. Ready events are appended to
    /// `events` (cleared first); returns how many. Waker wakeups are
    /// consumed internally and produce no event. `None` blocks forever.
    pub fn wait(
        &self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            // Round up so a 100µs deadline doesn't busy-spin at 0ms.
            Some(t) => {
                t.as_millis().min(c_int::MAX as u128) as c_int
                    + if t.subsec_nanos() % 1_000_000 != 0 {
                        1
                    } else {
                        0
                    }
            }
            None => -1,
        };
        match &self.backend {
            #[cfg(target_os = "linux")]
            BackendState::Epoll { epfd } => {
                let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
                let n =
                    unsafe { epoll_wait(epfd.0, raw.as_mut_ptr(), raw.len() as c_int, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0); // EINTR: spurious wake, caller re-loops
                    }
                    return Err(err);
                }
                for ev in raw.iter().take(n as usize) {
                    let bits = ev.events;
                    let data = ev.data; // copy out of the packed struct
                    if data == Token::WAKER.0 as u64 {
                        self.wake.drain();
                        continue;
                    }
                    events.push(PollEvent {
                        token: Token(data as usize),
                        readable: bits & epoll_abi::EPOLLIN != 0,
                        writable: bits & epoll_abi::EPOLLOUT != 0,
                        hangup: bits & (epoll_abi::EPOLLHUP | epoll_abi::EPOLLRDHUP) != 0,
                        error: bits & epoll_abi::EPOLLERR != 0,
                    });
                }
                Ok(events.len())
            }
            BackendState::Poll { registered } => {
                // Snapshot the registry into a pollfd array. O(n) per wait
                // is the documented cost of this backend.
                let snapshot: Vec<(RawFd, Token, Interest)> = registered
                    .lock()
                    .iter()
                    .map(|(&fd, &(t, i))| (fd, t, i))
                    .collect();
                let mut fds: Vec<PollFd> = snapshot
                    .iter()
                    .map(|&(fd, _, i)| PollFd {
                        fd,
                        events: if i.readable { POLLIN } else { 0 }
                            | if i.writable { POLLOUT } else { 0 },
                        revents: 0,
                    })
                    .collect();
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let err = io::Error::last_os_error();
                    if err.kind() == io::ErrorKind::Interrupted {
                        return Ok(0);
                    }
                    return Err(err);
                }
                for (pf, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                    if pf.revents == 0 {
                        continue;
                    }
                    if token == Token::WAKER {
                        self.wake.drain();
                        continue;
                    }
                    events.push(PollEvent {
                        token,
                        readable: pf.revents & POLLIN != 0,
                        writable: pf.revents & POLLOUT != 0,
                        hangup: pf.revents & POLLHUP != 0,
                        error: pf.revents & POLLERR != 0,
                    });
                }
                Ok(events.len())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Socket / rlimit shims
// ---------------------------------------------------------------------------

#[repr(C)]
struct Linger {
    l_onoff: c_int,
    l_linger: c_int,
}

#[cfg(target_os = "linux")]
const SOL_SOCKET: c_int = 1;
#[cfg(target_os = "linux")]
const SO_LINGER: c_int = 13;
#[cfg(not(target_os = "linux"))]
const SOL_SOCKET: c_int = 0xffff;
#[cfg(not(target_os = "linux"))]
const SO_LINGER: c_int = 0x80;

/// Arm `SO_LINGER(0)` on a socket so dropping it sends an RST instead of
/// a FIN — an abrupt disconnect, the way a crashed or yanked client
/// looks to the server. Test plumbing for the disconnect matrix.
pub fn set_linger_rst(stream: &std::net::TcpStream) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    let lg = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    cvt(unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&lg as *const Linger) as *const c_void,
            std::mem::size_of::<Linger>() as u32,
        )
    })
    .map(|_| ())
}

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "macos")]
const RLIMIT_NOFILE: c_int = 8;
#[cfg(not(target_os = "macos"))]
const RLIMIT_NOFILE: c_int = 7;

/// The process's open-file limit as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut rl = RLimit { cur: 0, max: 0 };
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut rl) })?;
    Ok((rl.cur, rl.max))
}

/// Raise the soft open-file limit toward `want` (clamped to the hard
/// limit); returns the resulting soft limit. High-connection load
/// generation calls this before opening thousands of sockets.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= want {
        return Ok(soft);
    }
    let target = want.min(hard);
    let rl = RLimit {
        cur: target,
        max: hard,
    };
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &rl) })?;
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<PollBackend> {
        #[cfg(target_os = "linux")]
        {
            vec![PollBackend::Epoll, PollBackend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![PollBackend::Poll]
        }
    }

    /// A connected nonblocking socket pair over loopback.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    #[test]
    fn readable_after_peer_write_both_backends() {
        use std::os::unix::io::AsRawFd;
        for backend in backends() {
            let poller = Poller::with_backend(backend).expect("poller");
            let (a, mut b) = socket_pair();
            poller
                .register(a.as_raw_fd(), Token(7), Interest::READ)
                .expect("register");
            let mut events = Vec::new();
            // Nothing to read yet.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: no data, no events");
            b.write_all(b"x").expect("peer write");
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}: one readable event");
            assert_eq!(events[0].token, Token(7));
            assert!(events[0].readable);
        }
    }

    #[test]
    fn writable_reported_and_interest_changes_apply() {
        use std::os::unix::io::AsRawFd;
        for backend in backends() {
            let poller = Poller::with_backend(backend).expect("poller");
            let (a, _b) = socket_pair();
            poller
                .register(a.as_raw_fd(), Token(3), Interest::WRITE)
                .expect("register");
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}: fresh socket is writable");
            assert!(events[0].writable);
            // Drop write interest: no more events.
            poller
                .reregister(a.as_raw_fd(), Token(3), Interest::READ)
                .expect("reregister");
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: no events after interest change");
            poller.deregister(a.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn hangup_surfaces_on_peer_close() {
        use std::os::unix::io::AsRawFd;
        for backend in backends() {
            let poller = Poller::with_backend(backend).expect("poller");
            let (a, b) = socket_pair();
            poller
                .register(a.as_raw_fd(), Token(1), Interest::READ)
                .expect("register");
            drop(b);
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .expect("wait");
            assert_eq!(n, 1, "{backend:?}: close wakes the poller");
            // Some kernels report readable-with-EOF, some hangup; either
            // way a read must observe EOF.
            let mut buf = [0u8; 8];
            let mut a = a;
            assert_eq!(a.read(&mut buf).expect("read"), 0, "{backend:?}: EOF");
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).expect("poller");
            let waker = poller.waker();
            let started = Instant::now();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
            });
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(30)))
                .expect("wait");
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "{backend:?}: woke well before the timeout"
            );
            assert_eq!(events.len(), 0, "waker produces no caller event");
            h.join().expect("waker thread");
            // Coalesced wakes drain: the next wait times out quietly.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .expect("wait");
            assert_eq!(n, 0, "{backend:?}: wake was drained");
        }
    }

    #[test]
    fn nofile_limit_is_sane_and_raise_is_monotone() {
        let (soft, hard) = nofile_limit().expect("getrlimit");
        assert!(soft > 0 && hard >= soft);
        let got = raise_nofile_limit(soft).expect("no-op raise");
        assert!(got >= soft);
    }

    #[test]
    fn linger_rst_applies_to_a_live_socket() {
        let (a, _b) = socket_pair();
        set_linger_rst(&a).expect("SO_LINGER(0)");
    }
}
