//! Monotonic time utilities.
//!
//! All latencies in this workspace are nanoseconds measured from a single
//! process-wide [`Instant`] origin, so timestamps taken on different threads
//! are directly comparable and fit in a `u64` (584 years of range).

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic timestamp or duration in nanoseconds.
pub type Nanos = u64;

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the first call to any clock function in this
/// process. Monotonic and comparable across threads.
#[inline]
pub fn now_nanos() -> Nanos {
    origin().elapsed().as_nanos() as Nanos
}

/// Sleep until the given process-relative deadline (in nanoseconds).
///
/// Used by the open-loop harness to pace arrivals. Uses `thread::sleep`,
/// which on Linux has ~50 µs granularity; that is adequate because simulated
/// device times are calibrated to be an order of magnitude larger.
pub fn sleep_until(deadline: Nanos) {
    let now = now_nanos();
    if deadline > now {
        std::thread::sleep(Duration::from_nanos(deadline - now));
    }
}

/// Perform a deterministic amount of CPU work.
///
/// Models the in-function computation the paper attributes to "inherent"
/// variance (e.g. `row_ins_clust_index_entry_low` taking different code
/// paths). One unit is a handful of nanoseconds; callers scale by the work
/// they want to model. The result is returned so the optimizer cannot
/// remove the loop.
#[inline]
pub fn cpu_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 29;
    }
    std::hint::black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let start = now_nanos();
        sleep_until(0);
        assert!(now_nanos() - start < 10_000_000, "should not sleep");
    }

    #[test]
    fn sleep_until_future_deadline_waits() {
        let deadline = now_nanos() + 5_000_000; // 5 ms
        sleep_until(deadline);
        assert!(now_nanos() >= deadline);
    }

    #[test]
    fn cpu_work_scales_and_is_deterministic() {
        assert_eq!(cpu_work(100), cpu_work(100));
        // Different unit counts produce different results (no constant fold).
        assert_ne!(cpu_work(100), cpu_work(101));
    }
}
