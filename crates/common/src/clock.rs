//! Monotonic time utilities, with a pluggable real/virtual mode.
//!
//! All latencies in this workspace are nanoseconds measured from a single
//! process-wide [`Instant`] origin, so timestamps taken on different threads
//! are directly comparable and fit in a `u64` (584 years of range).
//!
//! # Virtual time
//!
//! The deterministic simulation harness (`tpd-harness`) runs with a
//! *virtual* clock: [`now_nanos`] reads a logical counter, [`sleep_until`]
//! jumps the counter to the deadline, and [`advance`] — the primitive the
//! simulated devices call instead of `thread::sleep` — adds the service
//! time to the counter. Simulated I/O then costs zero wall-clock time and
//! the whole run is a pure function of its seed.
//!
//! The virtual clock is **thread-local**, enabled by holding a
//! [`VirtualClock`] guard. This is deliberate: the torture driver is
//! single-threaded (seeded interleaving of logical sessions on one OS
//! thread is what makes runs replayable), and a thread-local switch cannot
//! perturb unrelated tests or benchmark threads running in the same
//! process. Components that must work under simulation therefore do all
//! their timing on the caller's thread (see `RedoLogConfig::manual_flush`).

use std::cell::Cell;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic timestamp or duration in nanoseconds.
pub type Nanos = u64;

thread_local! {
    /// `Some(now)` while this thread runs on virtual time.
    static VIRTUAL_NOW: Cell<Option<Nanos>> = const { Cell::new(None) };
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the first call to any clock function in this
/// process. Monotonic and comparable across threads — unless the calling
/// thread holds a [`VirtualClock`] guard, in which case this is the logical
/// simulation time.
#[inline]
pub fn now_nanos() -> Nanos {
    match VIRTUAL_NOW.with(Cell::get) {
        Some(t) => t,
        None => origin().elapsed().as_nanos() as Nanos,
    }
}

/// Whether the calling thread is on virtual time.
#[inline]
pub fn is_virtual() -> bool {
    VIRTUAL_NOW.with(Cell::get).is_some()
}

/// Sleep until the given process-relative deadline (in nanoseconds).
///
/// Used by the open-loop harness to pace arrivals. Uses `thread::sleep`,
/// which on Linux has ~50 µs granularity; that is adequate because simulated
/// device times are calibrated to be an order of magnitude larger. Under a
/// [`VirtualClock`] the logical clock jumps straight to the deadline.
pub fn sleep_until(deadline: Nanos) {
    if let Some(t) = VIRTUAL_NOW.with(Cell::get) {
        if deadline > t {
            VIRTUAL_NOW.with(|v| v.set(Some(deadline)));
        }
        return;
    }
    let now = now_nanos();
    if deadline > now {
        std::thread::sleep(Duration::from_nanos(deadline - now));
    }
}

/// Let `ns` nanoseconds of *modeled* time pass.
///
/// This is the primitive simulated devices use to charge service time:
/// in real mode it is `thread::sleep` (yielding the CPU, preserving
/// concurrency effects); under a [`VirtualClock`] it advances the logical
/// clock and returns immediately.
pub fn advance(ns: Nanos) {
    if let Some(t) = VIRTUAL_NOW.with(Cell::get) {
        VIRTUAL_NOW.with(|v| v.set(Some(t.saturating_add(ns))));
        return;
    }
    if ns > 0 {
        std::thread::sleep(Duration::from_nanos(ns));
    }
}

/// Guard that switches the *current thread* onto virtual time for its
/// lifetime. Dropping it restores the real clock.
///
/// Nesting is a bug (two simulations would fight over one counter), so
/// enabling twice on the same thread panics.
#[derive(Debug)]
pub struct VirtualClock {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl VirtualClock {
    /// Switch this thread to virtual time, starting the logical clock at
    /// `start` nanoseconds.
    ///
    /// # Panics
    /// If the thread is already on virtual time.
    pub fn enable(start: Nanos) -> VirtualClock {
        VIRTUAL_NOW.with(|v| {
            assert!(
                v.get().is_none(),
                "virtual clock already enabled on this thread"
            );
            v.set(Some(start));
        });
        VirtualClock {
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for VirtualClock {
    fn drop(&mut self) {
        VIRTUAL_NOW.with(|v| v.set(None));
    }
}

/// Perform a deterministic amount of CPU work.
///
/// Models the in-function computation the paper attributes to "inherent"
/// variance (e.g. `row_ins_clust_index_entry_low` taking different code
/// paths). One unit is a handful of nanoseconds; callers scale by the work
/// they want to model. The result is returned so the optimizer cannot
/// remove the loop.
#[inline]
pub fn cpu_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9E37_79B9_7F4A_7C15;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 29;
    }
    std::hint::black_box(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn sleep_until_past_deadline_returns_immediately() {
        let start = now_nanos();
        sleep_until(0);
        assert!(now_nanos() - start < 10_000_000, "should not sleep");
    }

    #[test]
    fn sleep_until_future_deadline_waits() {
        let deadline = now_nanos() + 5_000_000; // 5 ms
        sleep_until(deadline);
        assert!(now_nanos() >= deadline);
    }

    #[test]
    fn cpu_work_scales_and_is_deterministic() {
        assert_eq!(cpu_work(100), cpu_work(100));
        // Different unit counts produce different results (no constant fold).
        assert_ne!(cpu_work(100), cpu_work(101));
    }

    #[test]
    fn virtual_clock_advances_without_sleeping() {
        let wall = Instant::now();
        {
            let _guard = VirtualClock::enable(1_000);
            assert!(is_virtual());
            assert_eq!(now_nanos(), 1_000);
            advance(5_000_000_000); // 5 virtual seconds
            assert_eq!(now_nanos(), 5_000_001_000);
            sleep_until(7_000_000_000);
            assert_eq!(now_nanos(), 7_000_000_000);
            sleep_until(1); // past deadline: no-op
            assert_eq!(now_nanos(), 7_000_000_000);
        }
        assert!(!is_virtual());
        // The 7 virtual seconds cost (much) less than 1 real second.
        assert!(wall.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn virtual_clock_is_thread_local() {
        let _guard = VirtualClock::enable(0);
        let handle = std::thread::spawn(is_virtual);
        assert!(
            !handle.join().expect("spawned thread"),
            "other threads stay real"
        );
    }

    #[test]
    #[should_panic(expected = "already enabled")]
    fn virtual_clock_rejects_nesting() {
        let _a = VirtualClock::enable(0);
        let _b = VirtualClock::enable(0);
    }
}
