//! Property tests for the shared substrate: distribution bounds and
//! moments, latency summaries, and table rendering invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use tpd_common::dist::{nurand, KeyDist, ServiceTime, Zipfian};
use tpd_common::latency::{LatencyRecord, LatencySummary};
use tpd_common::stats::SampleSummary;
use tpd_common::table::TextTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key distribution stays within its key space.
    #[test]
    fn key_dists_stay_in_bounds(n in 1u64..10_000, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let dists = [
            KeyDist::uniform(n),
            KeyDist::hotspot(n, (n / 10).max(1).min(n), 0.9),
        ];
        for d in &dists {
            for _ in 0..200 {
                prop_assert!(d.sample(&mut rng) < n);
            }
            prop_assert_eq!(d.n(), n);
        }
    }

    /// Zipfian keys stay in bounds for any theta in (0, 1).
    #[test]
    fn zipfian_bounds(n in 2u64..5_000, theta in 0.01f64..0.99, seed in any::<u64>()) {
        let z = Zipfian::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// NURand obeys the TPC-C range contract for arbitrary constants.
    #[test]
    fn nurand_in_range(a in 1u64..8192, x in 0u64..100, span in 1u64..10_000, c in any::<u64>(), seed in any::<u64>()) {
        let y = x + span;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = nurand(&mut rng, a, x, y, c);
            prop_assert!((x..=y).contains(&v));
        }
    }

    /// Service-time samples are positive and fixed distributions are exact.
    #[test]
    fn service_times_sane(median in 1_000u64..10_000_000, sigma in 0.05f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = ServiceTime::LogNormal { median, sigma };
        for _ in 0..50 {
            let s = d.sample(&mut rng);
            prop_assert!(s > 0);
        }
        prop_assert_eq!(ServiceTime::Fixed(median).sample(&mut rng), median);
    }

    /// A latency summary's order statistics are consistent regardless of
    /// input ordering.
    #[test]
    fn summary_is_permutation_invariant(mut ms in proptest::collection::vec(0.0f64..1e5, 2..100)) {
        let a = LatencySummary::from_ms(&ms);
        ms.reverse();
        let b = LatencySummary::from_ms(&ms);
        // Streaming moments are order-dependent at the ULP level; order
        // statistics must be exactly equal.
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs()));
        prop_assert!(close(a.mean_ms, b.mean_ms));
        prop_assert!(close(a.variance_ms2, b.variance_ms2));
        prop_assert_eq!(a.p50_ms, b.p50_ms);
        prop_assert_eq!(a.p99_ms, b.p99_ms);
        prop_assert_eq!(a.max_ms, b.max_ms);
        prop_assert!(a.p50_ms <= a.p99_ms + 1e-9);
        prop_assert!(a.p99_ms <= a.p999_ms + 1e-9);
        prop_assert!(a.p999_ms <= a.max_ms + 1e-9);
        prop_assert!(a.variance_ms2 >= -1e-9);
    }

    /// Ratios of a summary against itself are 1 (when variance is nonzero).
    #[test]
    fn self_ratios_are_unity(ms in proptest::collection::vec(0.1f64..1e4, 3..50)) {
        let s = LatencySummary::from_ms(&ms);
        let (m, v, p) = s.ratios_vs(&s);
        prop_assert!((m - 1.0).abs() < 1e-9);
        prop_assert!((p - 1.0).abs() < 1e-9);
        if s.variance_ms2 > 0.0 {
            prop_assert!((v - 1.0).abs() < 1e-9);
        }
    }

    /// Table rendering: row count and column alignment survive arbitrary
    /// cell contents (no panics, every data line has the separator count).
    #[test]
    fn table_renders_any_cells(rows in proptest::collection::vec((".*", ".*"), 0..10)) {
        let mut t = TextTable::new(["first", "second"]);
        for (a, b) in &rows {
            // Newlines would legitimately change line structure; strip them.
            t.row([
                a.replace(['\n', '\r'], " "),
                b.replace(['\n', '\r'], " "),
            ]);
        }
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), 2 + rows.len());
        prop_assert!(lines[1].chars().all(|c| c == '-'), "rule under header");
    }
}

/// Summaries derived from LatencyRecord vectors convert ns -> ms correctly.
#[test]
fn record_summary_units() {
    let records: Vec<LatencyRecord> = (1..=10)
        .map(|i| LatencyRecord {
            txn_type: 0,
            latency: i * 1_000_000,
        })
        .collect();
    let s = LatencySummary::from_records(&records);
    assert!((s.mean_ms - 5.5).abs() < 1e-9);
    assert_eq!(s.max_ms, 10.0);
    let plain = SampleSummary::from_sample(&[1.0, 2.0, 3.0]);
    assert_eq!(plain.count, 3);
}
