//! The workload abstraction shared by the harness and the benchmarks.

use std::sync::Arc;

use rand::rngs::SmallRng;

use tpd_engine::{Engine, EngineError, TxnType};

/// One sampled transaction: its type plus every random parameter it needs,
/// drawn up front so retries re-run identical logical work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpec {
    /// Workload-defined transaction type index.
    pub ty: TxnType,
    /// Flat parameter vector; each workload defines its own layout.
    pub params: Vec<u64>,
}

/// A benchmark workload bound to an engine's schema.
pub trait Workload: Send + Sync {
    /// Workload name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Names of the transaction types, indexed by [`TxnSpec::ty`].
    fn txn_names(&self) -> &'static [&'static str];

    /// Draw the next transaction.
    fn sample(&self, rng: &mut SmallRng) -> TxnSpec;

    /// Execute one transaction. On `Err(Deadlock | LockTimeout)` the engine
    /// has already rolled back; the caller decides whether to retry.
    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError>;

    /// Whether the paper classifies this workload as lock-contended.
    fn is_contended(&self) -> bool;
}

/// Execute with retries on deadlock/timeout (the standard OLTP-Bench
/// behaviour). Returns the number of attempts made (≥ 1) on success.
pub fn execute_with_retries(
    workload: &dyn Workload,
    engine: &Arc<Engine>,
    spec: &TxnSpec,
    max_attempts: usize,
) -> Result<usize, EngineError> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match workload.execute(engine, spec) {
            Ok(()) => return Ok(attempts),
            Err(
                e
                @ (EngineError::Deadlock | EngineError::LockTimeout | EngineError::SnapshotTooOld),
            ) => {
                if attempts >= max_attempts {
                    return Err(e);
                }
            }
            Err(other) => return Err(other),
        }
    }
}

/// The five workloads, for harness dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// TPC-C order processing (highly contended).
    TpcC,
    /// SEATS airline ticketing (highly contended).
    Seats,
    /// TATP caller-location (moderately contended).
    Tatp,
    /// Epinions review site (low contention).
    Epinions,
    /// YCSB key-value microbenchmark (no contention).
    Ycsb,
}

impl WorkloadKind {
    /// All five, in the paper's Table 4 order.
    pub const ALL: [WorkloadKind; 5] = [
        WorkloadKind::TpcC,
        WorkloadKind::Seats,
        WorkloadKind::Tatp,
        WorkloadKind::Epinions,
        WorkloadKind::Ycsb,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::TpcC => "TPCC",
            WorkloadKind::Seats => "SEATS",
            WorkloadKind::Tatp => "TATP",
            WorkloadKind::Epinions => "Epinions",
            WorkloadKind::Ycsb => "YCSB",
        }
    }

    /// Install the workload's schema + data on `engine` and return the
    /// driver. `quick` shrinks data sizes for tests.
    pub fn install(&self, engine: &Arc<Engine>, quick: bool) -> Box<dyn Workload> {
        match self {
            WorkloadKind::TpcC => Box::new(crate::TpcC::install(engine, if quick { 1 } else { 2 })),
            WorkloadKind::Seats => {
                Box::new(crate::Seats::install(engine, if quick { 30 } else { 60 }))
            }
            WorkloadKind::Tatp => {
                Box::new(crate::Tatp::install(engine, if quick { 400 } else { 2000 }))
            }
            WorkloadKind::Epinions => Box::new(crate::Epinions::install(
                engine,
                if quick { 500 } else { 5000 },
            )),
            WorkloadKind::Ycsb => Box::new(crate::Ycsb::install(
                engine,
                if quick { 5_000 } else { 50_000 },
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(WorkloadKind::TpcC.name(), "TPCC");
        assert_eq!(WorkloadKind::ALL.len(), 5);
    }
}
