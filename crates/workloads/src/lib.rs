//! The five OLTP-Bench workloads used in the paper's evaluation
//! (Section 7.1), scaled down to the mini engine:
//!
//! | workload | contention | paper scale | our default scale |
//! |----------|------------|-------------|-------------------|
//! | TPC-C    | high       | 128 / 2 WH  | 2–8 warehouses    |
//! | SEATS    | high       | SF 50       | 200 flights       |
//! | TATP     | medium     | SF 10       | 2 000 subscribers |
//! | Epinions | low        | SF 500      | 5 000 users       |
//! | YCSB     | none       | SF 1200     | 50 000 rows       |
//!
//! Transaction mixes follow the original benchmark specifications; schemas
//! keep the columns that drive contention and footprint, dropping free-text
//! payload. Each workload pre-draws all randomness into a [`TxnSpec`], so a
//! deadlock-aborted transaction retries the *same* logical work.

pub mod epinions;
pub mod seats;
pub mod spec;
pub mod tatp;
pub mod torture;
pub mod tpcc;
pub mod ycsb;

pub use epinions::Epinions;
pub use seats::Seats;
pub use spec::{TxnSpec, Workload, WorkloadKind};
pub use tatp::Tatp;
pub use torture::{install_torture_schema, TortureMix, TortureOp, TortureTxn};
pub use tpcc::TpcC;
pub use ycsb::Ycsb;
