//! Op-level transaction plans for the deterministic torture harness.
//!
//! The regular [`Workload`](crate::Workload) drivers execute a whole
//! transaction behind one call, which is right for throughput benchmarks
//! but useless for a serializability checker: the harness must interleave
//! *statements* from concurrent sessions at seeded points and record every
//! read and write. This module samples transaction shapes — TATP-like
//! (read-then-update the same key, multi-table) and YCSB-like (uniform
//! single-row ops) — as plain data the harness executes one op at a time.
//!
//! Values are deliberately absent from the plans: the harness writes
//! checker-chosen unique values so every version is attributable to the
//! transaction that wrote it.

use rand::rngs::SmallRng;
use rand::Rng;

use std::sync::Arc;

use tpd_engine::{Engine, TableId};

/// One statement of a torture transaction. `table` indexes into the table
/// list returned by [`install_torture_schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TortureOp {
    /// Read a row (shared lock).
    Read {
        /// Table index.
        table: usize,
        /// Row key.
        key: u64,
    },
    /// Read a row the transaction will later update (exclusive lock up
    /// front — the TATP `UpdateSubscriberData` shape).
    ReadForUpdate {
        /// Table index.
        table: usize,
        /// Row key.
        key: u64,
    },
    /// Overwrite a row with a harness-chosen unique value.
    Update {
        /// Table index.
        table: usize,
        /// Row key.
        key: u64,
    },
    /// Append a fresh row (key assigned by the engine).
    Insert {
        /// Table index.
        table: usize,
    },
    /// Read a short contiguous key range (shared locks).
    Scan {
        /// Table index.
        table: usize,
        /// First key of the range.
        start: u64,
        /// Number of keys.
        len: u64,
    },
}

/// A sampled transaction plan: an ordered statement list plus a label for
/// trace output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TortureTxn {
    /// Shape name, shown in failure traces.
    pub label: &'static str,
    /// Statements, executed in order with seeded interleaving between them.
    pub ops: Vec<TortureOp>,
}

/// Mix parameters for the torture sampler.
#[derive(Debug, Clone)]
pub struct TortureMix {
    /// Fraction of TATP-shaped (multi-statement, contended) transactions;
    /// the rest are YCSB-shaped single-row ops.
    pub tatp_fraction: f64,
    /// Keys per table. Small values (≤ 32) force the write-write conflicts
    /// a checker needs to see.
    pub keyspace: u64,
    /// Number of tables (≥ 1).
    pub tables: usize,
    /// Of 10 YCSB draws, how many are single-row reads. The YCSB draw is
    /// `d ∈ [0, 10)`: read if `d < ycsb_read_slots`, update if
    /// `d < ycsb_read_slots + ycsb_update_slots`, else scan — the defaults
    /// (5/4) reproduce the original thresholds draw-for-draw, so default
    /// digests are unchanged.
    pub ycsb_read_slots: u8,
    /// Of 10 YCSB draws, how many are single-row updates.
    pub ycsb_update_slots: u8,
}

impl Default for TortureMix {
    fn default() -> Self {
        TortureMix {
            tatp_fraction: 0.6,
            keyspace: 16,
            tables: 2,
            ycsb_read_slots: 5,
            ycsb_update_slots: 4,
        }
    }
}

impl TortureMix {
    /// A mix over `keyspace` keys with the default shape proportions.
    pub fn with_keyspace(keyspace: u64) -> Self {
        TortureMix {
            keyspace,
            ..Default::default()
        }
    }

    /// YCSB-B-like read-heavy mix: mostly single-row reads and short
    /// scans, a thin stream of TATP shapes to keep write-write conflicts
    /// (and therefore checker edges) in play. This is the mix where a
    /// lock-free read path should drive read-side lock waits to zero.
    pub fn read_heavy() -> Self {
        TortureMix {
            tatp_fraction: 0.15,
            keyspace: 16,
            tables: 2,
            ycsb_read_slots: 8,
            ycsb_update_slots: 1,
        }
    }

    /// Sample one transaction plan.
    pub fn sample(&self, rng: &mut SmallRng) -> TortureTxn {
        debug_assert!(self.tables >= 1 && self.keyspace >= 2);
        let t = rng.gen_range(0..self.tables);
        let k = rng.gen_range(0..self.keyspace);
        if rng.gen_bool(self.tatp_fraction) {
            match rng.gen_range(0..5u8) {
                // UpdateSubscriberData: read a key, then update that same
                // key — the canonical lost-update shape.
                0 | 1 => TortureTxn {
                    label: "read-modify-write",
                    ops: vec![
                        TortureOp::ReadForUpdate { table: t, key: k },
                        TortureOp::Update { table: t, key: k },
                    ],
                },
                // Transfer: update two keys in one table (WW cycles when
                // two sessions order the pair differently).
                2 => {
                    let k2 = (k + 1 + rng.gen_range(0..self.keyspace - 1)) % self.keyspace;
                    TortureTxn {
                        label: "transfer",
                        ops: vec![
                            TortureOp::Update { table: t, key: k },
                            TortureOp::Update { table: t, key: k2 },
                        ],
                    }
                }
                // GetNewDestination: two reads across tables.
                3 => TortureTxn {
                    label: "multi-read",
                    ops: vec![
                        TortureOp::Read { table: t, key: k },
                        TortureOp::Read {
                            table: (t + 1) % self.tables,
                            key: k,
                        },
                    ],
                },
                // InsertCallForwarding: read a parent row, append a child.
                _ => TortureTxn {
                    label: "read-insert",
                    ops: vec![
                        TortureOp::Read { table: t, key: k },
                        TortureOp::Insert {
                            table: (t + 1) % self.tables,
                        },
                    ],
                },
            }
        } else {
            let d = rng.gen_range(0..10u8);
            if d < self.ycsb_read_slots {
                TortureTxn {
                    label: "ycsb-read",
                    ops: vec![TortureOp::Read { table: t, key: k }],
                }
            } else if d < self.ycsb_read_slots + self.ycsb_update_slots {
                TortureTxn {
                    label: "ycsb-update",
                    ops: vec![TortureOp::Update { table: t, key: k }],
                }
            } else {
                let len = rng.gen_range(2u64..=4).min(self.keyspace);
                TortureTxn {
                    label: "ycsb-scan",
                    ops: vec![TortureOp::Scan {
                        table: t,
                        start: k.min(self.keyspace - len),
                        len,
                    }],
                }
            }
        }
    }
}

/// Create the torture tables (`torture_0` … `torture_{n-1}`) and seed every
/// key with value `0`. Returns the table ids in table-index order; insert
/// targets grow past `keyspace`.
pub fn install_torture_schema(engine: &Arc<Engine>, mix: &TortureMix) -> Vec<TableId> {
    (0..mix.tables)
        .map(|i| {
            let tid = engine
                .catalog()
                .create_table(&format!("torture_{i}"), mix.keyspace.max(16));
            let table = engine.catalog().table(tid);
            for k in 0..mix.keyspace {
                table.put(k, vec![0]);
            }
            tid
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampling_is_deterministic() {
        let mix = TortureMix::default();
        let a: Vec<TortureTxn> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| mix.sample(&mut rng)).collect()
        };
        let b: Vec<TortureTxn> = {
            let mut rng = SmallRng::seed_from_u64(42);
            (0..100).map(|_| mix.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn plans_stay_in_bounds() {
        let mix = TortureMix {
            tatp_fraction: 0.5,
            keyspace: 8,
            tables: 3,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..2000 {
            for op in &mix.sample(&mut rng).ops {
                match *op {
                    TortureOp::Read { table, key }
                    | TortureOp::ReadForUpdate { table, key }
                    | TortureOp::Update { table, key } => {
                        assert!(table < 3 && key < 8);
                    }
                    TortureOp::Insert { table } => assert!(table < 3),
                    TortureOp::Scan { table, start, len } => {
                        assert!(table < 3);
                        assert!(start + len <= 8, "scan [{start}, {start}+{len}) overruns");
                    }
                }
            }
        }
    }

    #[test]
    fn read_heavy_mix_is_read_dominated_but_still_writes() {
        let mix = TortureMix::read_heavy();
        let mut rng = SmallRng::seed_from_u64(3);
        let (mut reads, mut writes) = (0usize, 0usize);
        for _ in 0..2000 {
            for op in &mix.sample(&mut rng).ops {
                match op {
                    TortureOp::Read { .. } | TortureOp::Scan { .. } => reads += 1,
                    TortureOp::Update { .. } | TortureOp::Insert { .. } => writes += 1,
                    TortureOp::ReadForUpdate { .. } => {}
                }
            }
        }
        assert!(writes > 50, "writes still present: {writes}");
        assert!(reads > writes * 3, "read-dominated: {reads} vs {writes}");
    }

    #[test]
    fn mix_produces_conflicting_shapes() {
        let mix = TortureMix::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut rmw = 0;
        let mut transfer = 0;
        for _ in 0..1000 {
            match mix.sample(&mut rng).label {
                "read-modify-write" => rmw += 1,
                "transfer" => transfer += 1,
                _ => {}
            }
        }
        assert!(rmw > 100, "rmw shape present: {rmw}");
        assert!(transfer > 50, "transfer shape present: {transfer}");
    }
}
