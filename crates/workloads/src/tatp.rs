//! TATP — the telecom caller-location benchmark (moderately contended).
//!
//! Standard mix: GetSubscriberData 35%, GetNewDestination 10%,
//! GetAccessData 35%, UpdateSubscriberData 2%, UpdateLocation 14%,
//! InsertCallForwarding 2%, DeleteCallForwarding 2%. Keys are uniform over
//! the subscriber space; contention comes from the small scaled-down
//! subscriber count, matching the paper's "contended, but less than TPC-C".

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use tpd_engine::{Engine, EngineError, TableId};

use crate::spec::{TxnSpec, Workload};

/// Access-info rows per subscriber.
const AI_PER_SUB: u64 = 4;
/// Special-facility rows per subscriber.
const SF_PER_SUB: u64 = 4;

const GET_SUBSCRIBER: u8 = 0;
const GET_NEW_DEST: u8 = 1;
const GET_ACCESS: u8 = 2;
const UPD_SUBSCRIBER: u8 = 3;
const UPD_LOCATION: u8 = 4;
const INS_CALL_FWD: u8 = 5;
const DEL_CALL_FWD: u8 = 6;

/// The TATP driver.
#[derive(Debug)]
pub struct Tatp {
    subscribers: u64,
    subscriber: TableId,
    access_info: TableId,
    special_facility: TableId,
    call_forwarding: TableId,
}

impl Tatp {
    /// Create the schema and populate `subscribers` subscribers.
    pub fn install(engine: &Arc<Engine>, subscribers: u64) -> Self {
        assert!(subscribers >= 1);
        let c = engine.catalog();
        let t = Tatp {
            subscribers,
            subscriber: c.create_table("subscriber", 32),
            access_info: c.create_table("access_info", 64),
            special_facility: c.create_table("special_facility", 64),
            call_forwarding: c.create_table("call_forwarding", 64),
        };
        let st = c.table(t.subscriber);
        let at = c.table(t.access_info);
        let ft = c.table(t.special_facility);
        let cf = c.table(t.call_forwarding);
        for s in 0..subscribers {
            st.put(s, vec![s as i64, 1, 0, 0]); // [sid, bit, hex, vlr_location]
            for i in 0..AI_PER_SUB {
                at.put(s * AI_PER_SUB + i, vec![s as i64, i as i64]);
            }
            for i in 0..SF_PER_SUB {
                ft.put(s * SF_PER_SUB + i, vec![s as i64, 1, 0]); // [sid, active, data]
                                                                  // One call-forwarding row per special facility.
                cf.put(s * SF_PER_SUB + i, vec![s as i64, i as i64, 1]); // [sid, sf, active]
            }
        }
        t
    }

    /// Reattach to a schema a previous process installed (file-backend
    /// restart: the checkpoint recreated the tables, so installing again
    /// would double them up). Returns `None` if any table is missing.
    pub fn attach(engine: &Arc<Engine>, subscribers: u64) -> Option<Self> {
        let c = engine.catalog();
        Some(Tatp {
            subscribers,
            subscriber: c.table_by_name("subscriber")?.id,
            access_info: c.table_by_name("access_info")?.id,
            special_facility: c.table_by_name("special_facility")?.id,
            call_forwarding: c.table_by_name("call_forwarding")?.id,
        })
    }

    /// Number of installed subscribers.
    pub fn subscribers(&self) -> u64 {
        self.subscribers
    }

    /// Table ids in install order: `[subscriber, access_info,
    /// special_facility, call_forwarding]` — the schema contract a wire
    /// client needs to address tables by id.
    pub fn table_ids(&self) -> [TableId; 4] {
        [
            self.subscriber,
            self.access_info,
            self.special_facility,
            self.call_forwarding,
        ]
    }
}

impl Workload for Tatp {
    fn name(&self) -> &'static str {
        "TATP"
    }

    fn txn_names(&self) -> &'static [&'static str] {
        &[
            "GetSubscriberData",
            "GetNewDestination",
            "GetAccessData",
            "UpdateSubscriberData",
            "UpdateLocation",
            "InsertCallForwarding",
            "DeleteCallForwarding",
        ]
    }

    fn is_contended(&self) -> bool {
        true
    }

    fn sample(&self, rng: &mut SmallRng) -> TxnSpec {
        let s = rng.gen_range(0..self.subscribers);
        let sf = rng.gen_range(0..SF_PER_SUB);
        let roll = rng.gen_range(0..100);
        let ty = match roll {
            0..=34 => GET_SUBSCRIBER,
            35..=44 => GET_NEW_DEST,
            45..=79 => GET_ACCESS,
            80..=81 => UPD_SUBSCRIBER,
            82..=95 => UPD_LOCATION,
            96..=97 => INS_CALL_FWD,
            _ => DEL_CALL_FWD,
        };
        TxnSpec {
            ty,
            params: vec![s, sf, rng.gen_range(0..1000)],
        }
    }

    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (s, sf, val) = (spec.params[0], spec.params[1], spec.params[2] as i64);
        match spec.ty {
            GET_SUBSCRIBER => {
                let mut txn = engine.begin(GET_SUBSCRIBER);
                txn.read(self.subscriber, s)?;
                txn.commit()
            }
            GET_NEW_DEST => {
                let mut txn = engine.begin(GET_NEW_DEST);
                txn.read(self.special_facility, s * SF_PER_SUB + sf)?;
                txn.read(self.call_forwarding, s * SF_PER_SUB + sf)?;
                txn.commit()
            }
            GET_ACCESS => {
                let mut txn = engine.begin(GET_ACCESS);
                txn.read(self.access_info, s * AI_PER_SUB + (sf % AI_PER_SUB))?;
                txn.commit()
            }
            UPD_SUBSCRIBER => {
                let mut txn = engine.begin(UPD_SUBSCRIBER);
                txn.update(self.subscriber, s, |r| r[1] ^= 1)?;
                txn.update(self.special_facility, s * SF_PER_SUB + sf, |r| {
                    r[2] = val;
                })?;
                txn.commit()
            }
            UPD_LOCATION => {
                let mut txn = engine.begin(UPD_LOCATION);
                txn.update(self.subscriber, s, |r| r[3] = val)?;
                txn.commit()
            }
            INS_CALL_FWD => {
                let mut txn = engine.begin(INS_CALL_FWD);
                txn.read(self.subscriber, s)?;
                txn.read(self.special_facility, s * SF_PER_SUB + sf)?;
                txn.insert(self.call_forwarding, vec![s as i64, sf as i64, 1])?;
                txn.commit()
            }
            DEL_CALL_FWD => {
                // Logical delete: clear the active flag.
                let mut txn = engine.begin(DEL_CALL_FWD);
                txn.update(self.call_forwarding, s * SF_PER_SUB + sf, |r| r[2] = 0)?;
                txn.commit()
            }
            other => panic!("unknown TATP txn type {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::execute_with_retries;
    use rand::SeedableRng;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_engine::EngineConfig;

    fn quick_engine() -> Arc<Engine> {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 9,
        };
        Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(tpd_engine::Policy::Fcfs)
        })
    }

    #[test]
    fn install_sizes() {
        let e = quick_engine();
        let t = Tatp::install(&e, 100);
        assert_eq!(e.catalog().table(t.subscriber).len(), 100);
        assert_eq!(
            e.catalog().table(t.access_info).len() as u64,
            100 * AI_PER_SUB
        );
        assert_eq!(
            e.catalog().table(t.call_forwarding).len() as u64,
            100 * SF_PER_SUB
        );
    }

    #[test]
    fn mix_proportions() {
        let e = quick_engine();
        let t = Tatp::install(&e, 100);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 7];
        for _ in 0..10_000 {
            counts[t.sample(&mut rng).ty as usize] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / 10_000.0;
        assert!((frac(0) - 0.35).abs() < 0.03);
        assert!((frac(2) - 0.35).abs() < 0.03);
        assert!((frac(4) - 0.14).abs() < 0.02);
        // Reads dominate: 80% of the mix.
        assert!(frac(0) + frac(1) + frac(2) > 0.72);
    }

    #[test]
    fn all_types_run() {
        let e = quick_engine();
        let t = Tatp::install(&e, 50);
        for ty in 0..7u8 {
            let spec = TxnSpec {
                ty,
                params: vec![7, 1, 42],
            };
            execute_with_retries(&t, &e, &spec, 5).unwrap_or_else(|err| {
                panic!("type {ty} failed: {err}");
            });
        }
        // UpdateLocation wrote vlr_location.
        assert_eq!(e.catalog().table(t.subscriber).get(7).expect("row")[3], 42);
    }
}
