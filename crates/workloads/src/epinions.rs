//! Epinions — the customer-review-site benchmark (low contention).
//!
//! Users read and write reviews of items and maintain trust relations.
//! Access is uniform over large user/item spaces, so record-lock conflicts
//! are rare — the paper uses it (with YCSB) to show VATS is immaterial
//! without contention.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use tpd_engine::{Engine, EngineError, TableId};

use crate::spec::{TxnSpec, Workload};

const GET_REVIEW_ITEM: u8 = 0;
const GET_REVIEWS_BY_USER: u8 = 1;
const GET_AVG_RATING: u8 = 2;
const UPDATE_USER: u8 = 3;
const UPDATE_ITEM: u8 = 4;
const NEW_REVIEW: u8 = 5;

/// Reviews seeded per item at install time.
const SEED_REVIEWS_PER_ITEM: u64 = 2;

/// The Epinions driver.
#[derive(Debug)]
pub struct Epinions {
    users: u64,
    items: u64,
    user: TableId,
    item: TableId,
    review: TableId,
    trust: TableId,
}

impl Epinions {
    /// Create the schema with `users` users and `users/2` items.
    pub fn install(engine: &Arc<Engine>, users: u64) -> Self {
        assert!(users >= 2);
        let items = (users / 2).max(1);
        let c = engine.catalog();
        let w = Epinions {
            users,
            items,
            user: c.create_table("ep_user", 32),
            item: c.create_table("ep_item", 32),
            review: c.create_table("ep_review", 64),
            trust: c.create_table("ep_trust", 64),
        };
        let ut = c.table(w.user);
        for u in 0..users {
            ut.put(u, vec![0, 0]); // [reviews_written, profile_version]
        }
        let it = c.table(w.item);
        for i in 0..items {
            it.put(i, vec![0, 0]); // [rating_sum, rating_count]
        }
        let rt = c.table(w.review);
        for i in 0..items {
            for r in 0..SEED_REVIEWS_PER_ITEM {
                rt.put(
                    i * SEED_REVIEWS_PER_ITEM + r,
                    vec![i as i64, (i % users) as i64, 3],
                ); // [item, user, rating]
            }
        }
        let tt = c.table(w.trust);
        for u in 0..users {
            tt.put(u, vec![u as i64, ((u + 1) % users) as i64]); // [from, to]
        }
        w
    }
}

impl Workload for Epinions {
    fn name(&self) -> &'static str {
        "Epinions"
    }

    fn txn_names(&self) -> &'static [&'static str] {
        &[
            "GetReviewItemById",
            "GetReviewsByUser",
            "GetAverageRating",
            "UpdateUser",
            "UpdateItemTitle",
            "NewReview",
        ]
    }

    fn is_contended(&self) -> bool {
        false
    }

    fn sample(&self, rng: &mut SmallRng) -> TxnSpec {
        let roll = rng.gen_range(0..100);
        let ty = match roll {
            0..=29 => GET_REVIEW_ITEM,
            30..=49 => GET_REVIEWS_BY_USER,
            50..=69 => GET_AVG_RATING,
            70..=79 => UPDATE_USER,
            80..=89 => UPDATE_ITEM,
            _ => NEW_REVIEW,
        };
        TxnSpec {
            ty,
            params: vec![
                rng.gen_range(0..self.users),
                rng.gen_range(0..self.items),
                rng.gen_range(1..=5),
            ],
        }
    }

    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (u, i, rating) = (spec.params[0], spec.params[1], spec.params[2] as i64);
        match spec.ty {
            GET_REVIEW_ITEM => {
                let mut txn = engine.begin(GET_REVIEW_ITEM);
                txn.read(self.item, i)?;
                let lo = i * SEED_REVIEWS_PER_ITEM;
                txn.scan(self.review, lo, lo + SEED_REVIEWS_PER_ITEM, 10)?;
                txn.commit()
            }
            GET_REVIEWS_BY_USER => {
                let mut txn = engine.begin(GET_REVIEWS_BY_USER);
                txn.read(self.user, u)?;
                let n = engine.catalog().table(self.review).len() as u64;
                let lo = n.saturating_sub(10);
                txn.scan(self.review, lo, n, 10)?;
                txn.commit()
            }
            GET_AVG_RATING => {
                let mut txn = engine.begin(GET_AVG_RATING);
                txn.read(self.trust, u)?;
                txn.read(self.item, i)?;
                txn.commit()
            }
            UPDATE_USER => {
                let mut txn = engine.begin(UPDATE_USER);
                txn.update(self.user, u, |r| r[1] += 1)?;
                txn.commit()
            }
            UPDATE_ITEM => {
                let mut txn = engine.begin(UPDATE_ITEM);
                txn.update(self.item, i, |r| r[1] += 0)?;
                txn.commit()
            }
            NEW_REVIEW => {
                let mut txn = engine.begin(NEW_REVIEW);
                txn.insert(self.review, vec![i as i64, u as i64, rating])?;
                txn.update(self.item, i, |r| {
                    r[0] += rating;
                    r[1] += 1;
                })?;
                txn.update(self.user, u, |r| r[0] += 1)?;
                txn.commit()
            }
            other => panic!("unknown Epinions txn type {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::execute_with_retries;
    use rand::SeedableRng;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_engine::EngineConfig;

    fn quick_engine() -> Arc<Engine> {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 9,
        };
        Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(tpd_engine::Policy::Fcfs)
        })
    }

    #[test]
    fn install_sizes() {
        let e = quick_engine();
        let w = Epinions::install(&e, 100);
        assert_eq!(e.catalog().table(w.user).len(), 100);
        assert_eq!(e.catalog().table(w.item).len(), 50);
        assert_eq!(
            e.catalog().table(w.review).len() as u64,
            50 * SEED_REVIEWS_PER_ITEM
        );
    }

    #[test]
    fn all_types_run_and_review_updates_aggregates() {
        let e = quick_engine();
        let w = Epinions::install(&e, 100);
        for ty in 0..6u8 {
            let spec = TxnSpec {
                ty,
                params: vec![10, 5, 4],
            };
            execute_with_retries(&w, &e, &spec, 5).unwrap_or_else(|err| {
                panic!("type {ty} failed: {err}");
            });
        }
        let item = e.catalog().table(w.item).get(5).expect("item");
        assert_eq!(item[0], 4, "rating sum updated by NewReview");
        assert_eq!(item[1], 1, "rating count updated");
    }

    #[test]
    fn reads_dominate_mix() {
        let e = quick_engine();
        let w = Epinions::install(&e, 100);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut reads = 0;
        for _ in 0..5000 {
            if w.sample(&mut rng).ty <= GET_AVG_RATING {
                reads += 1;
            }
        }
        let frac = reads as f64 / 5000.0;
        assert!(frac > 0.6 && frac < 0.8, "read fraction {frac}");
    }
}
