//! YCSB — the cloud-serving microbenchmark (no contention).
//!
//! Single `usertable`, one operation per transaction, 50/50 read/update
//! with uniform key choice over a large key space (the paper's scale factor
//! 1200 "causing little or no contention"). A Zipfian variant is available
//! for contention ablations.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use tpd_common::dist::KeyDist;
use tpd_engine::{Engine, EngineError, TableId};

use crate::spec::{TxnSpec, Workload};

const READ: u8 = 0;
const UPDATE: u8 = 1;

/// Columns per YCSB row (the standard 10 fields).
const FIELDS: usize = 10;

/// The YCSB driver.
#[derive(Debug)]
pub struct Ycsb {
    records: u64,
    table: TableId,
    keys: KeyDist,
}

impl Ycsb {
    /// Uniform-key YCSB over `records` rows.
    pub fn install(engine: &Arc<Engine>, records: u64) -> Self {
        Self::install_with_dist(engine, records, KeyDist::uniform(records.max(1)))
    }

    /// YCSB with a custom key distribution (e.g. Zipfian for ablations).
    pub fn install_with_dist(engine: &Arc<Engine>, records: u64, keys: KeyDist) -> Self {
        assert!(records >= 1);
        let c = engine.catalog();
        let w = Ycsb {
            records,
            table: c.create_table("usertable", 64),
            keys,
        };
        let t = c.table(w.table);
        for k in 0..records {
            t.put(k, vec![0; FIELDS]);
        }
        w
    }

    /// Number of records.
    pub fn records(&self) -> u64 {
        self.records
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn txn_names(&self) -> &'static [&'static str] {
        &["Read", "Update"]
    }

    fn is_contended(&self) -> bool {
        false
    }

    fn sample(&self, rng: &mut SmallRng) -> TxnSpec {
        let ty = if rng.gen_bool(0.5) { READ } else { UPDATE };
        TxnSpec {
            ty,
            params: vec![
                self.keys.sample(rng),
                rng.gen_range(0..FIELDS as u64),
                rng.gen_range(0..1_000_000),
            ],
        }
    }

    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (key, field, val) = (
            spec.params[0],
            spec.params[1] as usize,
            spec.params[2] as i64,
        );
        match spec.ty {
            READ => {
                let mut txn = engine.begin(READ);
                txn.read(self.table, key)?;
                txn.commit()
            }
            UPDATE => {
                let mut txn = engine.begin(UPDATE);
                txn.update(self.table, key, |r| r[field] = val)?;
                txn.commit()
            }
            other => panic!("unknown YCSB txn type {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_engine::EngineConfig;

    fn quick_engine() -> Arc<Engine> {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 9,
        };
        Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(tpd_engine::Policy::Fcfs)
        })
    }

    #[test]
    fn install_and_ops() {
        let e = quick_engine();
        let w = Ycsb::install(&e, 1000);
        assert_eq!(w.records(), 1000);
        let read = TxnSpec {
            ty: READ,
            params: vec![5, 0, 0],
        };
        w.execute(&e, &read).expect("read");
        let update = TxnSpec {
            ty: UPDATE,
            params: vec![5, 3, 777],
        };
        w.execute(&e, &update).expect("update");
        assert_eq!(e.catalog().table(w.table).get(5).expect("row")[3], 777);
    }

    #[test]
    fn mix_is_half_and_half() {
        let e = quick_engine();
        let w = Ycsb::install(&e, 1000);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut reads = 0;
        for _ in 0..10_000 {
            if w.sample(&mut rng).ty == READ {
                reads += 1;
            }
        }
        let frac = reads as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "read fraction {frac}");
    }

    #[test]
    fn zipfian_variant_skews() {
        let e = quick_engine();
        let w = Ycsb::install_with_dist(&e, 1000, KeyDist::zipfian(1000, 0.99));
        let mut rng = SmallRng::seed_from_u64(7);
        let mut hot = 0;
        for _ in 0..5000 {
            if w.sample(&mut rng).params[0] < 10 {
                hot += 1;
            }
        }
        assert!(hot > 1000, "zipfian hot keys: {hot}");
    }
}
