//! TPC-C (scaled down): the paper's primary workload.
//!
//! Five transaction types with the standard mix (NewOrder 45%, Payment 43%,
//! OrderStatus 4%, Delivery 4%, StockLevel 4%). Contention comes from the
//! same places as in full TPC-C: Payment's warehouse-YTD update (one row
//! per warehouse) and NewOrder's district `next_o_id` increment (ten rows
//! per warehouse).
//!
//! Invariant maintained (and checked in tests): a warehouse's YTD equals
//! the sum of its districts' YTDs, since Payment updates both in one
//! transaction.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use tpd_engine::{Engine, EngineError, TableId};

use crate::spec::{TxnSpec, Workload};

/// Districts per warehouse (TPC-C standard).
pub const DISTRICTS_PER_W: u64 = 10;
/// Customers per district (scaled down from 3000).
pub const CUSTOMERS_PER_D: u64 = 30;
/// Items in the catalog (scaled down from 100k).
pub const ITEMS: u64 = 100;

/// Transaction type indices.
pub const NEW_ORDER: u8 = 0;
/// Payment.
pub const PAYMENT: u8 = 1;
/// Order status (read only).
pub const ORDER_STATUS: u8 = 2;
/// Delivery.
pub const DELIVERY: u8 = 3;
/// Stock level (read only).
pub const STOCK_LEVEL: u8 = 4;

/// The TPC-C driver.
#[derive(Debug)]
pub struct TpcC {
    warehouses: u64,
    customers_per_d: u64,
    items: u64,
    warehouse: TableId,
    district: TableId,
    customer: TableId,
    item: TableId,
    stock: TableId,
    orders: TableId,
    order_line: TableId,
    new_order: TableId,
    history: TableId,
}

impl TpcC {
    /// Create the schema and populate `warehouses` warehouses with the
    /// default scaled-down cardinalities.
    pub fn install(engine: &Arc<Engine>, warehouses: u64) -> Self {
        Self::install_scaled(engine, warehouses, CUSTOMERS_PER_D, ITEMS)
    }

    /// Create the schema with explicit per-warehouse cardinalities — used
    /// by the 2-WH memory-pressure experiments, which need a working set
    /// much larger than the buffer pool.
    pub fn install_scaled(
        engine: &Arc<Engine>,
        warehouses: u64,
        customers_per_d: u64,
        items: u64,
    ) -> Self {
        assert!(warehouses >= 1 && customers_per_d >= 1 && items >= 1);
        let c = engine.catalog();
        let w = TpcC {
            warehouses,
            customers_per_d,
            items,
            warehouse: c.create_table("warehouse", 8),
            district: c.create_table("district", 16),
            customer: c.create_table("customer", 32),
            item: c.create_table("item", 64),
            stock: c.create_table("stock", 64),
            orders: c.create_table("orders", 64),
            order_line: c.create_table("order_line", 64),
            new_order: c.create_table("new_order", 64),
            history: c.create_table("history", 64),
        };
        // Populate directly through the catalog (setup is not measured).
        let wt = c.table(w.warehouse);
        let dt = c.table(w.district);
        let ct = c.table(w.customer);
        for wid in 0..warehouses {
            wt.put(wid, vec![0]); // [ytd]
            for d in 0..DISTRICTS_PER_W {
                dt.put(wid * DISTRICTS_PER_W + d, vec![1, 0]); // [next_o_id, ytd]
                for cu in 0..customers_per_d {
                    let key = (wid * DISTRICTS_PER_W + d) * customers_per_d + cu;
                    ct.put(key, vec![-10, 0, 0]); // [balance, ytd_payment, payment_cnt]
                }
            }
        }
        let it = c.table(w.item);
        for i in 0..items {
            it.put(i, vec![(i as i64 % 90) + 10]); // [price]
        }
        let st = c.table(w.stock);
        for wid in 0..warehouses {
            for i in 0..items {
                st.put(wid * items + i, vec![50, 0, 0]); // [quantity, ytd, order_cnt]
            }
        }
        w
    }

    /// Number of warehouses installed.
    pub fn warehouses(&self) -> u64 {
        self.warehouses
    }

    /// Verify the warehouse-vs-district YTD invariant; panics on violation.
    pub fn check_invariants(&self, engine: &Arc<Engine>) {
        let c = engine.catalog();
        let wt = c.table(self.warehouse);
        let dt = c.table(self.district);
        for wid in 0..self.warehouses {
            let w_ytd = wt.get(wid).expect("warehouse row")[0];
            let d_sum: i64 = (0..DISTRICTS_PER_W)
                .map(|d| dt.get(wid * DISTRICTS_PER_W + d).expect("district")[1])
                .sum();
            assert_eq!(w_ytd, d_sum, "warehouse {wid} YTD mismatch");
        }
    }
}

impl Workload for TpcC {
    fn name(&self) -> &'static str {
        "TPCC"
    }

    fn txn_names(&self) -> &'static [&'static str] {
        &[
            "NewOrder",
            "Payment",
            "OrderStatus",
            "Delivery",
            "StockLevel",
        ]
    }

    fn is_contended(&self) -> bool {
        true
    }

    fn sample(&self, rng: &mut SmallRng) -> TxnSpec {
        let w = rng.gen_range(0..self.warehouses);
        let d = rng.gen_range(0..DISTRICTS_PER_W);
        let cu = rng.gen_range(0..self.customers_per_d);
        let roll = rng.gen_range(0..100);
        if roll < 45 {
            // NewOrder: 5–15 order lines (the paper's Appendix C.1 notes
            // the stock range is 25–65 queries in full TPC-C; scaled).
            let n = rng.gen_range(5..=15u64);
            let mut params = vec![w, d, cu, n];
            for _ in 0..n {
                params.push(rng.gen_range(0..self.items)); // item
                params.push(rng.gen_range(1..=10)); // quantity
            }
            TxnSpec {
                ty: NEW_ORDER,
                params,
            }
        } else if roll < 88 {
            // 15% of payments hit a remote warehouse (TPC-C spec), which
            // spreads X traffic across warehouse rows.
            let pay_w = if self.warehouses > 1 && rng.gen_range(0..100) < 15 {
                (w + rng.gen_range(1..self.warehouses)) % self.warehouses
            } else {
                w
            };
            TxnSpec {
                ty: PAYMENT,
                params: vec![pay_w, d, cu, rng.gen_range(1..=5000)],
            }
        } else if roll < 92 {
            TxnSpec {
                ty: ORDER_STATUS,
                params: vec![w, d, cu],
            }
        } else if roll < 96 {
            TxnSpec {
                ty: DELIVERY,
                params: vec![w, rng.gen_range(1..=10)],
            }
        } else {
            TxnSpec {
                ty: STOCK_LEVEL,
                params: vec![w, d, rng.gen_range(10..=20)],
            }
        }
    }

    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        match spec.ty {
            NEW_ORDER => self.new_order(engine, spec),
            PAYMENT => self.payment(engine, spec),
            ORDER_STATUS => self.order_status(engine, spec),
            DELIVERY => self.delivery(engine, spec),
            STOCK_LEVEL => self.stock_level(engine, spec),
            other => panic!("unknown TPC-C txn type {other}"),
        }
    }
}

impl TpcC {
    fn new_order(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (w, d, cu, n) = (
            spec.params[0],
            spec.params[1],
            spec.params[2],
            spec.params[3],
        );
        let d_key = w * DISTRICTS_PER_W + d;
        let c_key = d_key * self.customers_per_d + cu;
        let mut txn = engine.begin(NEW_ORDER);
        txn.read(self.warehouse, w)?;
        // District next_o_id increment: the NewOrder hotspot.
        let district = txn.read_for_update(self.district, d_key)?;
        let o_id = district[0];
        txn.update(self.district, d_key, |r| r[0] += 1)?;
        txn.read(self.customer, c_key)?;
        let mut total = 0i64;
        for line in 0..n {
            let item = spec.params[4 + 2 * line as usize];
            let qty = spec.params[5 + 2 * line as usize] as i64;
            let price = txn.read(self.item, item)?[0];
            txn.update(self.stock, w * self.items + item, |r| {
                r[0] -= qty;
                if r[0] < 10 {
                    r[0] += 91; // restock rule
                }
                r[1] += qty;
                r[2] += 1;
            })?;
            total += price * qty;
            txn.insert(self.order_line, vec![o_id, item as i64, qty, price * qty])?;
        }
        let o_key = txn.insert(self.orders, vec![c_key as i64, n as i64, -1, total])?;
        txn.insert(self.new_order, vec![o_key as i64, d_key as i64])?;
        txn.commit()
    }

    fn payment(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (w, d, cu, amount) = (
            spec.params[0],
            spec.params[1],
            spec.params[2],
            spec.params[3] as i64,
        );
        let d_key = w * DISTRICTS_PER_W + d;
        let c_key = d_key * self.customers_per_d + cu;
        let mut txn = engine.begin(PAYMENT);
        // Warehouse YTD: the Payment hotspot (one row per warehouse).
        txn.update(self.warehouse, w, |r| r[0] += amount)?;
        txn.update(self.district, d_key, |r| r[1] += amount)?;
        txn.update(self.customer, c_key, |r| {
            r[0] -= amount;
            r[1] += amount;
            r[2] += 1;
        })?;
        txn.insert(self.history, vec![c_key as i64, amount])?;
        txn.commit()
    }

    fn order_status(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (w, d, cu) = (spec.params[0], spec.params[1], spec.params[2]);
        let c_key = (w * DISTRICTS_PER_W + d) * self.customers_per_d + cu;
        let mut txn = engine.begin(ORDER_STATUS);
        txn.read(self.customer, c_key)?;
        // Most recent orders (clustered keys are insertion-ordered).
        let hi = engine.catalog().table(self.orders).len() as u64;
        let lo = hi.saturating_sub(20);
        txn.scan(self.orders, lo, hi, 20)?;
        txn.commit()
    }

    fn delivery(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (w, carrier) = (spec.params[0], spec.params[1] as i64);
        let mut txn = engine.begin(DELIVERY);
        // Oldest undelivered orders, approximated by the oldest new_order
        // rows; mark one order per district delivered.
        let no_table = engine.catalog().table(self.new_order);
        let oldest = no_table.range_keys(0, u64::MAX, DISTRICTS_PER_W as usize);
        for no_key in oldest {
            let row = match txn.read(self.new_order, no_key) {
                Ok(r) => r,
                Err(EngineError::RowNotFound { .. }) => continue,
                Err(e) => return Err(e),
            };
            let o_key = row[0] as u64;
            match txn.update(self.orders, o_key, |r| r[2] = carrier) {
                Ok(()) | Err(EngineError::RowNotFound { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        // Credit one customer per district.
        for d in 0..DISTRICTS_PER_W {
            let c_key = (w * DISTRICTS_PER_W + d) * self.customers_per_d
                + (carrier as u64 % self.customers_per_d);
            txn.update(self.customer, c_key, |r| r[0] += 1)?;
        }
        txn.commit()
    }

    fn stock_level(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (w, d, threshold) = (spec.params[0], spec.params[1], spec.params[2] as i64);
        let d_key = w * DISTRICTS_PER_W + d;
        let mut txn = engine.begin(STOCK_LEVEL);
        txn.read(self.district, d_key)?;
        let lo = w * self.items;
        let rows = txn.scan(self.stock, lo, lo + 20, 20)?;
        let _low = rows.iter().filter(|(_, r)| r[0] < threshold).count();
        txn.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::execute_with_retries;
    use rand::SeedableRng;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_engine::EngineConfig;

    fn quick_engine() -> Arc<Engine> {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 9,
        };
        Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(tpd_engine::Policy::Fcfs)
        })
    }

    #[test]
    fn install_populates_schema() {
        let e = quick_engine();
        let w = TpcC::install(&e, 2);
        let c = e.catalog();
        assert_eq!(c.table(w.warehouse).len(), 2);
        assert_eq!(c.table(w.district).len(), 20);
        assert_eq!(c.table(w.customer).len() as u64, 2 * 10 * CUSTOMERS_PER_D);
        assert_eq!(c.table(w.item).len() as u64, ITEMS);
        assert_eq!(c.table(w.stock).len() as u64, 2 * ITEMS);
    }

    #[test]
    fn mix_is_roughly_standard() {
        let e = quick_engine();
        let w = TpcC::install(&e, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[w.sample(&mut rng).ty as usize] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / 10_000.0;
        assert!((frac(0) - 0.45).abs() < 0.03, "NewOrder {}", frac(0));
        assert!((frac(1) - 0.43).abs() < 0.03, "Payment {}", frac(1));
        for i in 2..5 {
            assert!((frac(i) - 0.04).abs() < 0.02, "type {i} = {}", frac(i));
        }
    }

    #[test]
    fn each_type_executes() {
        let e = quick_engine();
        let w = TpcC::install(&e, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        let mut tries = 0;
        while !seen.iter().all(|&s| s) && tries < 500 {
            let spec = w.sample(&mut rng);
            execute_with_retries(&w, &e, &spec, 5).expect("txn");
            seen[spec.ty as usize] = true;
            tries += 1;
        }
        assert!(seen.iter().all(|&s| s), "seen: {seen:?}");
    }

    #[test]
    fn ytd_invariant_holds_under_concurrency() {
        let e = quick_engine();
        let w = Arc::new(TpcC::install(&e, 2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let e = e.clone();
            let w = w.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                for _ in 0..25 {
                    // Payments only: they drive the invariant.
                    let wid = rng.gen_range(0..2);
                    let spec = TxnSpec {
                        ty: PAYMENT,
                        params: vec![wid, rng.gen_range(0..10), rng.gen_range(0..30), 100],
                    };
                    let _ = execute_with_retries(w.as_ref(), &e, &spec, 10);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        w.check_invariants(&e);
    }

    #[test]
    fn new_order_advances_district_counter() {
        let e = quick_engine();
        let w = TpcC::install(&e, 1);
        let before = e.catalog().table(w.district).get(0).expect("district")[0];
        let spec = TxnSpec {
            ty: NEW_ORDER,
            params: vec![0, 0, 0, 2, 1, 1, 2, 1],
        };
        w.execute(&e, &spec).expect("new order");
        let after = e.catalog().table(w.district).get(0).expect("district")[0];
        assert_eq!(after, before + 1);
        assert_eq!(e.catalog().table(w.order_line).len(), 2);
        assert_eq!(e.catalog().table(w.orders).len(), 1);
    }
}
