//! SEATS — the airline ticketing benchmark (highly contended).
//!
//! Customers search flights and make reservations; the contention hotspot
//! is the per-flight seat counter that every NewReservation decrements
//! exclusively. With a scaled-down flight table the hotspot is intense,
//! matching the paper's "scale factor 50, leading to a highly contended
//! workload".

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;

use tpd_engine::{Engine, EngineError, TableId};

use crate::spec::{TxnSpec, Workload};

const FIND_FLIGHTS: u8 = 0;
const FIND_OPEN_SEATS: u8 = 1;
const NEW_RESERVATION: u8 = 2;
const UPDATE_CUSTOMER: u8 = 3;
const UPDATE_RESERVATION: u8 = 4;

/// Customers in the scaled-down database.
const CUSTOMERS: u64 = 2000;

/// The SEATS driver.
#[derive(Debug)]
pub struct Seats {
    flights: u64,
    flight: TableId,
    customer: TableId,
    reservation: TableId,
}

impl Seats {
    /// Create the schema and populate `flights` flights.
    pub fn install(engine: &Arc<Engine>, flights: u64) -> Self {
        assert!(flights >= 1);
        let c = engine.catalog();
        let s = Seats {
            flights,
            flight: c.create_table("flight", 16),
            customer: c.create_table("seats_customer", 32),
            reservation: c.create_table("reservation", 64),
        };
        let ft = c.table(s.flight);
        for f in 0..flights {
            ft.put(f, vec![150, 0, (f % 24) as i64]); // [seats_left, reserved, depart_hour]
        }
        let ct = c.table(s.customer);
        for cu in 0..CUSTOMERS {
            ct.put(cu, vec![0, 0]); // [reservations, balance]
        }
        s
    }
}

impl Workload for Seats {
    fn name(&self) -> &'static str {
        "SEATS"
    }

    fn txn_names(&self) -> &'static [&'static str] {
        &[
            "FindFlights",
            "FindOpenSeats",
            "NewReservation",
            "UpdateCustomer",
            "UpdateReservation",
        ]
    }

    fn is_contended(&self) -> bool {
        true
    }

    fn sample(&self, rng: &mut SmallRng) -> TxnSpec {
        // Mix follows the SEATS specification's profile.
        let roll = rng.gen_range(0..100);
        let ty = match roll {
            0..=9 => FIND_FLIGHTS,
            10..=44 => FIND_OPEN_SEATS,
            45..=64 => NEW_RESERVATION,
            65..=79 => UPDATE_CUSTOMER,
            _ => UPDATE_RESERVATION,
        };
        // Popular flights: quadratic skew toward low flight ids.
        let u: f64 = rng.gen();
        let flight = ((u * u) * self.flights as f64) as u64;
        TxnSpec {
            ty,
            params: vec![
                flight.min(self.flights - 1),
                rng.gen_range(0..CUSTOMERS),
                rng.gen_range(0..1000),
            ],
        }
    }

    fn execute(&self, engine: &Arc<Engine>, spec: &TxnSpec) -> Result<(), EngineError> {
        let (f, cu, val) = (spec.params[0], spec.params[1], spec.params[2] as i64);
        match spec.ty {
            FIND_FLIGHTS => {
                let mut txn = engine.begin(FIND_FLIGHTS);
                let lo = f.saturating_sub(5);
                txn.scan(self.flight, lo, lo + 10, 10)?;
                txn.commit()
            }
            FIND_OPEN_SEATS => {
                let mut txn = engine.begin(FIND_OPEN_SEATS);
                txn.read(self.flight, f)?;
                txn.commit()
            }
            NEW_RESERVATION => {
                let mut txn = engine.begin(NEW_RESERVATION);
                // Like the real benchmark: check availability under a
                // shared lock first, do the bookkeeping, then upgrade to
                // exclusive to claim the seat. The S->X upgrade on a hot
                // flight is SEATS's contention signature.
                let flight = txn.read(self.flight, f)?;
                if flight[0] > 0 {
                    txn.read(self.customer, cu)?;
                    txn.insert(self.reservation, vec![f as i64, cu as i64, val])?;
                    txn.update(self.flight, f, |r| {
                        if r[0] > 0 {
                            r[0] -= 1;
                            r[1] += 1;
                        }
                    })?;
                    txn.update(self.customer, cu, |r| r[0] += 1)?;
                }
                txn.commit()
            }
            UPDATE_CUSTOMER => {
                let mut txn = engine.begin(UPDATE_CUSTOMER);
                txn.read(self.customer, cu)?;
                txn.update(self.customer, cu, |r| r[1] += val)?;
                txn.commit()
            }
            UPDATE_RESERVATION => {
                let mut txn = engine.begin(UPDATE_RESERVATION);
                let n = engine.catalog().table(self.reservation).len() as u64;
                if n > 0 {
                    let key = val as u64 % n;
                    match txn.update(self.reservation, key, |r| r[2] = val) {
                        Ok(()) | Err(EngineError::RowNotFound { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                txn.commit()
            }
            other => panic!("unknown SEATS txn type {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::execute_with_retries;
    use rand::SeedableRng;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;
    use tpd_engine::EngineConfig;

    fn quick_engine() -> Arc<Engine> {
        let quick = DiskConfig {
            service: ServiceTime::Fixed(10_000),
            ns_per_byte: 0.0,
            seed: 9,
        };
        Engine::new(EngineConfig {
            data_disk: quick.clone(),
            log_disks: vec![quick],
            ..EngineConfig::mysql(tpd_engine::Policy::Fcfs)
        })
    }

    #[test]
    fn install_and_reserve() {
        let e = quick_engine();
        let s = Seats::install(&e, 10);
        let spec = TxnSpec {
            ty: NEW_RESERVATION,
            params: vec![3, 17, 500],
        };
        s.execute(&e, &spec).expect("reservation");
        let flight = e.catalog().table(s.flight).get(3).expect("flight");
        assert_eq!(flight[0], 149);
        assert_eq!(flight[1], 1);
        assert_eq!(e.catalog().table(s.reservation).len(), 1);
    }

    #[test]
    fn skew_prefers_low_flight_ids() {
        let e = quick_engine();
        let s = Seats::install(&e, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut low = 0;
        for _ in 0..5000 {
            if s.sample(&mut rng).params[0] < 25 {
                low += 1;
            }
        }
        // Quadratic skew: P(flight < 25) = sqrt(0.25) = 0.5.
        let frac = low as f64 / 5000.0;
        assert!(frac > 0.42 && frac < 0.58, "frac = {frac}");
    }

    #[test]
    fn all_types_run() {
        let e = quick_engine();
        let s = Seats::install(&e, 10);
        for ty in 0..5u8 {
            let spec = TxnSpec {
                ty,
                params: vec![2, 5, 7],
            };
            execute_with_retries(&s, &e, &spec, 5).unwrap_or_else(|err| {
                panic!("type {ty} failed: {err}");
            });
        }
    }

    #[test]
    fn seat_counter_never_negative_under_concurrency() {
        let e = quick_engine();
        let s = Arc::new(Seats::install(&e, 2));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let e = e.clone();
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                for _ in 0..30 {
                    let spec = TxnSpec {
                        ty: NEW_RESERVATION,
                        params: vec![0, rng.gen_range(0..CUSTOMERS), 1],
                    };
                    let _ = execute_with_retries(s.as_ref(), &e, &spec, 10);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let flight = e.catalog().table(s.flight).get(0).expect("flight");
        assert!(flight[0] >= 0, "seats_left = {}", flight[0]);
        assert_eq!(flight[0] + flight[1], 150, "seats conserved");
    }
}
