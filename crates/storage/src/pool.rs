//! The buffer pool.
//!
//! Layout follows InnoDB 5.6, the configuration the paper profiled:
//!
//! * a **page hash** (`RwLock<HashMap>`) mapping page id → frame, touched by
//!   every access;
//! * the **buf_pool mutex** guarding the LRU list, taken when a page must be
//!   *made young* (a hit in the old sublist) and around eviction — the
//!   paper's `buf_pool_mutex_enter`, its #1 variance source under memory
//!   pressure (Table 1, 2-WH);
//! * miss I/O performed *outside* the mutex, with an in-flight table so
//!   concurrent requests for the same page coalesce.
//!
//! [`MutexPolicy::Llu`] implements the paper's Lazy LRU Update (Section 6.1):
//! bound the wait for the mutex on the make-young path; on failure, defer
//! the reorder to a thread-local backlog that is drained on the next
//! successful acquisition.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use tpd_common::clock::{cpu_work, now_nanos};
use tpd_common::disk::SimDisk;
use tpd_metrics::{Histogram, HistogramSnapshot};
use tpd_profiler::{FuncId, Profiler};

use crate::lru::LruList;

/// A page identifier. Engines map (table, row-range) onto these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// How `buf_pool_mutex_enter` behaves on the make-young path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutexPolicy {
    /// Block until acquired (stock MySQL 5.6).
    Blocking,
    /// Lazy LRU Update: spin up to `spin_budget`; on failure defer the
    /// update to a thread-local backlog (the paper used 0.01 ms).
    Llu {
        /// Maximum time to wait for the LRU mutex before deferring.
        spin_budget: Duration,
    },
}

/// Buffer pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of frames (pages held in memory).
    pub frames: usize,
    /// Old-sublist fraction numerator (MySQL default 3).
    pub old_num: usize,
    /// Old-sublist fraction denominator (MySQL default 8).
    pub old_den: usize,
    /// Page size in bytes (for disk transfer accounting).
    pub page_bytes: u64,
    /// Mutex policy on the make-young path.
    pub mutex_policy: MutexPolicy,
    /// CPU work units charged per logical page access (models row
    /// processing on the page).
    pub access_work: u64,
    /// InnoDB 5.6 behaviour: when the eviction victim is dirty, write it
    /// back *while holding the pool mutex* (the single-page-flush convoy
    /// the Percona multi-threaded LRU flusher later fixed — exactly the
    /// pathology behind the paper's 2-WH `buf_pool_mutex_enter` finding).
    pub writeback_under_mutex: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            frames: 1024,
            old_num: 3,
            old_den: 8,
            page_bytes: 16 * 1024,
            mutex_policy: MutexPolicy::Blocking,
            access_work: 64,
            writeback_under_mutex: true,
        }
    }
}

/// Profiler hookup for the pool's paper-named probe sites.
#[derive(Debug, Clone)]
pub struct PoolProbes {
    /// The engine's profiler.
    pub profiler: Arc<Profiler>,
    /// `buf_pool_mutex_enter` — wait to acquire the LRU mutex.
    pub mutex_enter: FuncId,
    /// Page read/write I/O performed on a miss.
    pub page_io: FuncId,
}

/// Cumulative pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from memory.
    pub hits: u64,
    /// Accesses requiring a disk read.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Dirty pages written back during eviction.
    pub dirty_writebacks: u64,
    /// Successful make-young moves.
    pub make_young: u64,
    /// LLU: updates deferred because the mutex was busy.
    pub deferred_updates: u64,
    /// LLU: deferred updates later applied.
    pub backlog_applied: u64,
    /// Total ns spent waiting for the LRU mutex (make-young path).
    pub mutex_wait_ns: u64,
}

/// Result of a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Served from the pool.
    Hit,
    /// Required a disk read (and possibly an eviction).
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    page: Option<PageId>,
    dirty: bool,
    io_busy: bool,
}

#[derive(Debug)]
struct LruState {
    lru: LruList,
    frames: Vec<Frame>,
    free: Vec<usize>,
}

#[derive(Debug, Default)]
struct IoWait {
    done: Mutex<bool>,
    cv: Condvar,
}

thread_local! {
    /// LLU backlogs, per pool instance (keyed by pool id).
    static BACKLOG: RefCell<HashMap<u64, Vec<PageId>>> = RefCell::new(HashMap::new());
}

static POOL_IDS: AtomicU64 = AtomicU64::new(0);

/// The buffer pool. See module docs.
#[derive(Debug)]
pub struct BufferPool {
    id: u64,
    config: PoolConfig,
    disk: Arc<SimDisk>,
    page_table: RwLock<HashMap<PageId, usize>>,
    lru: Mutex<LruState>,
    /// Shared view of the LRU old-flags for the mutex-free hit path.
    old_flags: std::sync::Arc<Vec<std::sync::atomic::AtomicBool>>,
    in_flight: Mutex<HashMap<PageId, Arc<IoWait>>>,
    probes: Option<PoolProbes>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    dirty_writebacks: AtomicU64,
    make_young_n: AtomicU64,
    deferred: AtomicU64,
    backlog_applied: AtomicU64,
    /// LLU backlog depth observed at each drain (pages deferred while the
    /// LRU mutex was contended).
    backlog_depth_hist: Histogram,
    mutex_wait_ns: AtomicU64,
    /// Debug-build frame pin counts: incremented while a frame's contents
    /// are being used, decremented after. The invariant checked is that a
    /// count never goes negative (an unpin without a matching pin would
    /// mean a frame was reused while still referenced). Compiled out of
    /// release builds.
    #[cfg(debug_assertions)]
    pins: Vec<std::sync::atomic::AtomicI64>,
}

impl BufferPool {
    /// A pool backed by `disk`, optionally instrumented.
    pub fn new(config: PoolConfig, disk: Arc<SimDisk>, probes: Option<PoolProbes>) -> Self {
        assert!(config.frames >= 2, "pool needs at least two frames");
        #[cfg(debug_assertions)]
        let nframes = config.frames;
        let frames = vec![
            Frame {
                page: None,
                dirty: false,
                io_busy: false,
            };
            config.frames
        ];
        let lru_list = LruList::new(config.frames, config.old_num, config.old_den);
        let old_flags = lru_list.old_flags();
        BufferPool {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            page_table: RwLock::new(HashMap::with_capacity(config.frames * 2)),
            lru: Mutex::new(LruState {
                lru: lru_list,
                frames,
                free: (0..config.frames).rev().collect(),
            }),
            old_flags,
            in_flight: Mutex::new(HashMap::new()),
            disk,
            probes,
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            dirty_writebacks: AtomicU64::new(0),
            make_young_n: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            backlog_applied: AtomicU64::new(0),
            backlog_depth_hist: Histogram::new(),
            mutex_wait_ns: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            pins: (0..nframes)
                .map(|_| std::sync::atomic::AtomicI64::new(0))
                .collect(),
        }
    }

    /// Pin a frame (debug builds only): record that its contents are in use.
    #[inline]
    fn debug_pin(&self, f: usize) {
        #[cfg(debug_assertions)]
        {
            let now = self.pins[f].fetch_add(1, Ordering::SeqCst) + 1;
            debug_assert!(now >= 1, "frame {f} pin count corrupted: {now}");
        }
        #[cfg(not(debug_assertions))]
        let _ = f;
    }

    /// Unpin a frame (debug builds only): the count must never go negative.
    #[inline]
    fn debug_unpin(&self, f: usize) {
        #[cfg(debug_assertions)]
        {
            let now = self.pins[f].fetch_sub(1, Ordering::SeqCst) - 1;
            debug_assert!(now >= 0, "frame {f} pin count went negative: {now}");
        }
        #[cfg(not(debug_assertions))]
        let _ = f;
    }

    /// The pool configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Access a page: read (`write = false`) or modify (`write = true`).
    ///
    /// Blocks for disk I/O on a miss. Charges `access_work` CPU to model
    /// in-page row processing.
    pub fn access(&self, pid: PageId, write: bool) -> AccessKind {
        loop {
            // Fast path: page-hash lookup (InnoDB's page_hash rw-latch).
            let frame = self.page_table.read().get(&pid).copied();
            if let Some(f) = frame {
                if self.try_hit(pid, f, write) {
                    self.debug_pin(f);
                    cpu_work(self.config.access_work);
                    self.debug_unpin(f);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return AccessKind::Hit;
                }
                // Frame was concurrently evicted; retry as a miss.
                continue;
            }
            match self.miss(pid, write) {
                Some(kind) => {
                    cpu_work(self.config.access_work);
                    return kind;
                }
                None => continue, // coalesced with another reader; retry
            }
        }
    }

    /// Handle a hit: mark dirty and make young if needed. Returns false if
    /// the frame no longer holds `pid` (lost a race with eviction).
    ///
    /// Clean hits on *young* pages are entirely mutex-free (a racy flag
    /// read), exactly the property that makes stock InnoDB fine until the
    /// working set spills into the old sublist.
    fn try_hit(&self, pid: PageId, f: usize, write: bool) -> bool {
        if write {
            // Dirty marking needs the frame, which lives under the mutex.
            let mut state = self.lru.lock();
            if state.frames[f].page != Some(pid) || state.frames[f].io_busy {
                return false;
            }
            state.frames[f].dirty = true;
        }
        if self.old_flags[f].load(Ordering::Relaxed) {
            self.make_young_path(pid, f);
        }
        true
    }

    /// The `buf_pool_mutex_enter` + `buf_page_make_young` path, with the
    /// configured mutex policy.
    fn make_young_path(&self, pid: PageId, f: usize) {
        let start = now_nanos();
        match self.config.mutex_policy {
            MutexPolicy::Blocking => {
                let mut state = self.lru.lock();
                self.record_mutex_wait(start);
                if state.frames[f].page == Some(pid) && state.lru.make_young(f) {
                    self.make_young_n.fetch_add(1, Ordering::Relaxed);
                }
            }
            MutexPolicy::Llu { spin_budget } => {
                match self.lru.try_lock_for(spin_budget) {
                    Some(mut state) => {
                        self.record_mutex_wait(start);
                        // Drain this thread's backlog first (paper: process
                        // deferred pages before the triggering page).
                        let backlog =
                            BACKLOG.with(|b| b.borrow_mut().remove(&self.id).unwrap_or_default());
                        self.backlog_depth_hist.record(backlog.len() as u64);
                        for bpid in backlog {
                            let bf = self.page_table.read().get(&bpid).copied();
                            if let Some(bf) = bf {
                                if state.frames[bf].page == Some(bpid) && state.lru.make_young(bf) {
                                    self.backlog_applied.fetch_add(1, Ordering::Relaxed);
                                    self.make_young_n.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        if state.frames[f].page == Some(pid) && state.lru.make_young(f) {
                            self.make_young_n.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    None => {
                        self.record_mutex_wait(start);
                        BACKLOG.with(|b| {
                            b.borrow_mut().entry(self.id).or_default().push(pid);
                        });
                        self.deferred.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn record_mutex_wait(&self, start: u64) {
        let waited = now_nanos() - start;
        self.mutex_wait_ns.fetch_add(waited, Ordering::Relaxed);
        if let Some(p) = &self.probes {
            p.profiler.add_event(p.mutex_enter, start, waited);
        }
    }

    /// Handle a miss. Returns `None` when the caller should retry (another
    /// thread is reading the page in).
    fn miss(&self, pid: PageId, write: bool) -> Option<AccessKind> {
        // Coalesce concurrent reads of the same page.
        let waiter: Arc<IoWait>;
        {
            let mut inflight = self.in_flight.lock();
            if self.page_table.read().contains_key(&pid) {
                return None; // installed while we took the lock
            }
            if let Some(w) = inflight.get(&pid) {
                // Another thread is reading this page in; wait for it
                // (InnoDB's buf_wait_for_read) and attribute the wait as
                // page I/O.
                let w = w.clone();
                drop(inflight);
                let wait_start = now_nanos();
                let mut done = w.done.lock();
                while !*done {
                    w.cv.wait(&mut done);
                }
                drop(done);
                if let Some(p) = &self.probes {
                    p.profiler
                        .add_event(p.page_io, wait_start, now_nanos() - wait_start);
                }
                return None; // now resident; retry to count as hit
            }
            waiter = Arc::new(IoWait::default());
            inflight.insert(pid, waiter.clone());
        }

        // Obtain a frame: free list or evict the LRU tail.
        let (frame, writeback) = self.obtain_frame(pid);
        self.debug_pin(frame);

        // Disk I/O outside the mutex.
        let io_start = now_nanos();
        if let Some(old_pid) = writeback {
            self.disk.write(self.config.page_bytes);
            self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
            let _ = old_pid;
        }
        self.disk.read(self.config.page_bytes);
        if let Some(p) = &self.probes {
            p.profiler
                .add_event(p.page_io, io_start, now_nanos() - io_start);
        }

        // Publish: LRU insert then page-hash insert.
        {
            let mut state = self.lru.lock();
            state.frames[frame].io_busy = false;
            state.frames[frame].dirty = write;
            state.lru.insert_old_head(frame);
        }
        self.page_table.write().insert(pid, frame);
        {
            let mut inflight = self.in_flight.lock();
            inflight.remove(&pid);
        }
        let mut done = waiter.done.lock();
        *done = true;
        waiter.cv.notify_all();
        drop(done);
        self.debug_unpin(frame);

        self.misses.fetch_add(1, Ordering::Relaxed);
        Some(AccessKind::Miss)
    }

    /// Pick a victim frame for `pid`: from the free list, else evict the
    /// coldest non-busy page. Returns `(frame, dirty_page_to_writeback)`.
    fn obtain_frame(&self, pid: PageId) -> (usize, Option<PageId>) {
        loop {
            {
                // This is also a `buf_pool_mutex_enter` call site: misses
                // convoy here behind make-young reorders and (5.6-style)
                // single-page flushes.
                let start = now_nanos();
                let mut state = self.lru.lock();
                self.record_mutex_wait(start);
                if let Some(f) = state.free.pop() {
                    state.frames[f] = Frame {
                        page: Some(pid),
                        dirty: false,
                        io_busy: true,
                    };
                    return (f, None);
                }
                // Walk from the tail skipping io-busy frames.
                let mut cand = state.lru.evict_candidate();
                while let Some(f) = cand {
                    if !state.frames[f].io_busy {
                        break;
                    }
                    cand = state.lru.prev_of(f);
                }
                if let Some(f) = cand {
                    let old = state.frames[f];
                    state.lru.remove(f);
                    state.frames[f] = Frame {
                        page: Some(pid),
                        dirty: false,
                        io_busy: true,
                    };
                    // Unmap the victim before anyone can re-find the frame
                    // (lock order: lru -> page_table, used nowhere reversed).
                    if let Some(old_pid) = old.page {
                        self.page_table.write().remove(&old_pid);
                    }
                    let mut writeback = old.dirty.then_some(old.page).flatten();
                    if writeback.is_some() && self.config.writeback_under_mutex {
                        // Single-page flush with the mutex held (5.6-style):
                        // everyone needing the LRU list convoys behind us.
                        let io_start = now_nanos();
                        self.disk.write(self.config.page_bytes);
                        if let Some(p) = &self.probes {
                            p.profiler
                                .add_event(p.page_io, io_start, now_nanos() - io_start);
                        }
                        self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
                        writeback = None;
                    }
                    drop(state);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    return (f, writeback);
                }
            }
            // Everything busy (tiny pool, heavy concurrency): back off.
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Write back every dirty page (checkpoint / shutdown).
    pub fn flush_all(&self) -> u64 {
        let dirty: Vec<usize> = {
            let state = self.lru.lock();
            (0..state.frames.len())
                .filter(|&f| state.frames[f].dirty && state.frames[f].page.is_some())
                .collect()
        };
        let mut n = 0;
        for f in dirty {
            self.disk.write(self.config.page_bytes);
            let mut state = self.lru.lock();
            state.frames[f].dirty = false;
            n += 1;
        }
        n
    }

    /// Whether a page is currently resident.
    pub fn is_resident(&self, pid: PageId) -> bool {
        self.page_table.read().contains_key(&pid)
    }

    /// Sorted resident page set (test/inspection hook).
    pub fn resident_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.page_table.read().keys().copied().collect();
        pages.sort_unstable();
        pages
    }

    /// `(young_len, old_len)` of the LRU list, read under the pool mutex.
    pub fn lru_lens(&self) -> (usize, usize) {
        let state = self.lru.lock();
        (state.lru.young_len(), state.lru.old_len())
    }

    /// Run `f` while holding the pool's LRU mutex. Test hook: lets a test
    /// make the mutex contended from the outside, forcing the LLU path to
    /// defer make-young updates (the condition Section 6.1 targets).
    pub fn with_lru_held<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.lru.lock();
        f()
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.page_table.read().len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
            make_young: self.make_young_n.load(Ordering::Relaxed),
            deferred_updates: self.deferred.load(Ordering::Relaxed),
            backlog_applied: self.backlog_applied.load(Ordering::Relaxed),
            mutex_wait_ns: self.mutex_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the LLU backlog-depth histogram (pages per drain).
    pub fn backlog_depth_histogram(&self) -> HistogramSnapshot {
        self.backlog_depth_hist.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;

    fn fast_disk() -> Arc<SimDisk> {
        Arc::new(SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(30_000), // 30 µs
            ns_per_byte: 0.0,
            seed: 1,
        }))
    }

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(
            PoolConfig {
                frames,
                access_work: 8,
                ..Default::default()
            },
            fast_disk(),
            None,
        )
    }

    #[test]
    fn first_access_misses_second_hits() {
        let p = pool(8);
        assert_eq!(p.access(PageId(1), false), AccessKind::Miss);
        assert_eq!(p.access(PageId(1), false), AccessKind::Hit);
        let s = p.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert!(p.is_resident(PageId(1)));
    }

    #[test]
    fn evicts_lru_when_full() {
        let p = pool(4);
        for k in 0..4 {
            p.access(PageId(k), false);
        }
        assert_eq!(p.resident_count(), 4);
        // Next distinct page forces an eviction.
        p.access(PageId(100), false);
        assert_eq!(p.resident_count(), 4);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let p = pool(4);
        p.access(PageId(0), true); // dirty
        for k in 1..4 {
            p.access(PageId(k), false);
        }
        // Page 0 sits in the old tail region; touch the others so 0 is
        // coldest, then force eviction.
        for k in 10..14 {
            p.access(PageId(k), false);
        }
        let s = p.stats();
        assert!(s.evictions >= 4);
        assert!(s.dirty_writebacks >= 1, "dirty page written back");
    }

    #[test]
    fn repeated_old_hits_make_young() {
        let p = pool(16);
        for k in 0..16 {
            p.access(PageId(k), false);
        }
        // 3/8 of 16 = 6 old pages; hitting an old page promotes it.
        let before = p.stats().make_young;
        for k in 0..16 {
            p.access(PageId(k), false);
        }
        assert!(p.stats().make_young > before, "some promotions happened");
    }

    #[test]
    fn flush_all_clears_dirty() {
        let p = pool(8);
        for k in 0..6 {
            p.access(PageId(k), true);
        }
        let flushed = p.flush_all();
        assert_eq!(flushed, 6);
        assert_eq!(p.flush_all(), 0, "second flush has nothing to do");
    }

    #[test]
    fn llu_defers_when_mutex_held() {
        let p = Arc::new(BufferPool::new(
            PoolConfig {
                frames: 16,
                mutex_policy: MutexPolicy::Llu {
                    spin_budget: Duration::from_micros(50),
                },
                access_work: 8,
                ..Default::default()
            },
            fast_disk(),
            None,
        ));
        for k in 0..16 {
            p.access(PageId(k), false);
        }
        // Find an old page to hit.
        let old_pid = (0..16)
            .map(PageId)
            .find(|pid| {
                let f = p.page_table.read().get(pid).copied().expect("resident");
                p.lru.lock().lru.is_old(f)
            })
            .expect("some old page");
        // Hold the LRU mutex from another thread to force deferral.
        let guard = p.lru.lock();
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            p2.access(old_pid, false);
        });
        h.join().expect("access with held mutex must not block");
        drop(guard);
        let s = p.stats();
        assert_eq!(s.deferred_updates, 1, "update deferred");
        // A later hit on another old page drains the backlog. The backlog
        // is thread-local, so drain from a thread that has it — the same
        // thread deferred it, so spawn accesses on this thread instead:
        // simplest is to hit an old page from this thread after deferring
        // one here too.
        let guard = p.lru.lock();
        p.access(old_pid, false); // deferred on main thread
        drop(guard);
        assert_eq!(p.stats().deferred_updates, 2);
        // Now a successful acquisition on this thread drains main's backlog.
        for k in 0..16 {
            p.access(PageId(k), false);
        }
        assert!(p.stats().backlog_applied >= 1, "backlog drained");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use std::sync::atomic::AtomicU32;
        let p = Arc::new(pool(32));
        let errors = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = p.clone();
            let errors = errors.clone();
            handles.push(std::thread::spawn(move || {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(t);
                for _ in 0..300 {
                    let pid = PageId(rng.gen_range(0..64));
                    let kind = p.access(pid, rng.gen_bool(0.3));
                    if kind == AccessKind::Miss && p.stats().misses == 0 {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert_eq!(errors.load(Ordering::Relaxed), 0);
        let s = p.stats();
        assert_eq!(s.hits + s.misses, 1200);
        assert!(p.resident_count() <= 32);
    }

    #[test]
    fn coalesced_misses_single_read() {
        let p = Arc::new(pool(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || p.access(PageId(7), false)));
        }
        let kinds: Vec<AccessKind> = handles.into_iter().map(|h| h.join().expect("t")).collect();
        // Exactly one thread performs the miss; the rest coalesce into hits.
        let misses = kinds.iter().filter(|k| **k == AccessKind::Miss).count();
        assert_eq!(misses, 1, "kinds: {kinds:?}");
        assert_eq!(p.stats().misses, 1);
    }
}
