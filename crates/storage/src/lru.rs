//! MySQL-style midpoint-insertion LRU list.
//!
//! InnoDB splits the page list into a *young* (new) sublist and an *old*
//! sublist holding, by default, 3/8 of the pages (Section 6.1). Pages read
//! in are inserted at the **old head** (the midpoint); a subsequent access
//! to a page in the old sublist *makes it young* — moves it to the young
//! head. Accesses to pages already in the young sublist do not reorder the
//! list (InnoDB deliberately keeps young-list ordering imprecise). Eviction
//! victims come from the tail, i.e. the coldest old page.
//!
//! The list is intrusive over frame indices; the old sublist is the suffix
//! starting at `old_head`, so rebalancing the 3/8 split is just sliding the
//! boundary pointer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const NONE: usize = usize::MAX;

/// The young/old LRU list over frame indices `0..capacity`.
///
/// `in_old` flags are atomics: they are only *written* under the pool mutex
/// that owns the list, but the buffer pool's hit path reads them racily to
/// decide whether a `make_young` (and thus the mutex) is needed at all —
/// mirroring InnoDB, where young-list hits touch only the page-hash latch.
#[derive(Debug)]
pub struct LruList {
    next: Vec<usize>,
    prev: Vec<usize>,
    in_list: Vec<bool>,
    in_old: Arc<Vec<AtomicBool>>,
    head: usize,
    tail: usize,
    old_head: usize,
    young_len: usize,
    old_len: usize,
    old_num: usize,
    old_den: usize,
}

impl LruList {
    /// A list over `capacity` frames with the given old-sublist fraction
    /// (`old_num / old_den`; MySQL's default is 3/8).
    pub fn new(capacity: usize, old_num: usize, old_den: usize) -> Self {
        assert!(old_den > 0 && old_num < old_den, "old fraction must be < 1");
        LruList {
            next: vec![NONE; capacity],
            prev: vec![NONE; capacity],
            in_list: vec![false; capacity],
            in_old: Arc::new((0..capacity).map(|_| AtomicBool::new(false)).collect()),
            head: NONE,
            tail: NONE,
            old_head: NONE,
            young_len: 0,
            old_len: 0,
            old_num,
            old_den,
        }
    }

    /// Number of frames in the list.
    pub fn len(&self) -> usize {
        self.young_len + self.old_len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the young sublist.
    pub fn young_len(&self) -> usize {
        self.young_len
    }

    /// Length of the old sublist.
    pub fn old_len(&self) -> usize {
        self.old_len
    }

    /// Whether `f` is currently linked.
    pub fn contains(&self, f: usize) -> bool {
        self.in_list[f]
    }

    /// Whether `f` is in the old sublist.
    pub fn is_old(&self, f: usize) -> bool {
        self.in_list[f] && self.in_old[f].load(Ordering::Relaxed)
    }

    /// Racy read of the old flag, for lock-free hit paths. May be stale;
    /// callers must re-verify under the owning mutex before acting.
    pub fn is_old_racy(&self, f: usize) -> bool {
        self.in_old[f].load(Ordering::Relaxed)
    }

    /// Shared handle to the old flags, so owners holding the list behind a
    /// mutex can still perform the racy hit-path read without locking.
    pub fn old_flags(&self) -> Arc<Vec<AtomicBool>> {
        self.in_old.clone()
    }

    /// Target old-sublist length for the current size.
    fn old_target(&self) -> usize {
        // At least one old page whenever the list is nonempty, so eviction
        // candidates exist even for tiny pools.
        if self.is_empty() {
            0
        } else {
            (self.len() * self.old_num / self.old_den).max(1)
        }
    }

    fn unlink(&mut self, f: usize) {
        debug_assert!(self.in_list[f]);
        let (p, n) = (self.prev[f], self.next[f]);
        if p != NONE {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NONE {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
        if self.old_head == f {
            self.old_head = n; // suffix property: next old (or NONE)
        }
        if self.in_old[f].load(Ordering::Relaxed) {
            self.old_len -= 1;
        } else {
            self.young_len -= 1;
        }
        self.in_list[f] = false;
        self.next[f] = NONE;
        self.prev[f] = NONE;
    }

    fn link_front(&mut self, f: usize) {
        debug_assert!(!self.in_list[f]);
        self.prev[f] = NONE;
        self.next[f] = self.head;
        if self.head != NONE {
            self.prev[self.head] = f;
        } else {
            self.tail = f;
        }
        self.head = f;
        self.in_list[f] = true;
        self.in_old[f].store(false, Ordering::Relaxed);
        self.young_len += 1;
    }

    /// Insert `f` at the old head (midpoint insertion for newly read pages).
    pub fn insert_old_head(&mut self, f: usize) {
        debug_assert!(!self.in_list[f]);
        if self.old_head == NONE {
            // No old section: append at tail and start one.
            self.prev[f] = self.tail;
            self.next[f] = NONE;
            if self.tail != NONE {
                self.next[self.tail] = f;
            } else {
                self.head = f;
            }
            self.tail = f;
        } else {
            let oh = self.old_head;
            let p = self.prev[oh];
            self.prev[f] = p;
            self.next[f] = oh;
            self.prev[oh] = f;
            if p != NONE {
                self.next[p] = f;
            } else {
                self.head = f;
            }
        }
        self.old_head = f;
        self.in_list[f] = true;
        self.in_old[f].store(true, Ordering::Relaxed);
        self.old_len += 1;
        self.rebalance();
    }

    /// Access notification: if `f` is old, move it to the young head
    /// (InnoDB's `buf_page_make_young`). Returns whether a move happened.
    pub fn make_young(&mut self, f: usize) -> bool {
        if !self.in_list[f] || !self.in_old[f].load(Ordering::Relaxed) {
            return false; // young accesses do not reorder
        }
        self.unlink(f);
        self.link_front(f);
        self.rebalance();
        true
    }

    /// The eviction candidate: the list tail (coldest old page), if any.
    pub fn evict_candidate(&self) -> Option<usize> {
        (self.tail != NONE).then_some(self.tail)
    }

    /// The frame after `f` toward the head (for skipping busy victims).
    pub fn prev_of(&self, f: usize) -> Option<usize> {
        let p = self.prev[f];
        (p != NONE).then_some(p)
    }

    /// Remove `f` from the list entirely (eviction).
    pub fn remove(&mut self, f: usize) {
        self.unlink(f);
        self.rebalance();
    }

    /// Slide the young/old boundary to restore the configured split.
    fn rebalance(&mut self) {
        let target = self.old_target();
        // Grow old: move the young tail into the old section by sliding the
        // boundary pointer leftward.
        while self.old_len < target && self.young_len > 0 {
            let new_oh = if self.old_head == NONE {
                self.tail
            } else {
                self.prev[self.old_head]
            };
            debug_assert_ne!(new_oh, NONE);
            self.old_head = new_oh;
            self.in_old[new_oh].store(true, Ordering::Relaxed);
            self.old_len += 1;
            self.young_len -= 1;
        }
        // Shrink old: slide the boundary rightward.
        while self.old_len > target {
            let oh = self.old_head;
            debug_assert_ne!(oh, NONE);
            self.in_old[oh].store(false, Ordering::Relaxed);
            self.old_head = self.next[oh];
            self.old_len -= 1;
            self.young_len += 1;
        }
        self.debug_assert_band();
    }

    /// Debug-build invariant: after every rebalance the old sublist sits
    /// exactly on the configured (3/8-by-default) target — the only slack
    /// allowed is an all-old list when there are no young pages to take
    /// from. Compiled out of release builds; exercised continuously by the
    /// torture driver's debug test runs.
    #[inline]
    fn debug_assert_band(&self) {
        #[cfg(debug_assertions)]
        {
            let target = self.old_target();
            debug_assert!(
                self.old_len <= target,
                "old sublist above target band: old_len={} target={} len={}",
                self.old_len,
                target,
                self.len()
            );
            debug_assert!(
                self.old_len == target || self.young_len == 0,
                "old sublist below target band: old_len={} target={} young_len={}",
                self.old_len,
                target,
                self.young_len
            );
        }
    }

    /// The list order from head (MRU) to tail (LRU), for tests.
    pub fn iter_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NONE {
            out.push(cur);
            cur = self.next[cur];
        }
        out
    }

    /// Validate internal invariants (tests and debug builds).
    pub fn check_invariants(&self) {
        let order = self.iter_order();
        assert_eq!(order.len(), self.len(), "count mismatch");
        // Old section must be a suffix beginning at old_head.
        let first_old = order
            .iter()
            .position(|&f| self.in_old[f].load(Ordering::Relaxed));
        match first_old {
            Some(i) => {
                assert_eq!(order[i], self.old_head, "old_head at boundary");
                assert!(
                    order[i..]
                        .iter()
                        .all(|&f| self.in_old[f].load(Ordering::Relaxed)),
                    "old is a suffix"
                );
                assert_eq!(order.len() - i, self.old_len);
            }
            None => {
                assert_eq!(self.old_len, 0);
                assert_eq!(self.old_head, NONE);
            }
        }
        if !order.is_empty() {
            assert!(self.old_len >= 1, "nonempty list keeps an old page");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_midpoint_behaviour() {
        let mut l = LruList::new(8, 3, 8);
        for f in 0..8 {
            l.insert_old_head(f);
            l.check_invariants();
        }
        assert_eq!(l.len(), 8);
        // 3/8 of 8 = 3 old pages.
        assert_eq!(l.old_len(), 3);
        assert_eq!(l.young_len(), 5);
    }

    #[test]
    fn make_young_moves_old_to_head() {
        let mut l = LruList::new(8, 3, 8);
        for f in 0..8 {
            l.insert_old_head(f);
        }
        let order_before = l.iter_order();
        let victim = *order_before.last().expect("nonempty");
        assert!(l.is_old(victim));
        assert!(l.make_young(victim));
        l.check_invariants();
        assert_eq!(l.iter_order()[0], victim, "moved to MRU position");
        assert!(!l.is_old(victim));
    }

    #[test]
    fn young_access_does_not_reorder() {
        let mut l = LruList::new(8, 3, 8);
        for f in 0..8 {
            l.insert_old_head(f);
        }
        let young = l.iter_order()[1];
        assert!(!l.is_old(young));
        let before = l.iter_order();
        assert!(!l.make_young(young));
        assert_eq!(l.iter_order(), before);
    }

    #[test]
    fn eviction_takes_tail_and_rebalances() {
        let mut l = LruList::new(8, 3, 8);
        for f in 0..8 {
            l.insert_old_head(f);
        }
        let tail = l.evict_candidate().expect("candidate");
        l.remove(tail);
        l.check_invariants();
        assert_eq!(l.len(), 7);
        assert!(!l.contains(tail));
        // 3/8 of 7 = 2 (floor), min 1.
        assert_eq!(l.old_len(), 2);
    }

    #[test]
    fn single_frame_list() {
        let mut l = LruList::new(2, 3, 8);
        l.insert_old_head(0);
        l.check_invariants();
        assert_eq!(l.old_len(), 1, "solo page stays old (eviction candidate)");
        assert_eq!(l.evict_candidate(), Some(0));
        // make_young on the only (old) page: it moves, then rebalance pulls
        // it back old so an eviction candidate always exists.
        l.make_young(0);
        l.check_invariants();
        assert_eq!(l.len(), 1);
        assert_eq!(l.evict_candidate(), Some(0));
    }

    #[test]
    fn empty_list() {
        let l = LruList::new(4, 3, 8);
        assert!(l.is_empty());
        assert_eq!(l.evict_candidate(), None);
        l.check_invariants();
    }

    #[test]
    fn prev_of_walks_toward_head() {
        let mut l = LruList::new(4, 1, 2);
        for f in 0..4 {
            l.insert_old_head(f);
        }
        let order = l.iter_order();
        let tail = *order.last().expect("nonempty");
        let prev = l.prev_of(tail).expect("has prev");
        assert_eq!(prev, order[order.len() - 2]);
        assert_eq!(l.prev_of(order[0]), None);
    }

    #[test]
    fn randomized_ops_maintain_invariants() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let cap = 16;
        let mut l = LruList::new(cap, 3, 8);
        let mut resident: Vec<usize> = Vec::new();
        let mut free: Vec<usize> = (0..cap).collect();
        for _ in 0..5000 {
            match rng.gen_range(0..3) {
                0 if !free.is_empty() => {
                    let f = free.swap_remove(rng.gen_range(0..free.len()));
                    l.insert_old_head(f);
                    resident.push(f);
                }
                1 if !resident.is_empty() => {
                    let f = resident[rng.gen_range(0..resident.len())];
                    l.make_young(f);
                }
                2 if !resident.is_empty() => {
                    let i = rng.gen_range(0..resident.len());
                    let f = resident.swap_remove(i);
                    l.remove(f);
                    free.push(f);
                }
                _ => {}
            }
            l.check_invariants();
            assert_eq!(l.len(), resident.len());
        }
    }
}
