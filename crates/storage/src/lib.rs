//! Buffer-pool substrate (the paper's Sections 4.1 and 6.1).
//!
//! * [`lru::LruList`] — InnoDB's midpoint-insertion LRU with young/old
//!   sublists (3/8 old by default).
//! * [`pool::BufferPool`] — frames + page hash + the global `buf_pool`
//!   mutex whose wait times TProfiler identified as the dominant variance
//!   source under memory pressure, with the paper's **Lazy LRU Update**
//!   fix available via [`pool::MutexPolicy::Llu`].

pub mod lru;
pub mod pool;

pub use lru::LruList;
pub use pool::{AccessKind, BufferPool, MutexPolicy, PageId, PoolConfig, PoolProbes, PoolStats};
