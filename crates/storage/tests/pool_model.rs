//! Model-based testing of the buffer pool: a reference model tracks which
//! pages *must* be resident (pool capacity respected, most-recently-used
//! retained) and the real pool is checked against it after randomized
//! single-threaded operation sequences, plus multi-threaded smoke checks.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tpd_common::dist::ServiceTime;
use tpd_common::{DiskConfig, SimDisk};
use tpd_storage::{AccessKind, BufferPool, MutexPolicy, PageId, PoolConfig};

fn instant_disk() -> Arc<SimDisk> {
    Arc::new(SimDisk::new(DiskConfig {
        service: ServiceTime::Fixed(0),
        ns_per_byte: 0.0,
        seed: 3,
    }))
}

fn pool(frames: usize, policy: MutexPolicy) -> BufferPool {
    BufferPool::new(
        PoolConfig {
            frames,
            mutex_policy: policy,
            access_work: 4,
            writeback_under_mutex: false,
            ..Default::default()
        },
        instant_disk(),
        None,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded: residence never exceeds capacity; accesses to
    /// resident pages are hits; accesses to non-resident pages are misses;
    /// hit/miss counts are exact.
    #[test]
    fn residency_and_hit_accounting(
        frames in 4usize..32,
        keys in proptest::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        let p = pool(frames, MutexPolicy::Blocking);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for &(k, write) in &keys {
            let kind = p.access(PageId(k), write);
            if resident.contains(&k) {
                prop_assert_eq!(kind, AccessKind::Hit, "page {} was resident", k);
                hits += 1;
            } else {
                prop_assert_eq!(kind, AccessKind::Miss, "page {} was absent", k);
                misses += 1;
                resident.insert(k);
            }
            // The pool may have evicted something to fit; mirror by
            // trusting the pool's own residency (the model only asserts
            // capacity and the side it can know for sure).
            if resident.len() > frames {
                resident = resident
                    .iter()
                    .copied()
                    .filter(|&k2| p.is_resident(PageId(k2)))
                    .collect();
            }
            prop_assert!(p.resident_count() <= frames);
        }
        let s = p.stats();
        prop_assert_eq!(s.hits, hits);
        prop_assert_eq!(s.misses, misses);
        prop_assert_eq!(s.evictions as i64,
            (s.misses as i64 - frames as i64).max(0),
            "every miss beyond capacity evicts exactly one page");
    }

    /// The most recently accessed page is always resident afterwards.
    #[test]
    fn mru_page_is_resident(
        frames in 4usize..16,
        keys in proptest::collection::vec(0u64..64, 1..200),
    ) {
        let p = pool(frames, MutexPolicy::Blocking);
        for &k in &keys {
            p.access(PageId(k), false);
            prop_assert!(p.is_resident(PageId(k)));
        }
    }

    /// Deferral + drain convergence: hold the LRU mutex so the LLU pool is
    /// forced to defer its make-young updates, apply the same accesses to a
    /// baseline blocking pool, then drain the backlog and check the two
    /// pools converge — same resident-page set, same young/old sublist
    /// lengths, every deferred update eventually applied. (All on one
    /// thread: the backlog is thread-local, and held-phase accesses must be
    /// hits — a miss would need the mutex we are holding.)
    #[test]
    fn llu_converges_with_baseline_after_backlog_drain(
        frames in 8usize..24,
        extra in 4usize..12,
        picks in proptest::collection::vec(0usize..64, 1..60),
        tail in proptest::collection::vec(0u64..8, 0..12),
    ) {
        let llu = pool(frames, MutexPolicy::Llu { spin_budget: Duration::from_micros(1) });
        let base = pool(frames, MutexPolicy::Blocking);

        // Fill past capacity so the resident set is a non-trivial subset.
        let keyspace = (frames + extra) as u64;
        for k in 0..keyspace {
            llu.access(PageId(k), false);
            base.access(PageId(k), false);
        }
        let resident = llu.resident_pages();
        prop_assert_eq!(&resident, &base.resident_pages(),
            "identical uncontended histories fill identically");
        prop_assert_eq!(resident.len(), frames);

        // Contention phase: random resident picks plus one full sweep (the
        // sweep guarantees at least every old page is touched), all read
        // hits. The LLU pool sees them with its mutex held and must defer;
        // the baseline applies them directly.
        let mut touches: Vec<PageId> =
            picks.iter().map(|&i| resident[i % resident.len()]).collect();
        touches.extend(resident.iter().copied());
        llu.with_lru_held(|| {
            for &pid in &touches {
                prop_assert_eq!(llu.access(pid, false), AccessKind::Hit);
            }
        });
        for &pid in &touches {
            prop_assert_eq!(base.access(pid, false), AccessKind::Hit);
        }
        let deferred = llu.stats().deferred_updates;
        prop_assert!(deferred > 0, "the sweep must touch an old page");

        // Drain: with the mutex free again, one sweep re-touches the
        // deferred (still old-flagged) pages, which acquire the mutex and
        // process the whole thread-local backlog. Applied can trail the
        // deferral count — duplicate deferrals of one page apply once, and
        // the boundary rebalance may have promoted an entry already — but
        // at least one deferred move must land.
        for &pid in &resident {
            llu.access(pid, false);
            base.access(pid, false);
        }
        let applied = llu.stats().backlog_applied;
        prop_assert!(applied >= 1 && applied <= deferred,
            "backlog must drain: applied {} of {} deferred", applied, deferred);
        prop_assert_eq!(llu.resident_pages(), base.resident_pages(),
            "after the backlog drains the pools hold the same pages");
        prop_assert_eq!(llu.lru_lens(), base.lru_lens(),
            "young/old split converges too");

        // Eviction tail with fresh pages: capacity and MRU residency hold
        // in both pools and the new pages land in both resident sets.
        for &k in &tail {
            let pid = PageId(keyspace + k);
            llu.access(pid, false);
            base.access(pid, false);
            prop_assert!(llu.is_resident(pid) && base.is_resident(pid));
            prop_assert!(llu.resident_count() <= frames);
            prop_assert!(base.resident_count() <= frames);
        }
    }

    /// LLU and blocking policies agree on residency semantics (they differ
    /// only in LRU *ordering* precision, never in what is cached when).
    #[test]
    fn llu_preserves_accounting(
        keys in proptest::collection::vec(0u64..48, 1..300),
    ) {
        let p = pool(16, MutexPolicy::Llu { spin_budget: Duration::from_micros(5) });
        let mut expected_miss = 0u64;
        let mut seen: std::collections::HashSet<u64> = Default::default();
        for &k in &keys {
            let was_resident = p.is_resident(PageId(k));
            let kind = p.access(PageId(k), false);
            prop_assert_eq!(kind == AccessKind::Hit, was_resident);
            if !was_resident {
                expected_miss += 1;
            }
            seen.insert(k);
        }
        prop_assert_eq!(p.stats().misses, expected_miss);
    }
}

/// Multi-threaded: counts are conserved and capacity holds under races.
#[test]
fn concurrent_capacity_and_conservation() {
    let p = Arc::new(pool(24, MutexPolicy::Blocking));
    let total_ops = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..6u64 {
            let p = p.clone();
            let total_ops = &total_ops;
            scope.spawn(move || {
                use rand::rngs::SmallRng;
                use rand::{Rng, SeedableRng};
                let mut rng = SmallRng::seed_from_u64(t);
                for _ in 0..500 {
                    let k = rng.gen_range(0..96);
                    p.access(PageId(k), rng.gen_bool(0.3));
                    total_ops.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let s = p.stats();
    assert_eq!(
        s.hits + s.misses,
        total_ops.load(std::sync::atomic::Ordering::Relaxed)
    );
    assert!(p.resident_count() <= 24);
    // Flush-all leaves nothing dirty and is idempotent.
    p.flush_all();
    assert_eq!(p.flush_all(), 0);
}
