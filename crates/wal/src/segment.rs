//! File-backed WAL segments: CRC-framed append-only log files with
//! rotation, fuzzy checkpoints, and ARIES-style redo-on-open.
//!
//! Layout of one frame (all integers little-endian):
//!
//! ```text
//! [len: u32]  payload length in bytes
//! [crc: u32]  CRC32-IEEE of the payload
//! [payload]   seq: u64   — global append-order sequence number
//!             end: u64   — the record's end LSN in its redo stream
//!             record     — tag u8 (1 = Update, 2 = Insert, 3 = Commit)
//!                          followed by the record fields
//! ```
//!
//! The CRC-prefixed encoding follows the shape of SimpleDB's
//! `transaction_log.rs` (SNIPPETS.md, Snippet 3): length first so the
//! reader knows how much to checksum, checksum next so a torn or
//! bit-rotted frame is detected before any field is trusted. On open,
//! each stripe's segment chain is scanned in order and truncated at the
//! first bad frame — the same semantics as the simulated `torn_tail`
//! fault, where recovery stops at the tear and never panics.
//!
//! The K parallel stripes from the lock-free redo path each own a segment
//! chain (`wal-<stripe>-<index>.seg`). Within a stripe, file order is
//! append order; across stripes it is not, so recovery merges all
//! readable frames and sorts by the global `seq` every append stamped.
//! A transaction's records are contiguous within one stripe reservation,
//! so a fsynced (acknowledged) commit can never be split by a tear.
//!
//! Checkpoints (`checkpoint.ckpt`, written to a temp file, fsynced, then
//! atomically renamed) capture the full table state plus the seq floor;
//! redo replays only frames at or above the floor, which bounds recovery
//! work. Checkpoint writers must be write-quiescent: there is no undo
//! log, so the floor must not bisect a transaction.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use tpd_common::{DiskDevice, FileDisk, Nanos};

use crate::record::{LogRecord, StampedRecord};
use crate::Lsn;

/// Upper bound on a frame payload; anything larger is treated as
/// corruption (a real record is a few dozen bytes).
const MAX_PAYLOAD: usize = 1 << 20;

/// Frame header: length + CRC.
const FRAME_HEADER: usize = 8;

/// Checkpoint file magic ("TPDK").
const CKPT_MAGIC: u32 = 0x5450_444B;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32-IEEE of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------------

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn encode_record(rec: &LogRecord, buf: &mut Vec<u8>) {
    match rec {
        LogRecord::Update {
            txn,
            table,
            key,
            after,
        } => {
            buf.push(1);
            push_u64(buf, *txn);
            push_u32(buf, *table);
            push_u64(buf, *key);
            push_u32(buf, after.len() as u32);
            for v in after {
                push_i64(buf, *v);
            }
        }
        LogRecord::Insert {
            txn,
            table,
            key,
            row,
        } => {
            buf.push(2);
            push_u64(buf, *txn);
            push_u32(buf, *table);
            push_u64(buf, *key);
            push_u32(buf, row.len() as u32);
            for v in row {
                push_i64(buf, *v);
            }
        }
        LogRecord::Commit { txn } => {
            buf.push(3);
            push_u64(buf, *txn);
        }
        LogRecord::Torn { .. } => {
            unreachable!("torn tails are a decode-side artifact, never encoded")
        }
    }
}

fn decode_record(c: &mut Cursor<'_>) -> Option<LogRecord> {
    let tag = c.u8()?;
    match tag {
        1 | 2 => {
            let txn = c.u64()?;
            let table = c.u32()?;
            let key = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD / 8 {
                return None;
            }
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(c.i64()?);
            }
            Some(if tag == 1 {
                LogRecord::Update {
                    txn,
                    table,
                    key,
                    after: vals,
                }
            } else {
                LogRecord::Insert {
                    txn,
                    table,
                    key,
                    row: vals,
                }
            })
        }
        3 => Some(LogRecord::Commit { txn: c.u64()? }),
        _ => None,
    }
}

/// Encode one complete frame (header + payload) for `rec` stamped with the
/// global sequence number `seq`.
pub fn encode_frame(seq: u64, rec: &StampedRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    push_u64(&mut payload, seq);
    push_u64(&mut payload, rec.end.0);
    encode_record(&rec.record, &mut payload);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    push_u32(&mut frame, payload.len() as u32);
    push_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// Scan a segment's bytes into frames. Returns the decoded
/// `(seq, record)` pairs plus `Some(offset)` of the first bad frame (torn
/// write, bit rot, or trailing garbage) — the caller truncates there.
pub fn scan_frames(bytes: &[u8]) -> (Vec<(u64, StampedRecord)>, Option<usize>) {
    let mut out = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = &bytes[off..];
        if rest.is_empty() {
            return (out, None);
        }
        if rest.len() < FRAME_HEADER {
            return (out, Some(off));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if !(17..=MAX_PAYLOAD).contains(&len) || rest.len() < FRAME_HEADER + len {
            return (out, Some(off));
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32(payload) != crc {
            return (out, Some(off));
        }
        let mut c = Cursor::new(payload);
        let (seq, end) = match (c.u64(), c.u64()) {
            (Some(s), Some(e)) => (s, e),
            _ => return (out, Some(off)),
        };
        match decode_record(&mut c) {
            Some(record) if c.done() => {
                out.push((
                    seq,
                    StampedRecord {
                        end: Lsn(end),
                        record,
                    },
                ));
                off += FRAME_HEADER + len;
            }
            _ => return (out, Some(off)),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// One table's full image inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointTable {
    /// Table id (recreated in id order so ids reproduce).
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Rows per page (drives the storage model on restore).
    pub rows_per_page: u64,
    /// Next auto-assigned row key.
    pub next_key: u64,
    /// All rows, key-ordered.
    pub rows: Vec<(u64, Vec<i64>)>,
}

/// A fuzzy checkpoint: full table state plus the redo floor. Frames with
/// `seq < next_seq` are already reflected in the tables and are skipped
/// (and pruned) — that is what bounds redo length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointData {
    /// Redo floor: first seq NOT covered by this checkpoint.
    pub next_seq: u64,
    /// Full table images, id-ordered.
    pub tables: Vec<CheckpointTable>,
}

fn encode_checkpoint(data: &CheckpointData) -> Vec<u8> {
    let mut body = Vec::new();
    push_u64(&mut body, data.next_seq);
    push_u32(&mut body, data.tables.len() as u32);
    for t in &data.tables {
        push_u32(&mut body, t.id);
        push_u64(&mut body, t.rows_per_page);
        push_u64(&mut body, t.next_key);
        push_u32(&mut body, t.name.len() as u32);
        body.extend_from_slice(t.name.as_bytes());
        push_u64(&mut body, t.rows.len() as u64);
        for (key, row) in &t.rows {
            push_u64(&mut body, *key);
            push_u32(&mut body, row.len() as u32);
            for v in row {
                push_i64(&mut body, *v);
            }
        }
    }
    let mut out = Vec::with_capacity(8 + body.len());
    push_u32(&mut out, CKPT_MAGIC);
    push_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn decode_checkpoint(bytes: &[u8]) -> Option<CheckpointData> {
    if bytes.len() < 8 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let body = &bytes[8..];
    if magic != CKPT_MAGIC || crc32(body) != crc {
        return None;
    }
    let mut c = Cursor::new(body);
    let next_seq = c.u64()?;
    let ntables = c.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let id = c.u32()?;
        let rows_per_page = c.u64()?;
        let next_key = c.u64()?;
        let name_len = c.u32()? as usize;
        let name = String::from_utf8(c.take(name_len)?.to_vec()).ok()?;
        let nrows = c.u64()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1 << 20));
        for _ in 0..nrows {
            let key = c.u64()?;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD / 8 {
                return None;
            }
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(c.i64()?);
            }
            rows.push((key, row));
        }
        tables.push(CheckpointTable {
            id,
            name,
            rows_per_page,
            next_key,
            rows,
        });
    }
    c.done().then_some(CheckpointData { next_seq, tables })
}

// ---------------------------------------------------------------------------
// Segment files
// ---------------------------------------------------------------------------

fn seg_path(dir: &Path, stripe: usize, index: u64) -> PathBuf {
    dir.join(format!("wal-{stripe:02}-{index:08}.seg"))
}

fn parse_seg_name(name: &str, stripe: usize) -> Option<u64> {
    let prefix = format!("wal-{stripe:02}-");
    let rest = name.strip_prefix(&prefix)?.strip_suffix(".seg")?;
    rest.parse::<u64>().ok()
}

fn create_segment(path: &Path) -> io::Result<File> {
    File::options()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
}

/// Per-stripe writer bookkeeping: which segment files exist and what the
/// next rotation index is. Byte positions live in the stripe's
/// [`FileDisk`].
#[derive(Debug)]
struct SegmentWriter {
    /// Live segment paths, oldest first; the last one is being written.
    paths: Vec<PathBuf>,
    /// Index the next rotation will use.
    next_index: u64,
}

/// What [`FileWal::open`] recovered from the data directory.
#[derive(Debug)]
pub struct RecoveredLog {
    /// All readable frames at or above the checkpoint floor, merged across
    /// stripes and sorted by global seq. Feed to `Engine::recover_from`.
    pub records: Vec<StampedRecord>,
    /// The checkpoint, if a valid one exists.
    pub checkpoint: Option<CheckpointData>,
    /// Segment files truncated because of a torn or corrupt frame.
    pub torn_truncated: u64,
    /// Readable frames recovered (including ones below the floor).
    pub frames: u64,
}

/// The file-backed WAL: K segment chains (one per stripe), a checkpoint,
/// and a crash-injection gate for the crash-point matrix.
///
/// Sequence numbers supplied by callers restart at zero on every engine
/// boot; the wal offsets them by `base_seq` (one past the highest seq it
/// recovered) so the on-disk order is globally monotone across boots.
#[derive(Debug)]
pub struct FileWal {
    dir: PathBuf,
    rotate_bytes: u64,
    disks: Vec<Arc<FileDisk>>,
    writers: Vec<Mutex<SegmentWriter>>,
    base_seq: u64,
    /// Next auto-allocated relative seq (pg path).
    auto_seq: AtomicU64,
    /// One past the highest actual seq appended or recovered; the
    /// checkpoint floor for a quiescent caller.
    next_actual: AtomicU64,
    /// Complete frames appended this boot (crash-injection ruler).
    frames: AtomicU64,
    /// Crash after this many frames (`u64::MAX` = never).
    crash_after: AtomicU64,
    /// Bytes of the crashing frame to leave behind as a torn prefix.
    torn_bytes: AtomicU64,
    /// `true` = [`CrashPhase::AfterWrite`], `false` = [`CrashPhase::Torn`].
    crash_after_write: AtomicBool,
    crashed: AtomicBool,
}

/// Where in the fatal frame's append→sync sequence the injected crash
/// lands. Every real crash is one of these two: either the `pwrite`
/// itself was cut short, or it finished and the process died before the
/// `fdatasync` made it durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// Death mid-`pwrite`: `torn_bytes % frame_len` bytes of the fatal
    /// frame land (0 = a clean frame-boundary crash).
    Torn,
    /// Death between `pwrite` and `fdatasync`: the fatal frame is fully
    /// written but never synced. Recovery may legitimately observe it —
    /// an attempted-but-unacknowledged commit becoming durable is sound;
    /// losing an *acknowledged* one is not, and the sync suppression is
    /// exactly what the completeness audit must survive.
    AfterWrite,
}

impl FileWal {
    /// Default segment rotation size.
    pub const DEFAULT_ROTATE_BYTES: u64 = 4 << 20;

    /// Open (or initialize) the WAL under `dir` with `stripes` segment
    /// chains, recovering every readable frame at or above the checkpoint
    /// floor. Torn or bit-rotted frames truncate their chain at the tear.
    pub fn open(
        dir: impl AsRef<Path>,
        stripes: usize,
        rotate_bytes: u64,
    ) -> io::Result<(Arc<FileWal>, RecoveredLog)> {
        assert!(stripes >= 1, "need at least one stripe");
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A leftover temp file is a checkpoint that never committed.
        let _ = std::fs::remove_file(dir.join("checkpoint.tmp"));
        let checkpoint = std::fs::read(dir.join("checkpoint.ckpt"))
            .ok()
            .and_then(|b| decode_checkpoint(&b));
        let floor = checkpoint.as_ref().map_or(0, |c| c.next_seq);

        let names: Vec<String> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();

        let mut all: Vec<(u64, StampedRecord)> = Vec::new();
        let mut torn_truncated = 0u64;
        let mut frames = 0u64;
        let mut next_actual = floor;
        let mut disks = Vec::with_capacity(stripes);
        let mut writers = Vec::with_capacity(stripes);

        for k in 0..stripes {
            let mut segs: Vec<(u64, PathBuf)> = names
                .iter()
                .filter_map(|n| parse_seg_name(n, k).map(|idx| (idx, dir.join(n))))
                .collect();
            segs.sort();
            let mut cut_at: Option<usize> = None;
            for (i, (_, path)) in segs.iter().enumerate() {
                let bytes = std::fs::read(path)?;
                let (recs, bad) = scan_frames(&bytes);
                frames += recs.len() as u64;
                for (seq, rec) in recs {
                    next_actual = next_actual.max(seq + 1);
                    if seq >= floor {
                        all.push((seq, rec));
                    }
                }
                if let Some(off) = bad {
                    torn_truncated += 1;
                    let f = File::options().write(true).open(path)?;
                    f.set_len(off as u64)?;
                    f.sync_data()?;
                    cut_at = Some(i);
                    break;
                }
            }
            // Everything after a tear in the chain is unreachable garbage.
            if let Some(i) = cut_at {
                for (_, path) in segs.drain(i + 1..) {
                    torn_truncated += 1;
                    std::fs::remove_file(path)?;
                }
            }
            let (disk, paths, next_index) = match segs.last() {
                Some(&(idx, ref path)) => (
                    FileDisk::open(path)?,
                    segs.iter().map(|(_, p)| p.clone()).collect(),
                    idx + 1,
                ),
                None => {
                    let path = seg_path(&dir, k, 0);
                    (FileDisk::create(&path)?, vec![path], 1)
                }
            };
            disks.push(Arc::new(disk));
            writers.push(Mutex::new(SegmentWriter { paths, next_index }));
        }

        all.sort_by_key(|&(seq, _)| seq);
        let records = all.into_iter().map(|(_, r)| r).collect();
        let wal = Arc::new(FileWal {
            dir,
            rotate_bytes,
            disks,
            writers,
            base_seq: next_actual,
            auto_seq: AtomicU64::new(0),
            next_actual: AtomicU64::new(next_actual),
            frames: AtomicU64::new(0),
            crash_after: AtomicU64::new(u64::MAX),
            torn_bytes: AtomicU64::new(0),
            crash_after_write: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        });
        Ok((
            wal,
            RecoveredLog {
                records,
                checkpoint,
                torn_truncated,
                frames,
            },
        ))
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.disks.len()
    }

    /// The stripe's underlying device, for wiring into the redo log so
    /// byte and fsync accounting share one stats surface.
    pub fn stripe_disk(&self, stripe: usize) -> Arc<FileDisk> {
        self.disks[stripe].clone()
    }

    /// Append one frame for `rec` with the caller-relative sequence
    /// number `seq` (the wal adds its base offset). Returns time spent.
    pub fn append(&self, stripe: usize, seq: u64, rec: &StampedRecord) -> Nanos {
        self.append_actual(stripe, self.base_seq + seq, rec)
    }

    /// Append one frame, allocating the next sequence number internally
    /// (the pg path, which has no record seqs of its own).
    pub fn append_auto(&self, stripe: usize, rec: &StampedRecord) -> Nanos {
        let seq = self.base_seq + self.auto_seq.fetch_add(1, Ordering::SeqCst);
        self.append_actual(stripe, seq, rec)
    }

    fn append_actual(&self, stripe: usize, seq: u64, rec: &StampedRecord) -> Nanos {
        if self.crashed.load(Ordering::Acquire) {
            return 0;
        }
        let frame = encode_frame(seq, rec);
        let n = self.frames.fetch_add(1, Ordering::SeqCst);
        if n >= self.crash_after.load(Ordering::SeqCst) {
            // The first append past the gate leaves its frame artifact
            // behind — a torn prefix (`Torn`) or the whole frame minus
            // its sync (`AfterWrite`) — then kills every stripe device;
            // every later append hits the `crashed` fast path above or
            // here, and every later flush is a dead device's no-op.
            if !self.crashed.swap(true, Ordering::SeqCst) {
                if self.crash_after_write.load(Ordering::SeqCst) {
                    let _ = self.disks[stripe].append_raw(&frame);
                } else {
                    let torn = (self.torn_bytes.load(Ordering::Relaxed) as usize) % frame.len();
                    if torn > 0 {
                        let _ = self.disks[stripe].append_raw(&frame[..torn]);
                    }
                }
                for disk in &self.disks {
                    disk.kill();
                }
            }
            return 0;
        }
        self.next_actual.fetch_max(seq + 1, Ordering::SeqCst);
        let mut w = self.writers[stripe].lock();
        let disk = &self.disks[stripe];
        if !disk.is_empty() && disk.len() + frame.len() as u64 > self.rotate_bytes {
            // Close the full segment durably before moving on, so a tear
            // can only ever live at the tail of the newest segment.
            disk.flush(0);
            let path = seg_path(&self.dir, stripe, w.next_index);
            let file = create_segment(&path).expect("wal segment rotation");
            w.next_index += 1;
            w.paths.push(path);
            drop(disk.swap_file(file));
        }
        disk.append_raw(&frame).expect("wal segment append")
    }

    /// Durability barrier on the stripe's current segment (a real
    /// `fdatasync`). A crashed wal silently drops it — that is the point
    /// of the crash gate.
    pub fn sync(&self, stripe: usize) -> Nanos {
        if self.crashed.load(Ordering::Acquire) {
            return 0;
        }
        self.disks[stripe].flush(0)
    }

    /// One past the highest seq this wal has appended or recovered. With
    /// no appends in flight this is the checkpoint floor.
    pub fn next_seq(&self) -> u64 {
        self.next_actual.load(Ordering::SeqCst)
    }

    /// Complete frames appended this boot (crash points index into this).
    pub fn frames_written(&self) -> u64 {
        self.frames
            .load(Ordering::SeqCst)
            .min(self.crash_after.load(Ordering::SeqCst))
    }

    /// Arm the crash gate: the append of frame number `after` (0-based)
    /// stops the world, leaving `torn_bytes % frame_len` bytes of that
    /// frame behind ([`CrashPhase::Torn`]).
    pub fn set_crash_after(&self, after: u64, torn_bytes: u64) {
        self.set_crash_at(after, torn_bytes, CrashPhase::Torn);
    }

    /// [`FileWal::set_crash_after`] with an explicit phase. Under
    /// [`CrashPhase::AfterWrite`] the fatal frame is written in full and
    /// `torn_bytes` is ignored: the death lands between the frame's
    /// `pwrite` and the `fdatasync` that would have made it durable.
    pub fn set_crash_at(&self, after: u64, torn_bytes: u64, phase: CrashPhase) {
        self.torn_bytes.store(torn_bytes, Ordering::SeqCst);
        self.crash_after_write
            .store(phase == CrashPhase::AfterWrite, Ordering::SeqCst);
        self.crash_after.store(after, Ordering::SeqCst);
    }

    /// Whether the crash gate has fired: every later append and sync is a
    /// silent no-op, exactly like a killed process.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Write a checkpoint (temp file + fsync + atomic rename) and prune:
    /// every stripe rotates to a fresh segment and drops its old ones,
    /// since all their frames are below the floor.
    ///
    /// The caller must be write-quiescent — there is no undo log, so the
    /// floor must not bisect a transaction.
    pub fn checkpoint(&self, data: &CheckpointData) -> io::Result<()> {
        if self.crashed() {
            return Ok(());
        }
        let tmp = self.dir.join("checkpoint.tmp");
        {
            use std::io::Write;
            let mut f = create_segment(&tmp)?;
            f.write_all(&encode_checkpoint(data))?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, self.dir.join("checkpoint.ckpt"))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        for (k, writer) in self.writers.iter().enumerate() {
            let mut w = writer.lock();
            let path = seg_path(&self.dir, k, w.next_index);
            let file = create_segment(&path)?;
            w.next_index += 1;
            drop(self.disks[k].swap_file(file));
            for old in w.paths.drain(..) {
                let _ = std::fs::remove_file(old);
            }
            w.paths.push(path);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpd_common::now_nanos;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tpd-segment-{tag}-{}-{:x}",
            std::process::id(),
            now_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn upd(txn: u64, key: u64, v: i64) -> StampedRecord {
        StampedRecord {
            end: Lsn(txn * 100 + key),
            record: LogRecord::Update {
                txn,
                table: 0,
                key,
                after: vec![v],
            },
        }
    }

    fn commit(txn: u64) -> StampedRecord {
        StampedRecord {
            end: Lsn(txn * 100 + 99),
            record: LogRecord::Commit { txn },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_bitflip_detection() {
        let rec = upd(7, 3, -42);
        let frame = encode_frame(11, &rec);
        let (decoded, bad) = scan_frames(&frame);
        assert!(bad.is_none());
        assert_eq!(decoded, vec![(11, rec)]);

        for i in 0..frame.len() {
            let mut flipped = frame.clone();
            flipped[i] ^= 0x40;
            let (decoded, bad) = scan_frames(&flipped);
            assert!(
                decoded.is_empty() && bad == Some(0),
                "bit flip at byte {i} must invalidate the frame"
            );
        }
    }

    #[test]
    fn scan_stops_at_torn_frame_keeping_the_prefix() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame(0, &upd(1, 0, 5)));
        bytes.extend_from_slice(&encode_frame(1, &commit(1)));
        let cut = bytes.len();
        let torn = encode_frame(2, &commit(2));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        let (decoded, bad) = scan_frames(&bytes);
        assert_eq!(decoded.len(), 2);
        assert_eq!(bad, Some(cut));
    }

    #[test]
    fn checkpoint_roundtrip_and_corruption_rejection() {
        let data = CheckpointData {
            next_seq: 42,
            tables: vec![CheckpointTable {
                id: 0,
                name: "accounts".into(),
                rows_per_page: 16,
                next_key: 3,
                rows: vec![(0, vec![1000, 5]), (2, vec![-7])],
            }],
        };
        let bytes = encode_checkpoint(&data);
        assert_eq!(decode_checkpoint(&bytes), Some(data));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(decode_checkpoint(&bad), None);
        assert_eq!(decode_checkpoint(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn filewal_persists_and_reopens_merged_by_seq() {
        let dir = temp_dir("reopen");
        {
            let (wal, rec) = FileWal::open(&dir, 2, FileWal::DEFAULT_ROTATE_BYTES).expect("open");
            assert!(rec.records.is_empty());
            // Interleave seqs across stripes out of file order.
            wal.append(0, 0, &upd(1, 0, 10));
            wal.append(1, 1, &upd(1, 1, 11));
            wal.append(1, 2, &commit(1));
            wal.append(0, 3, &upd(2, 0, 20));
            wal.append(0, 4, &commit(2));
            wal.sync(0);
            wal.sync(1);
        }
        let (wal, rec) = FileWal::open(&dir, 2, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen");
        assert_eq!(rec.frames, 5);
        assert_eq!(rec.torn_truncated, 0);
        let txns: Vec<Option<u64>> = rec.records.iter().map(|r| r.record.txn()).collect();
        assert_eq!(
            txns,
            vec![Some(1), Some(1), Some(1), Some(2), Some(2)],
            "merged stream is seq-ordered across stripes"
        );
        // New appends land past the recovered seqs.
        wal.append(0, 0, &upd(3, 0, 30));
        wal.sync(0);
        drop(wal);
        let (_, rec) = FileWal::open(&dir, 2, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen 2");
        assert_eq!(rec.frames, 6);
        assert_eq!(rec.records.last().unwrap().record.txn(), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reads_across_them() {
        let dir = temp_dir("rotate");
        {
            let (wal, _) = FileWal::open(&dir, 1, 128).expect("open");
            for i in 0..20u64 {
                wal.append(0, i, &upd(i, 0, i as i64));
            }
            wal.sync(0);
        }
        let segs = std::fs::read_dir(&dir)
            .expect("ls")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".seg"))
            .count();
        assert!(segs > 1, "tiny rotate size must produce multiple segments");
        let (_, rec) = FileWal::open(&dir, 1, 128).expect("reopen");
        assert_eq!(rec.frames, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_gate_leaves_a_torn_prefix_and_recovery_drops_it() {
        let dir = temp_dir("crash");
        {
            let (wal, _) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("open");
            wal.set_crash_after(2, 9);
            wal.append(0, 0, &upd(1, 0, 1));
            wal.append(0, 1, &commit(1));
            assert!(!wal.crashed());
            wal.append(0, 2, &upd(2, 0, 2)); // torn: only 9 bytes land
            assert!(wal.crashed());
            wal.append(0, 3, &commit(2)); // dropped
            wal.sync(0); // dropped
        }
        let (_, rec) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen");
        assert_eq!(rec.frames, 2, "only the pre-crash frames survive");
        assert_eq!(rec.torn_truncated, 1, "the torn prefix was cut off");
        assert!(crate::committed_txns(&rec.records).contains(&1));
        assert!(!crate::committed_txns(&rec.records).contains(&2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn after_write_crash_lands_the_fatal_frame_but_drops_everything_later() {
        let dir = temp_dir("crash-aw");
        {
            let (wal, _) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("open");
            wal.set_crash_at(2, 9, CrashPhase::AfterWrite);
            wal.append(0, 0, &upd(1, 0, 1));
            wal.append(0, 1, &commit(1));
            assert!(!wal.crashed());
            // Fatal frame: fully pwritten, never fdatasynced.
            wal.append(0, 2, &upd(2, 0, 2));
            assert!(wal.crashed());
            wal.append(0, 3, &commit(2)); // dropped — the device is dead
            wal.sync(0); // the sync the crash stole
        }
        let (_, rec) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen");
        assert_eq!(rec.frames, 3, "the unsynced fatal frame is readable in full");
        assert_eq!(rec.torn_truncated, 0, "no tear: the pwrite completed");
        assert!(crate::committed_txns(&rec.records).contains(&1));
        // Txn 2's update frame landed but its commit never did: recovery
        // must still treat it as uncommitted.
        assert!(!crate::committed_txns(&rec.records).contains(&2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_prunes_segments_and_bounds_redo() {
        let dir = temp_dir("ckpt");
        {
            let (wal, _) = FileWal::open(&dir, 2, FileWal::DEFAULT_ROTATE_BYTES).expect("open");
            wal.append(0, 0, &upd(1, 0, 1));
            wal.append(1, 1, &commit(1));
            wal.sync(0);
            wal.sync(1);
            let data = CheckpointData {
                next_seq: wal.next_seq(),
                tables: vec![CheckpointTable {
                    id: 0,
                    name: "t".into(),
                    rows_per_page: 16,
                    next_key: 1,
                    rows: vec![(0, vec![1])],
                }],
            };
            wal.checkpoint(&data).expect("checkpoint");
            wal.append(0, 2, &upd(2, 0, 2));
            wal.append(0, 3, &commit(2));
            wal.sync(0);
        }
        let (_, rec) = FileWal::open(&dir, 2, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen");
        let ckpt = rec.checkpoint.expect("checkpoint present");
        assert_eq!(ckpt.tables[0].rows, vec![(0, vec![1])]);
        assert_eq!(
            rec.records.len(),
            2,
            "only post-checkpoint frames replay: {:?}",
            rec.records
        );
        assert!(crate::committed_txns(&rec.records).contains(&2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_auto_allocates_monotone_seqs_across_reopen() {
        let dir = temp_dir("auto");
        {
            let (wal, _) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("open");
            wal.append_auto(0, &upd(1, 0, 1));
            wal.append_auto(0, &commit(1));
            wal.sync(0);
        }
        {
            let (wal, rec) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen");
            assert_eq!(rec.frames, 2);
            wal.append_auto(0, &upd(2, 0, 2));
            wal.append_auto(0, &commit(2));
            wal.sync(0);
        }
        let (_, rec) = FileWal::open(&dir, 1, FileWal::DEFAULT_ROTATE_BYTES).expect("reopen 2");
        let txns: Vec<Option<u64>> = rec.records.iter().map(|r| r.record.txn()).collect();
        assert_eq!(txns, vec![Some(1), Some(1), Some(2), Some(2)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
