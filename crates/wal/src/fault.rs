//! Log-structure-aware fault injection.
//!
//! Device-level faults (stalls, spikes) live in `tpd_common::fault`; this
//! module models the failures that only make sense with knowledge of the
//! log: a crash cut at a chosen LSN, a torn record at the tail of the
//! durable prefix, and the classic durability *bug* of acknowledging a
//! commit before its flush completed. The harness arms these through
//! `RedoLogConfig::faults` / `WalWriterConfig::faults` and the engine
//! config, and the torture driver checks that recovery honors (or, for the
//! seeded bug, visibly violates) the durability contract.

/// A plan of WAL-level faults. `Default` is all-off.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalFaultPlan {
    /// Arm a crash once the log grows past this LSN; the harness polls
    /// [`crate::RedoLog::crash_armed`] and triggers `simulate_crash` when
    /// it fires.
    pub crash_at_lsn: Option<u64>,
    /// On crash, the first record past the flushed prefix is returned as a
    /// partial [`crate::LogRecord::Torn`] tail instead of being dropped
    /// cleanly — recovery must stop at the tear without panicking.
    pub torn_tail: bool,
    /// Seeded bug: acknowledge commits after the log *write* but before
    /// the fsync (so an "eager" log silently behaves like lazy-flush).
    /// Exists so the torture checker can prove it catches durability
    /// violations.
    pub ack_before_flush: bool,
}

impl WalFaultPlan {
    /// Plan with a crash armed at `lsn` and a torn tail at the cut.
    pub fn crash_with_torn_tail(lsn: u64) -> WalFaultPlan {
        WalFaultPlan {
            crash_at_lsn: Some(lsn),
            torn_tail: true,
            ack_before_flush: false,
        }
    }
}
