//! Atomic reserve-then-copy log buffer (the scalable append path).
//!
//! The paper diagnoses the commit-path log flush as the single largest
//! variance source in both engines; the mutex-serialized append in
//! [`crate::mysql`] and [`crate::pg`] reproduces that pathology. This
//! module removes the append-side serialization:
//!
//! 1. **Reserve** — an appender claims an LSN range with a single
//!    `fetch_add` on [`Stripe::reserved`]. No lock is held; concurrent
//!    appenders get disjoint, gap-free ranges.
//! 2. **Copy** — the appender stamps its records against the claimed
//!    range outside any lock (in the real system this is the memcpy into
//!    the log buffer slice).
//! 3. **Publish** — completion is announced through a bounded MPSC ring
//!    of per-slot sequence words (Vyukov-style). A single drainer — the
//!    flush-baton holder, or any appender when the ring fills — collects
//!    completions and advances the `published` watermark strictly in LSN
//!    order, parking out-of-order completions in a `BTreeMap` until their
//!    predecessor lands.
//!
//! Flushing is a **baton**: whoever `try_lock`s it drains the ring,
//! writes `published − written` bytes, fsyncs, and wakes every parked
//! committer at or below the new durable watermark. Committers that lose
//! the baton race park on a condvar instead of queueing on a mutex — N
//! committers share one fsync (group commit).
//!
//! Invariants (checked by debug assertions):
//!
//! * `flushed ≤ written ≤ published ≤ reserved` at all times.
//! * Reservations tile the LSN space: when the watermark advances past a
//!   completion, `completion.start == published`.
//! * A flush round only acknowledges commits whose publish happened
//!   before the round's drain (the round's `target` covers them).

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::record::StampedRecord;

/// How appends claim space in the log buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppendMode {
    /// Paper-faithful: every append serializes on the buffer mutex (the
    /// pathology of Table 1/2; kept selectable for the reproductions).
    Mutex,
    /// Reserve-then-copy: appenders claim an LSN range with one
    /// `fetch_add`, copy outside any lock, and publish through the
    /// sequence-word ring. The default.
    #[default]
    Lockfree,
}

impl std::str::FromStr for AppendMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mutex" => Ok(AppendMode::Mutex),
            "lockfree" => Ok(AppendMode::Lockfree),
            other => Err(format!("unknown wal_append mode: {other:?}")),
        }
    }
}

/// Stripe index bits live in the top byte of an [`crate::Lsn`], so each
/// of up to `2^8` parallel logs gets an independent 56-bit offset space.
/// With one stripe the encoding is the identity: LSNs are raw offsets,
/// exactly as the mutex path produces them.
pub(crate) const STRIPE_SHIFT: u32 = 56;
const OFFSET_MASK: u64 = (1 << STRIPE_SHIFT) - 1;

/// Compose a striped LSN from a stripe index and in-stripe offset.
pub(crate) fn make_lsn(stripe: usize, offset: u64) -> crate::Lsn {
    debug_assert!(offset <= OFFSET_MASK, "stripe offset overflow");
    crate::Lsn(((stripe as u64) << STRIPE_SHIFT) | offset)
}

/// The stripe an LSN belongs to.
pub(crate) fn stripe_of(lsn: crate::Lsn) -> usize {
    (lsn.0 >> STRIPE_SHIFT) as usize
}

/// The in-stripe offset of an LSN.
pub(crate) fn offset_of(lsn: crate::Lsn) -> u64 {
    lsn.0 & OFFSET_MASK
}

/// A completed copy: the reserved range plus the typed records stamped
/// into it. `records` carry a global sequence number so crash snapshots
/// can merge stripes in true append order.
#[derive(Debug)]
pub(crate) struct Reservation {
    /// First byte of the claimed range (== previous reservation's end).
    pub start: u64,
    /// One past the last byte of the claimed range.
    pub end: u64,
    /// Typed records in the range, stamped with global sequence numbers.
    pub records: Vec<(u64, StampedRecord)>,
}

/// Number of publish slots per stripe. Must be a power of two. Appenders
/// that lap the drainer help drain instead of blocking on a mutex.
const RING_SLOTS: usize = 1024;

/// One publish slot (Vyukov bounded-queue protocol). `seq == pos` means
/// free for the producer holding ticket `pos`; `seq == pos + 1` means the
/// producer finished and the drainer may consume; the drainer then stores
/// `pos + RING_SLOTS` to hand the slot to the producer one lap ahead.
struct Slot {
    seq: AtomicU64,
    data: UnsafeCell<Option<Reservation>>,
}

// SAFETY: `data` is only touched by the producer that won `seq == pos`
// (before its Release store of `pos + 1`) and by the single drainer that
// observed `seq == pos + 1` with Acquire (before its Release store of
// `pos + RING_SLOTS`). The seq word hands off exclusive access.
unsafe impl Sync for Slot {}
unsafe impl Send for Slot {}

/// Out-of-order completion parking + retained records. Guarded by the
/// drain mutex: there is at most one drainer at a time.
#[derive(Debug, Default)]
struct DrainState {
    /// Next ring position to consume.
    head: u64,
    /// Completions whose predecessor has not yet published, keyed by
    /// their start offset.
    parked: BTreeMap<u64, Reservation>,
    /// Typed records retained for crash/recovery simulation, in stripe
    /// LSN order (drained strictly by the watermark).
    records: Vec<(u64, StampedRecord)>,
}

/// One parallel log: an independent LSN space, publish ring, and flush
/// baton. The mysql personality stripes records across K of these by
/// transaction id; the pg personality uses one per log set.
pub(crate) struct Stripe {
    /// Next unreserved offset. `fetch_add` here is the entire append-side
    /// reservation protocol.
    reserved: AtomicU64,
    /// Contiguous prefix of reserved space whose copy has completed.
    published: AtomicU64,
    /// Prefix written to the device cache (advanced under the baton).
    written: AtomicU64,
    /// Durable prefix (advanced after fsync, under the baton).
    flushed: AtomicU64,
    /// Epoch of this stripe's most recent flush round (see the K-way
    /// commit-ack rule in `mysql.rs`).
    flushed_epoch: AtomicU64,
    /// Eager committers currently waiting on durability; swapped to zero
    /// at each fsync to size the group-commit batch.
    pub acks_pending: AtomicU64,
    /// Producer ticket counter for the publish ring.
    tail: AtomicU64,
    slots: Box<[Slot]>,
    /// Single-drainer state (watermark advance + record retention).
    drain: Mutex<DrainState>,
    /// Flush baton: whoever holds it writes + fsyncs for everyone.
    baton: Mutex<()>,
    /// Number of committers inside `park_round` (lets `wake_all` skip the
    /// park lock entirely on uncontended flush rounds; a stale zero is
    /// safe because parkers time out and re-check).
    parked: AtomicU64,
    /// Parked committers, woken after every flush round.
    park: Mutex<()>,
    park_cv: Condvar,
}

impl std::fmt::Debug for Stripe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stripe")
            .field("reserved", &self.reserved.load(Ordering::Relaxed))
            .field("published", &self.published.load(Ordering::Relaxed))
            .field("written", &self.written.load(Ordering::Relaxed))
            .field("flushed", &self.flushed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Stripe {
    fn default() -> Self {
        Self::new()
    }
}

impl Stripe {
    pub fn new() -> Self {
        Stripe {
            reserved: AtomicU64::new(0),
            published: AtomicU64::new(0),
            written: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            flushed_epoch: AtomicU64::new(0),
            acks_pending: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots: (0..RING_SLOTS as u64)
                .map(|i| Slot {
                    seq: AtomicU64::new(i),
                    data: UnsafeCell::new(None),
                })
                .collect(),
            drain: Mutex::new(DrainState::default()),
            baton: Mutex::new(()),
            parked: AtomicU64::new(0),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }

    /// Claim `bytes` of LSN space. Returns the range's start offset.
    pub fn reserve(&self, bytes: u64) -> u64 {
        self.reserved.fetch_add(bytes, Ordering::SeqCst)
    }

    /// Announce a completed copy. Never blocks on a lock: if the ring is
    /// full (we lapped the drainer), we help drain until our slot frees.
    pub fn publish(&self, res: Reservation) {
        debug_assert!(res.start <= res.end);
        // Fast path: when this completion is the next one in LSN order and
        // the drain lock is uncontended, land it directly — no ring
        // traffic. This keeps the single-threaded append within a few
        // nanoseconds of the mutex path; under contention the try_lock
        // fails (or we are out of order) and we fall through to the ring.
        if self.published.load(Ordering::Acquire) == res.start {
            if let Some(mut st) = self.drain.try_lock() {
                // `published` only moves under the drain lock, and only by
                // consuming the contiguous next range — which is ours and
                // is not in the ring. It is therefore still == start.
                debug_assert_eq!(self.published.load(Ordering::Acquire), res.start);
                st.records.extend(res.records);
                self.published.store(res.end, Ordering::Release);
                if !st.parked.is_empty() {
                    // A parked successor may be unblocked now.
                    self.drain_locked(&mut st);
                }
                return;
            }
        }
        let pos = self.tail.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(pos as usize) & (RING_SLOTS - 1)];
        while slot.seq.load(Ordering::Acquire) != pos {
            // Ring full: drain on behalf of the missing drainer. Bounded
            // by the publish progress of the appenders one lap behind.
            self.try_drain();
            std::hint::spin_loop();
        }
        // SAFETY: seq == pos grants this producer exclusive slot access.
        unsafe { *slot.data.get() = Some(res) };
        slot.seq.store(pos + 1, Ordering::Release);
    }

    /// Drain if no one else is draining (non-blocking).
    pub fn try_drain(&self) {
        if let Some(mut st) = self.drain.try_lock() {
            self.drain_locked(&mut st);
        }
    }

    /// Drain the ring and advance the publish watermark (blocking lock;
    /// contention is only ever with another brief drain).
    pub fn drain(&self) {
        let mut st = self.drain.lock();
        self.drain_locked(&mut st);
    }

    fn drain_locked(&self, st: &mut DrainState) {
        loop {
            let slot = &self.slots[(st.head as usize) & (RING_SLOTS - 1)];
            if slot.seq.load(Ordering::Acquire) != st.head + 1 {
                break;
            }
            // SAFETY: seq == head + 1 grants the (single) drainer
            // exclusive slot access; the producer's Release store made
            // its write to `data` visible to our Acquire load.
            let res = unsafe { (*slot.data.get()).take() }.expect("published slot holds data");
            slot.seq
                .store(st.head + RING_SLOTS as u64, Ordering::Release);
            st.head += 1;
            st.parked.insert(res.start, res);
        }
        // Advance the watermark strictly in LSN order: a completion only
        // lands once every byte before it has landed.
        let mut published = self.published.load(Ordering::Acquire);
        while let Some(res) = st.parked.remove(&published) {
            debug_assert_eq!(res.start, published, "reservations tile the LSN space");
            published = res.end;
            st.records.extend(res.records);
        }
        self.published.store(published, Ordering::Release);
    }

    /// Run `f` over the retained typed records (drains first so every
    /// publish that completed before this call is visible).
    pub fn with_records<R>(&self, f: impl FnOnce(&[(u64, StampedRecord)]) -> R) -> R {
        let mut st = self.drain.lock();
        self.drain_locked(&mut st);
        f(&st.records)
    }

    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::SeqCst)
    }

    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    pub fn written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    pub fn flushed(&self) -> u64 {
        self.flushed.load(Ordering::SeqCst)
    }

    pub fn flushed_epoch(&self) -> u64 {
        self.flushed_epoch.load(Ordering::SeqCst)
    }

    /// Advance the written cursor (baton holder only).
    pub fn set_written(&self, to: u64) {
        debug_assert!(to >= self.written.load(Ordering::SeqCst));
        self.written.store(to, Ordering::SeqCst);
    }

    /// Advance the durable cursor (baton holder only, after fsync).
    pub fn set_flushed(&self, to: u64) {
        debug_assert!(to >= self.flushed.load(Ordering::SeqCst));
        debug_assert!(to <= self.written.load(Ordering::SeqCst));
        self.flushed.store(to, Ordering::SeqCst);
    }

    /// Raise this stripe's flush epoch (monotone).
    pub fn raise_flushed_epoch(&self, to: u64) {
        self.flushed_epoch.fetch_max(to, Ordering::SeqCst);
    }

    /// Try to take the flush baton.
    pub fn try_baton(&self) -> Option<MutexGuard<'_, ()>> {
        self.baton.try_lock()
    }

    /// Take the flush baton (background flusher / flush_now / shutdown).
    pub fn baton(&self) -> MutexGuard<'_, ()> {
        self.baton.lock()
    }

    /// Park for one flush round: wait until woken (or a short timeout)
    /// unless `done()` already holds. Returns so the caller can re-check
    /// its durability target and retry the baton — the timeout makes
    /// lost wake-ups impossible by construction. The deterministic
    /// single-threaded harness never reaches this: the baton is always
    /// free there.
    pub fn park_round(&self, done: impl Fn() -> bool) {
        self.parked.fetch_add(1, Ordering::SeqCst);
        let mut g = self.park.lock();
        if !done() {
            self.park_cv.wait_for(&mut g, Duration::from_millis(1));
        }
        drop(g);
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wake every parked committer (after a flush round). Uncontended
    /// rounds (nobody parked) skip the lock; a committer racing into
    /// `park_round` right now is covered by its bounded wait + re-check.
    pub fn wake_all(&self) {
        if self.parked.load(Ordering::SeqCst) == 0 {
            return;
        }
        let _g = self.park.lock();
        self.park_cv.notify_all();
    }

    /// Cursor snapshot `(reserved, published, written, flushed)` for
    /// invariant checks in tests.
    pub fn cursors(&self) -> (u64, u64, u64, u64) {
        (
            self.reserved(),
            self.published(),
            self.written(),
            self.flushed(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use crate::Lsn;

    #[test]
    fn lsn_striping_roundtrips_and_is_identity_for_stripe_zero() {
        let l = make_lsn(0, 1234);
        assert_eq!(l, Lsn(1234), "stripe 0 LSNs are raw offsets");
        assert_eq!(stripe_of(l), 0);
        assert_eq!(offset_of(l), 1234);
        let l2 = make_lsn(3, 77);
        assert_eq!(stripe_of(l2), 3);
        assert_eq!(offset_of(l2), 77);
        assert!(l2 > make_lsn(2, u64::MAX >> 9), "stripe dominates ordering");
    }

    #[test]
    fn reservations_are_disjoint_and_watermark_advances_in_order() {
        let s = Stripe::new();
        let a = s.reserve(10);
        let b = s.reserve(20);
        assert_eq!((a, b), (0, 10));
        // Publish out of order: b first, then a. The watermark must wait
        // for a before covering b.
        s.publish(Reservation {
            start: b,
            end: b + 20,
            records: vec![],
        });
        s.drain();
        assert_eq!(s.published(), 0, "gap at [0,10) blocks the watermark");
        s.publish(Reservation {
            start: a,
            end: a + 10,
            records: vec![],
        });
        s.drain();
        assert_eq!(s.published(), 30, "contiguous prefix lands at once");
    }

    #[test]
    fn records_are_retained_in_lsn_order_despite_publish_order() {
        let s = Stripe::new();
        let a = s.reserve(16);
        let b = s.reserve(16);
        let rec = |seq: u64, end: u64, txn: u64| {
            (
                seq,
                StampedRecord {
                    end: Lsn(end),
                    record: LogRecord::Commit { txn },
                },
            )
        };
        s.publish(Reservation {
            start: b,
            end: b + 16,
            records: vec![rec(1, 32, 2)],
        });
        s.publish(Reservation {
            start: a,
            end: a + 16,
            records: vec![rec(0, 16, 1)],
        });
        s.with_records(|rs| {
            let txns: Vec<u64> = rs.iter().filter_map(|(_, r)| r.record.txn()).collect();
            assert_eq!(txns, vec![1, 2], "retained in LSN order");
        });
    }

    #[test]
    fn ring_wraps_without_losing_publishes() {
        let s = Stripe::new();
        let total = RING_SLOTS * 3 + 17;
        for _ in 0..total {
            let start = s.reserve(8);
            s.publish(Reservation {
                start,
                end: start + 8,
                records: vec![],
            });
        }
        s.drain();
        assert_eq!(s.published(), total as u64 * 8);
    }

    #[test]
    fn concurrent_publishes_tile_the_space() {
        let s = std::sync::Arc::new(Stripe::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..500 {
                        let start = s.reserve(8);
                        s.publish(Reservation {
                            start,
                            end: start + 8,
                            records: vec![],
                        });
                    }
                });
            }
        });
        s.drain();
        assert_eq!(s.published(), 8 * 500 * 8);
        assert_eq!(s.reserved(), s.published());
    }
}
