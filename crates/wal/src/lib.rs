//! Write-ahead logging substrates (the paper's Sections 4.1, 4.2, 6.2, 7.5
//! and Appendix B).
//!
//! Two personalities, matching the two engines the paper tuned:
//!
//! * [`mysql::RedoLog`] — InnoDB-style redo with the three
//!   `innodb_flush_log_at_trx_commit` policies: **eager flush** (write +
//!   fsync on the commit path — the `fil_flush` variance source of
//!   Table 1), **lazy flush** (write on commit, background fsync), and
//!   **lazy write** (both deferred to the background flusher).
//! * [`pg::WalWriter`] — Postgres-style WAL where commits serialize on a
//!   single global `WALWriteLock` (`LWLockAcquireOrWait`, 76.8% of
//!   Postgres's latency variance in Table 2), with block-size-dependent
//!   flush costs and the paper's **parallel logging** fix (two log sets on
//!   two devices; a transaction only waits when both are busy, and then on
//!   the one with fewer waiters).

pub mod fault;
pub mod lockfree;
pub mod mysql;
pub mod pg;
pub mod record;
pub mod segment;

pub use fault::WalFaultPlan;
pub use lockfree::AppendMode;
pub use mysql::{FlushPolicy, MysqlWalProbes, RedoLog, RedoLogConfig, RedoStats};
pub use pg::{PgWalProbes, WalWriter, WalWriterConfig, WalWriterStats};
pub use record::{committed_txns, durable_prefix, LogRecord, StampedRecord};
pub use segment::{CheckpointData, CheckpointTable, CrashPhase, FileWal, RecoveredLog};

/// A log sequence number (logical byte offset in the redo stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_orders_and_displays() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(7).to_string(), "lsn:7");
        assert_eq!(Lsn::default(), Lsn(0));
    }
}
