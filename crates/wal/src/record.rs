//! Structured redo records and the crash/recovery contract.
//!
//! The paper's flush-policy study (Section 7.5 / Appendix B) trades
//! durability for predictability: *"both lazy flush and lazy write risk
//! losing forward progress in the event of a crash"*. To make that claim
//! testable rather than rhetorical, the redo log can retain typed records
//! and report exactly which prefix was durable at any moment; a simulated
//! crash returns that prefix and recovery replays it.

use crate::Lsn;

/// One redo record. Rows are full after-images (physical redo), so replay
/// is idempotent and order-insensitive within a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Full after-image of a row update.
    Update {
        /// Transaction id.
        txn: u64,
        /// Table id.
        table: u32,
        /// Row key.
        key: u64,
        /// After-image.
        after: Vec<i64>,
    },
    /// A row insert.
    Insert {
        /// Transaction id.
        txn: u64,
        /// Table id.
        table: u32,
        /// Row key.
        key: u64,
        /// Inserted row.
        row: Vec<i64>,
    },
    /// Transaction commit marker: everything before it for this txn is
    /// part of the committed state.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// A torn tail: the crash interrupted a record mid-write, leaving
    /// `bytes` garbage bytes on the device. Recovery must stop here (the
    /// record's checksum would fail) and must never panic. Only ever the
    /// last element of a crash snapshot.
    Torn {
        /// Bytes of the partial record that made it to the device.
        bytes: u64,
    },
}

impl LogRecord {
    /// Encoded size estimate in bytes (drives flush costs).
    pub fn encoded_len(&self) -> u64 {
        match self {
            LogRecord::Update { after, .. } => 24 + after.len() as u64 * 8,
            LogRecord::Insert { row, .. } => 24 + row.len() as u64 * 8,
            LogRecord::Commit { .. } => 16,
            LogRecord::Torn { bytes } => *bytes,
        }
    }

    /// The transaction this record belongs to (`None` for a torn tail,
    /// whose header never made it to the device intact).
    pub fn txn(&self) -> Option<u64> {
        match self {
            LogRecord::Update { txn, .. }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Commit { txn } => Some(*txn),
            LogRecord::Torn { .. } => None,
        }
    }
}

/// A record stamped with the end-LSN it occupies in the redo stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampedRecord {
    /// End LSN of this record (durable iff `flushed_lsn >= end`).
    pub end: Lsn,
    /// The record.
    pub record: LogRecord,
}

/// The replayable prefix of a crash snapshot: everything before the first
/// torn record. A checksum-verifying reader stops at the tear; anything at
/// or after it is unreadable garbage.
pub fn durable_prefix(records: &[StampedRecord]) -> &[StampedRecord] {
    let cut = records
        .iter()
        .position(|r| matches!(r.record, LogRecord::Torn { .. }))
        .unwrap_or(records.len());
    &records[..cut]
}

/// The set of transactions whose commit marker survived in `records`
/// (which must be a durable log prefix). Commit markers at or beyond a
/// torn tail are unreadable and do not count.
pub fn committed_txns(records: &[StampedRecord]) -> std::collections::HashSet<u64> {
    durable_prefix(records)
        .iter()
        .filter_map(|r| match &r.record {
            LogRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_len_scales_with_row() {
        let small = LogRecord::Update {
            txn: 1,
            table: 0,
            key: 0,
            after: vec![1],
        };
        let big = LogRecord::Update {
            txn: 1,
            table: 0,
            key: 0,
            after: vec![1; 10],
        };
        assert!(big.encoded_len() > small.encoded_len());
        assert_eq!(LogRecord::Commit { txn: 1 }.encoded_len(), 16);
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Commit { txn: 7 }.txn(), Some(7));
        assert_eq!(
            LogRecord::Insert {
                txn: 9,
                table: 1,
                key: 2,
                row: vec![]
            }
            .txn(),
            Some(9)
        );
        assert_eq!(LogRecord::Torn { bytes: 12 }.txn(), None);
    }

    #[test]
    fn durable_prefix_stops_at_tear() {
        let records = vec![
            StampedRecord {
                end: Lsn(16),
                record: LogRecord::Commit { txn: 1 },
            },
            StampedRecord {
                end: Lsn(20),
                record: LogRecord::Torn { bytes: 4 },
            },
            StampedRecord {
                end: Lsn(36),
                record: LogRecord::Commit { txn: 2 },
            },
        ];
        assert_eq!(durable_prefix(&records).len(), 1);
        let c = committed_txns(&records);
        assert!(c.contains(&1));
        assert!(!c.contains(&2), "commit beyond the tear is unreadable");
        assert_eq!(durable_prefix(&[]).len(), 0);
    }

    #[test]
    fn committed_set() {
        let records = vec![
            StampedRecord {
                end: Lsn(10),
                record: LogRecord::Update {
                    txn: 1,
                    table: 0,
                    key: 0,
                    after: vec![5],
                },
            },
            StampedRecord {
                end: Lsn(20),
                record: LogRecord::Commit { txn: 1 },
            },
            StampedRecord {
                end: Lsn(30),
                record: LogRecord::Update {
                    txn: 2,
                    table: 0,
                    key: 1,
                    after: vec![6],
                },
            },
        ];
        let c = committed_txns(&records);
        assert!(c.contains(&1));
        assert!(!c.contains(&2), "no commit marker -> not committed");
    }
}
