//! Postgres-style WAL with a global `WALWriteLock`, and the paper's
//! parallel-logging variant.
//!
//! In Postgres, a committing backend calls `LWLockAcquireOrWait` on the
//! single `WALWriteLock`; the variance of that wait accounts for 76.8% of
//! Postgres's overall transaction-latency variance (Table 2). The holder
//! flushes everything buffered, so blocked backends frequently find their
//! records already durable when the lock releases — group commit.
//!
//! Flush cost is block-quantized: a flush of `b` bytes writes
//! `ceil(b / block_size)` whole blocks. Larger blocks mean fewer device
//! operations but more padding — the trade-off swept in Figure 4 (right).
//!
//! [`WalWriterConfig::sets`] > 1 enables the paper's parallel logging
//! (Section 6.2): multiple independent log sets, each with its own device
//! and lock. A committer takes any free set; when all are busy it waits on
//! the set with the fewest waiters.
//!
//! Two append paths coexist (see [`AppendMode`]):
//!
//! * **Mutex** — backends serialize ticket issue on the set's state mutex
//!   and flushing on the `WALWriteLock`, faithful to the measured
//!   pathology.
//! * **Lockfree** — reserve-then-copy (see [`crate::lockfree`]): a
//!   backend claims its WAL bytes with one `fetch_add` on the set's
//!   reserved cursor, publishes through the sequence-word ring, and
//!   either grabs the set's flush baton or parks until a flush round
//!   covers its bytes. The durability wait is still charged to the
//!   `LWLockAcquireOrWait` probe — it is the same wait, minus the
//!   append-side serialization.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tpd_common::clock::now_nanos;
use tpd_common::disk::DiskDevice;
use tpd_metrics::{Histogram, HistogramSnapshot};
use tpd_profiler::{FuncId, Profiler};

use crate::lockfree::{AppendMode, Reservation, Stripe};

/// Configuration for the WAL writer.
#[derive(Debug, Clone)]
pub struct WalWriterConfig {
    /// Number of independent log sets (1 = stock Postgres; 2 = the paper's
    /// parallel logging).
    pub sets: usize,
    /// WAL block size in bytes (Postgres default 8 KiB).
    pub block_size: u64,
    /// Fixed cost per block written (write(2) syscall + device command
    /// overhead), spent on the flush critical path. This is what larger
    /// blocks amortize in the Fig. 4 sweep.
    pub per_block_overhead: std::time::Duration,
    /// Injected WAL faults. Only `ack_before_flush` applies to this
    /// personality: commit takes its ticket and returns without flushing,
    /// so acked bytes sit in the pending batch until someone else's
    /// commit flushes them.
    pub faults: Option<crate::WalFaultPlan>,
    /// Append path: mutex-serialized (paper-faithful) or reserve-then-copy.
    pub append: AppendMode,
    /// Allow committers to park and share another backend's fsync
    /// (lockfree path only; the mutex path always groups behind the
    /// WALWriteLock).
    pub group_commit: bool,
}

impl Default for WalWriterConfig {
    fn default() -> Self {
        WalWriterConfig {
            sets: 1,
            block_size: 8 * 1024,
            per_block_overhead: std::time::Duration::from_micros(150),
            faults: None,
            append: AppendMode::Lockfree,
            group_commit: true,
        }
    }
}

/// Profiler hookup for the paper-named probe site.
#[derive(Debug, Clone)]
pub struct PgWalProbes {
    /// The engine's profiler.
    pub profiler: Arc<Profiler>,
    /// `LWLockAcquireOrWait` — wait for the WALWriteLock.
    pub lwlock_acquire: FuncId,
}

/// Cumulative statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalWriterStats {
    /// Commit calls.
    pub commits: u64,
    /// Device flush operations (sum over sets).
    pub flushes: u64,
    /// Commits satisfied by another backend's flush.
    pub group_commits: u64,
    /// Blocks written (including padding).
    pub blocks_written: u64,
    /// Payload bytes requested (before padding).
    pub bytes_requested: u64,
    /// Total ns spent waiting for a WALWriteLock.
    pub lock_wait_ns: u64,
}

#[derive(Debug, Default)]
struct SetState {
    /// Ticket counter: each commit takes a ticket before flushing.
    next_ticket: u64,
    /// Highest ticket whose bytes are durable.
    flushed_ticket: u64,
    /// Bytes pending (appended by ticket holders, not yet flushed).
    pending_bytes: u64,
}

#[derive(Debug)]
struct LogSet {
    disk: Arc<dyn DiskDevice>,
    /// The WALWriteLock for this set (mutex append path).
    write_lock: Mutex<()>,
    state: Mutex<SetState>,
    waiters: AtomicUsize,
    /// Lock-free reservation state (lockfree append path; the typed
    /// record machinery is unused here — pg commits are byte-counted).
    stripe: Stripe,
}

/// The WAL writer. See module docs.
#[derive(Debug)]
pub struct WalWriter {
    sets: Vec<LogSet>,
    config: WalWriterConfig,
    probes: Option<PgWalProbes>,
    commits: AtomicU64,
    flushes: AtomicU64,
    group_commits: AtomicU64,
    blocks_written: AtomicU64,
    bytes_requested: AtomicU64,
    lock_wait_ns: AtomicU64,
    /// WALWriteLock wait per commit (ns).
    lock_wait_hist: Histogram,
    /// Blocks written per flush batch (including padding).
    batch_hist: Histogram,
    /// Append-path reservation latency (ns).
    reserve_hist: Histogram,
    /// Commits acknowledged per fsync (group-commit batch size).
    group_batch_hist: Histogram,
}

impl WalWriter {
    /// Create a writer with one device per set.
    pub fn new(
        config: WalWriterConfig,
        disks: Vec<Arc<dyn DiskDevice>>,
        probes: Option<PgWalProbes>,
    ) -> Self {
        assert!(config.sets >= 1, "need at least one log set");
        assert_eq!(disks.len(), config.sets, "one device per log set required");
        assert!(config.block_size > 0);
        WalWriter {
            sets: disks
                .into_iter()
                .map(|disk| LogSet {
                    disk,
                    write_lock: Mutex::new(()),
                    state: Mutex::new(SetState::default()),
                    waiters: AtomicUsize::new(0),
                    stripe: Stripe::new(),
                })
                .collect(),
            config,
            probes,
            commits: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            blocks_written: AtomicU64::new(0),
            bytes_requested: AtomicU64::new(0),
            lock_wait_ns: AtomicU64::new(0),
            lock_wait_hist: Histogram::new(),
            batch_hist: Histogram::new(),
            reserve_hist: Histogram::new(),
            group_batch_hist: Histogram::new(),
        }
    }

    /// Commit `bytes` of WAL durably. Returns ns spent on the commit path.
    pub fn commit(&self, bytes: u64) -> u64 {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.bytes_requested.fetch_add(bytes, Ordering::Relaxed);
        match self.config.append {
            AppendMode::Mutex => self.commit_mutex(bytes),
            AppendMode::Lockfree => self.commit_lockfree(bytes),
        }
    }

    /// Paper-faithful commit path: ticket under the state mutex, flush
    /// under the WALWriteLock.
    fn commit_mutex(&self, bytes: u64) -> u64 {
        let start = now_nanos();

        let set_idx = self.choose_set();
        let set = &self.sets[set_idx];

        // Take a ticket: our bytes are now part of the set's pending batch.
        let my_ticket = {
            let mut st = set.state.lock();
            st.next_ticket += 1;
            st.pending_bytes += bytes;
            st.next_ticket
        };

        if self
            .config
            .faults
            .as_ref()
            .is_some_and(|f| f.ack_before_flush)
        {
            // Seeded bug: acknowledge with the bytes still pending.
            let _ = my_ticket;
            return now_nanos() - start;
        }

        // LWLockAcquireOrWait: either we acquire and flush, or we wait and
        // discover the holder flushed us.
        let lock_start = now_nanos();
        set.waiters.fetch_add(1, Ordering::Relaxed);
        let guard = set.write_lock.lock();
        set.waiters.fetch_sub(1, Ordering::Relaxed);
        let lock_wait = now_nanos() - lock_start;
        self.lock_wait_ns.fetch_add(lock_wait, Ordering::Relaxed);
        self.lock_wait_hist.record(lock_wait);
        if let Some(p) = &self.probes {
            p.profiler
                .add_event(p.lwlock_acquire, lock_start, lock_wait);
        }

        // Group commit: flushed while we waited?
        let (to_flush, flush_upto) = {
            let mut st = set.state.lock();
            if st.flushed_ticket >= my_ticket {
                self.group_commits.fetch_add(1, Ordering::Relaxed);
                drop(st);
                drop(guard);
                return now_nanos() - start;
            }
            let b = st.pending_bytes;
            st.pending_bytes = 0;
            (b, st.next_ticket)
        };

        // Flush block-quantized bytes: one sequential device write of the
        // padded batch, a per-block syscall/command overhead, then fsync.
        let blocks = to_flush.div_ceil(self.config.block_size).max(1);
        set.disk.write(blocks * self.config.block_size);
        if !self.config.per_block_overhead.is_zero() {
            // Modeled time: real sleep normally, logical-clock bump under
            // the harness's virtual clock.
            let cost = self.config.per_block_overhead * blocks as u32;
            tpd_common::clock::advance(cost.as_nanos() as u64);
        }
        set.disk.flush(0);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.blocks_written.fetch_add(blocks, Ordering::Relaxed);
        self.batch_hist.record(blocks);
        {
            let mut st = set.state.lock();
            st.flushed_ticket = st.flushed_ticket.max(flush_upto);
        }
        drop(guard);
        now_nanos() - start
    }

    /// Reserve-then-copy commit path: claim bytes with one `fetch_add`,
    /// publish, then either flush (baton) or park until flushed.
    fn commit_lockfree(&self, bytes: u64) -> u64 {
        let start = now_nanos();

        let set_idx = self.choose_set_lockfree();
        let set = &self.sets[set_idx];

        // Even a "zero-byte" commit carries a commit record on the wire.
        let bytes = bytes.max(1);
        let res_start = set.stripe.reserve(bytes);
        let end = res_start + bytes;
        set.stripe.publish(Reservation {
            start: res_start,
            end,
            records: Vec::new(),
        });
        self.reserve_hist.record(now_nanos() - start);

        if self
            .config
            .faults
            .as_ref()
            .is_some_and(|f| f.ack_before_flush)
        {
            // Seeded bug: acknowledge with the bytes still pending.
            return now_nanos() - start;
        }

        // The durability wait — the same wait LWLockAcquireOrWait charged,
        // minus the append-side serialization.
        let wait_start = now_nanos();
        if set.stripe.flushed() >= end {
            self.group_commits.fetch_add(1, Ordering::Relaxed);
        } else {
            set.stripe.acks_pending.fetch_add(1, Ordering::SeqCst);
            // A flush round (even our own) may not cover our bytes: a
            // concurrent backend holding a lower reservation that has not
            // yet published blocks the watermark below us. Loop until
            // some round lands past our bytes.
            let mut flushed_self = false;
            loop {
                if set.stripe.flushed() >= end {
                    if !flushed_self {
                        self.group_commits.fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                if let Some(_baton) = set.stripe.try_baton() {
                    self.flush_set_round(set);
                    flushed_self = true;
                } else if self.config.group_commit {
                    set.stripe.park_round(|| set.stripe.flushed() >= end);
                } else {
                    std::thread::yield_now();
                }
            }
        }
        let lock_wait = now_nanos() - wait_start;
        self.lock_wait_ns.fetch_add(lock_wait, Ordering::Relaxed);
        self.lock_wait_hist.record(lock_wait);
        if let Some(p) = &self.probes {
            p.profiler
                .add_event(p.lwlock_acquire, wait_start, lock_wait);
        }
        now_nanos() - start
    }

    /// Requires the set's baton: drain, write the padded block batch for
    /// `published − flushed`, fsync, account the batch, wake waiters.
    fn flush_set_round(&self, set: &LogSet) {
        set.stripe.drain();
        let target = set.stripe.published();
        let flushed = set.stripe.flushed();
        if target <= flushed {
            set.stripe.wake_all();
            return;
        }
        let blocks = (target - flushed).div_ceil(self.config.block_size).max(1);
        set.disk.write(blocks * self.config.block_size);
        if !self.config.per_block_overhead.is_zero() {
            let cost = self.config.per_block_overhead * blocks as u32;
            tpd_common::clock::advance(cost.as_nanos() as u64);
        }
        set.disk.flush(0);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        self.blocks_written.fetch_add(blocks, Ordering::Relaxed);
        self.batch_hist.record(blocks);
        set.stripe.set_written(target);
        set.stripe.set_flushed(target);
        let acked = set.stripe.acks_pending.swap(0, Ordering::SeqCst);
        if acked > 0 {
            self.group_batch_hist.record(acked);
        }
        set.stripe.wake_all();
    }

    /// Pick a log set: any immediately free one, else the one with the
    /// fewest waiters (the paper's rule).
    fn choose_set(&self) -> usize {
        if self.sets.len() == 1 {
            return 0;
        }
        for (i, set) in self.sets.iter().enumerate() {
            if let Some(g) = set.write_lock.try_lock() {
                drop(g); // probing only; the real acquisition happens later
                return i;
            }
        }
        self.sets
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.waiters.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .expect("at least one set")
    }

    /// Lockfree analogue of [`WalWriter::choose_set`]: a set whose flush
    /// baton is free, else the one with the fewest parked committers.
    fn choose_set_lockfree(&self) -> usize {
        if self.sets.len() == 1 {
            return 0;
        }
        for (i, set) in self.sets.iter().enumerate() {
            if let Some(g) = set.stripe.try_baton() {
                drop(g); // probing only
                return i;
            }
        }
        self.sets
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.stripe.acks_pending.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .expect("at least one set")
    }

    /// Number of configured log sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// The active append mode.
    pub fn append_mode(&self) -> AppendMode {
        self.config.append
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> WalWriterStats {
        WalWriterStats {
            commits: self.commits.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            bytes_requested: self.bytes_requested.load(Ordering::Relaxed),
            lock_wait_ns: self.lock_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the WALWriteLock wait histogram (ns per commit).
    pub fn lock_wait_histogram(&self) -> HistogramSnapshot {
        self.lock_wait_hist.snapshot()
    }

    /// Snapshot of the flush batch-size histogram (blocks per flush).
    pub fn batch_histogram(&self) -> HistogramSnapshot {
        self.batch_hist.snapshot()
    }

    /// Snapshot of the append-path reservation latency histogram (ns).
    pub fn reserve_histogram(&self) -> HistogramSnapshot {
        self.reserve_hist.snapshot()
    }

    /// Snapshot of the commits-acked-per-fsync histogram.
    pub fn group_commit_batch_histogram(&self) -> HistogramSnapshot {
        self.group_batch_hist.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpd_common::dist::ServiceTime;
    use tpd_common::{DiskConfig, SimDisk};

    fn fast_disk(seed: u64) -> Arc<dyn DiskDevice> {
        Arc::new(SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(50_000),
            ns_per_byte: 0.0,
            seed,
        }))
    }

    fn writer_with(sets: usize, block: u64, append: AppendMode) -> WalWriter {
        let disks = (0..sets).map(|i| fast_disk(i as u64)).collect();
        WalWriter::new(
            WalWriterConfig {
                sets,
                block_size: block,
                per_block_overhead: std::time::Duration::ZERO,
                append,
                ..Default::default()
            },
            disks,
            None,
        )
    }

    fn writer(sets: usize, block: u64) -> WalWriter {
        writer_with(sets, block, AppendMode::Lockfree)
    }

    #[test]
    fn single_commit_flushes_one_padded_block() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let w = writer_with(1, 8192, append);
            let t = w.commit(100);
            assert!(t >= 100_000, "write + flush, got {t}");
            let s = w.stats();
            assert_eq!(s.commits, 1);
            assert_eq!(s.flushes, 1);
            assert_eq!(s.blocks_written, 1, "100 bytes pads to one block");
            assert_eq!(s.bytes_requested, 100);
        }
    }

    #[test]
    fn large_commit_writes_multiple_blocks() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let w = writer_with(1, 4096, append);
            w.commit(10_000);
            assert_eq!(w.stats().blocks_written, 3, "ceil(10000/4096)");
        }
    }

    #[test]
    fn concurrent_commits_group() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let w = Arc::new(writer_with(1, 8192, append));
            let mut handles = Vec::new();
            for _ in 0..8 {
                let w = w.clone();
                handles.push(std::thread::spawn(move || {
                    w.commit(64);
                }));
            }
            for h in handles {
                h.join().expect("committer");
            }
            let s = w.stats();
            assert_eq!(s.commits, 8);
            assert!(s.flushes < 8, "{} flushes for 8 commits", s.flushes);
            assert!(s.group_commits > 0);
        }
    }

    #[test]
    fn parallel_logging_uses_both_sets() {
        let w = Arc::new(writer(2, 8192));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let w = w.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..4 {
                    w.commit(64);
                }
            }));
        }
        for h in handles {
            h.join().expect("committer");
        }
        assert_eq!(w.set_count(), 2);
        let s = w.stats();
        assert_eq!(s.commits, 64);
        // Both devices must have seen traffic: total flushes spread. We can
        // only check aggregate here; per-set spread is visible via each
        // disk's stats in the engine integration tests.
        assert!(s.flushes >= 2);
    }

    #[test]
    fn zero_byte_commit_still_flushes_a_block() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let w = writer_with(1, 8192, append);
            w.commit(0);
            assert_eq!(w.stats().blocks_written, 1);
        }
    }

    #[test]
    #[should_panic(expected = "one device per log set")]
    fn wrong_disk_count_rejected() {
        WalWriter::new(
            WalWriterConfig {
                sets: 2,
                block_size: 8192,
                per_block_overhead: std::time::Duration::ZERO,
                ..Default::default()
            },
            vec![fast_disk(1)],
            None,
        );
    }

    #[test]
    fn ack_before_flush_bug_leaves_bytes_pending() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let w = WalWriter::new(
                WalWriterConfig {
                    sets: 1,
                    block_size: 8192,
                    per_block_overhead: std::time::Duration::ZERO,
                    faults: Some(crate::WalFaultPlan {
                        ack_before_flush: true,
                        ..Default::default()
                    }),
                    append,
                    ..Default::default()
                },
                vec![fast_disk(1)],
                None,
            );
            let t = w.commit(100);
            assert!(t < 25_000, "no flush on the commit path: {t} ns");
            let s = w.stats();
            assert_eq!(s.commits, 1);
            assert_eq!(s.flushes, 0, "the acked bytes were never made durable");
        }
    }

    #[test]
    fn group_batch_histogram_counts_solo_commits() {
        let w = writer(1, 8192);
        for _ in 0..3 {
            w.commit(64);
        }
        let h = w.group_commit_batch_histogram();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 3);
        assert_eq!(w.reserve_histogram().count, 3);
    }
}
