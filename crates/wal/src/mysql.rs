//! InnoDB-style redo logging.
//!
//! Transactions append redo bytes to a shared log buffer during execution;
//! at commit, durability is governed by [`FlushPolicy`] (MySQL's
//! `innodb_flush_log_at_trx_commit`, studied in Section 7.5 / Appendix B):
//!
//! * [`FlushPolicy::Eager`] — the committing thread writes and fsyncs
//!   before acknowledging. The fsync is the paper's `fil_flush` probe site.
//!   Concurrent committers group-commit: whoever holds the flush lock
//!   flushes everything buffered, and the rest observe their LSN is already
//!   durable.
//! * [`FlushPolicy::LazyFlush`] — the committer writes (into the OS cache)
//!   but fsync is deferred to a background flusher thread.
//! * [`FlushPolicy::LazyWrite`] — both write and fsync are deferred; commit
//!   never touches the device.
//!
//! Both lazy modes risk losing the last interval's commits on a crash, as
//! the paper notes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use tpd_common::clock::now_nanos;
use tpd_common::disk::SimDisk;
use tpd_metrics::{Histogram, HistogramSnapshot};
use tpd_profiler::{FuncId, Profiler};

use crate::record::{LogRecord, StampedRecord};
use crate::Lsn;

/// Commit durability policy (`innodb_flush_log_at_trx_commit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Write + fsync on the commit path (fully durable).
    Eager,
    /// Write on commit; fsync by the background flusher.
    LazyFlush,
    /// Write and fsync both deferred to the background flusher.
    LazyWrite,
}

/// Redo log configuration.
#[derive(Debug, Clone)]
pub struct RedoLogConfig {
    /// Durability policy.
    pub policy: FlushPolicy,
    /// Background flusher period for the lazy policies (MySQL uses ~1 s;
    /// scaled down to suit microsecond-scale transactions).
    pub flush_interval: Duration,
    /// Injected WAL faults (crash points, torn tails, ack-before-flush).
    pub faults: Option<crate::WalFaultPlan>,
    /// Suppress the background flusher for the lazy policies; the owner
    /// drives flushing via [`RedoLog::flush_now`]. The deterministic
    /// harness needs this: with no second thread, every flush happens at a
    /// seeded point on the driver thread and the run is replayable.
    pub manual_flush: bool,
}

impl Default for RedoLogConfig {
    fn default() -> Self {
        RedoLogConfig {
            policy: FlushPolicy::Eager,
            flush_interval: Duration::from_millis(10),
            faults: None,
            manual_flush: false,
        }
    }
}

/// Profiler hookup for the redo log's paper-named probe site.
#[derive(Debug, Clone)]
pub struct MysqlWalProbes {
    /// The engine's profiler.
    pub profiler: Arc<Profiler>,
    /// `fil_flush` — the commit-path fsync.
    pub fil_flush: FuncId,
}

/// Cumulative redo-log statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedoStats {
    /// Bytes appended to the log buffer.
    pub bytes_appended: u64,
    /// Commit calls.
    pub commits: u64,
    /// Device flush operations.
    pub flushes: u64,
    /// Commits satisfied by another transaction's flush (group commit).
    pub group_commits: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Total ns commit paths spent achieving durability.
    pub commit_wait_ns: u64,
}

#[derive(Debug, Default)]
struct BufferState {
    next_lsn: u64,
    /// Bytes appended but not yet written to the device.
    unwritten: u64,
    written_lsn: u64,
    flushed_lsn: u64,
    /// Typed records retained for crash/recovery simulation (all appended
    /// records; durability is judged against `flushed_lsn` at crash time).
    records: Vec<StampedRecord>,
}

/// The redo log. See module docs.
#[derive(Debug)]
pub struct RedoLog {
    disk: Arc<SimDisk>,
    config: RedoLogConfig,
    state: Mutex<BufferState>,
    /// Serializes device write+fsync so committers group-commit behind the
    /// current flusher.
    flush_lock: Mutex<()>,
    shutdown: Arc<AtomicBool>,
    shutdown_cv: Arc<(Mutex<bool>, Condvar)>,
    flusher: Option<std::thread::JoinHandle<()>>,
    probes: Option<MysqlWalProbes>,
    bytes_appended: AtomicU64,
    commits: AtomicU64,
    flushes: AtomicU64,
    group_commits: AtomicU64,
    bytes_written: AtomicU64,
    commit_wait_ns: AtomicU64,
    /// Fsync latency per flush (ns).
    fsync_hist: Histogram,
    /// Bytes written to the device per flush batch.
    batch_hist: Histogram,
}

impl RedoLog {
    /// Create a redo log; lazy policies spawn the background flusher.
    pub fn new(
        config: RedoLogConfig,
        disk: Arc<SimDisk>,
        probes: Option<MysqlWalProbes>,
    ) -> Arc<Self> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_cv = Arc::new((Mutex::new(false), Condvar::new()));
        let mut log = RedoLog {
            disk,
            config: config.clone(),
            state: Mutex::new(BufferState::default()),
            flush_lock: Mutex::new(()),
            shutdown,
            shutdown_cv,
            flusher: None,
            probes,
            bytes_appended: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            commit_wait_ns: AtomicU64::new(0),
            fsync_hist: Histogram::new(),
            batch_hist: Histogram::new(),
        };
        if matches!(config.policy, FlushPolicy::Eager) || config.manual_flush {
            return Arc::new(log);
        }
        // Lazy policies: cyclic Arc via a placeholder then spawn.
        let arc = Arc::new_cyclic(|weak: &std::sync::Weak<RedoLog>| {
            let weak = weak.clone();
            let shutdown = log.shutdown.clone();
            let cv = log.shutdown_cv.clone();
            let interval = config.flush_interval;
            log.flusher = Some(std::thread::spawn(move || loop {
                {
                    let (lock, cvar) = &*cv;
                    let mut stop = lock.lock();
                    if !*stop {
                        cvar.wait_for(&mut stop, interval);
                    }
                }
                if shutdown.load(Ordering::Acquire) {
                    // One final flush so shutdown is durable.
                    if let Some(log) = weak.upgrade() {
                        log.write_and_flush_pending();
                    }
                    return;
                }
                if let Some(log) = weak.upgrade() {
                    log.write_and_flush_pending();
                } else {
                    return;
                }
            }));
            log
        });
        arc
    }

    /// The active policy.
    pub fn policy(&self) -> FlushPolicy {
        self.config.policy
    }

    /// Append `bytes` of redo for a transaction; returns the end LSN that
    /// commit must make durable (eager) or acknowledge (lazy).
    pub fn append(&self, bytes: u64) -> Lsn {
        let mut st = self.state.lock();
        st.next_lsn += bytes;
        st.unwritten += bytes;
        self.bytes_appended.fetch_add(bytes, Ordering::Relaxed);
        Lsn(st.next_lsn)
    }

    /// Append typed records (retained for recovery) plus `extra_bytes` of
    /// untyped payload (e.g. amplification modeling index/page images).
    /// Returns the end LSN of the batch.
    pub fn append_records(&self, records: Vec<LogRecord>, extra_bytes: u64) -> Lsn {
        let mut st = self.state.lock();
        let mut bytes = extra_bytes;
        for r in records {
            let len = r.encoded_len();
            bytes += len;
            st.next_lsn += len;
            let end = Lsn(st.next_lsn);
            st.records.push(StampedRecord { end, record: r });
        }
        st.next_lsn += extra_bytes;
        st.unwritten += bytes;
        self.bytes_appended.fetch_add(bytes, Ordering::Relaxed);
        Lsn(st.next_lsn)
    }

    /// Simulate a crash: return exactly the records that were durable
    /// (end-LSN within the flushed prefix) at this instant. Lazy policies
    /// can lose recently-committed transactions — the trade-off the
    /// paper's flush-policy tuning accepts.
    ///
    /// With [`crate::WalFaultPlan::torn_tail`] armed and a record in
    /// flight past the flushed prefix, the snapshot ends with a partial
    /// [`LogRecord::Torn`] tail: the crash interrupted that record's write,
    /// and a recovery reader sees garbage where its checksum should be.
    pub fn simulate_crash(&self) -> Vec<StampedRecord> {
        let st = self.state.lock();
        let mut durable: Vec<StampedRecord> = st
            .records
            .iter()
            .filter(|r| r.end.0 <= st.flushed_lsn)
            .cloned()
            .collect();
        if self.config.faults.as_ref().is_some_and(|f| f.torn_tail) {
            if let Some(first_lost) = st.records.iter().find(|r| r.end.0 > st.flushed_lsn) {
                // Half the record (header included) made it to the device.
                let bytes = (first_lost.record.encoded_len() / 2).max(1);
                durable.push(StampedRecord {
                    end: Lsn(st.flushed_lsn + bytes),
                    record: LogRecord::Torn { bytes },
                });
            }
        }
        durable
    }

    /// Whether an armed [`crate::WalFaultPlan::crash_at_lsn`] point has
    /// been reached. The harness polls this between operations and calls
    /// the engine's crash path when it fires.
    pub fn crash_armed(&self) -> bool {
        match self.config.faults.as_ref().and_then(|f| f.crash_at_lsn) {
            Some(lsn) => self.state.lock().next_lsn >= lsn,
            None => false,
        }
    }

    /// Write + fsync everything pending. The manual-flush analogue of one
    /// background-flusher tick, called by the harness at seeded points.
    pub fn flush_now(&self) {
        self.write_and_flush_pending();
    }

    /// Commit: make `lsn` durable according to the policy. Returns the time
    /// spent waiting on durability (0 for the lazy policies' fast paths).
    pub fn commit(&self, lsn: Lsn) -> u64 {
        self.commits.fetch_add(1, Ordering::Relaxed);
        let start = now_nanos();
        match self.config.policy {
            FlushPolicy::Eager => {
                if self
                    .config
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.ack_before_flush)
                {
                    // Seeded bug: write, skip the fsync, acknowledge. The
                    // torture checker must flag the resulting losses.
                    self.ensure_written(lsn);
                } else {
                    self.ensure_flushed(lsn);
                }
            }
            FlushPolicy::LazyFlush => {
                // Write into the OS cache on the commit path; no fsync.
                self.ensure_written(lsn);
            }
            FlushPolicy::LazyWrite => {
                // Nothing: the flusher does both.
            }
        }
        let waited = now_nanos() - start;
        self.commit_wait_ns.fetch_add(waited, Ordering::Relaxed);
        waited
    }

    /// Write buffered bytes up to at least `lsn` into the device cache.
    fn ensure_written(&self, lsn: Lsn) {
        loop {
            let to_write = {
                let mut st = self.state.lock();
                if st.written_lsn >= lsn.0 {
                    return;
                }
                let n = st.unwritten;
                st.written_lsn = st.next_lsn;
                st.unwritten = 0;
                n
            };
            if to_write > 0 {
                self.disk.write(to_write);
                self.bytes_written.fetch_add(to_write, Ordering::Relaxed);
            }
            // Loop re-checks in case new bytes raced in below our lsn —
            // cannot happen since lsn was assigned before, but stay safe.
            let st = self.state.lock();
            if st.written_lsn >= lsn.0 {
                return;
            }
        }
    }

    /// Write + fsync everything up to at least `lsn` (group commit).
    fn ensure_flushed(&self, lsn: Lsn) {
        {
            let st = self.state.lock();
            if st.flushed_lsn >= lsn.0 {
                self.group_commits.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let _g = self.flush_lock.lock();
        // Re-check: the previous holder may have flushed us (group commit).
        {
            let st = self.state.lock();
            if st.flushed_lsn >= lsn.0 {
                self.group_commits.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.write_and_flush_pending_locked();
    }

    /// Background entry point: take the flush lock and flush pending bytes.
    fn write_and_flush_pending(&self) {
        let _g = self.flush_lock.lock();
        self.write_and_flush_pending_locked();
    }

    /// Requires the flush lock. Writes all unwritten bytes, then fsyncs.
    fn write_and_flush_pending_locked(&self) {
        let (to_write, target_lsn) = {
            let mut st = self.state.lock();
            let n = st.unwritten;
            st.written_lsn = st.next_lsn;
            st.unwritten = 0;
            (n, st.next_lsn)
        };
        if to_write > 0 {
            self.disk.write(to_write);
            self.bytes_written.fetch_add(to_write, Ordering::Relaxed);
        }
        {
            let st = self.state.lock();
            if st.flushed_lsn >= target_lsn {
                return;
            }
        }
        self.batch_hist.record(to_write);
        // The fsync: the paper's `fil_flush`.
        let t0 = now_nanos();
        self.disk.flush(0);
        let dur = now_nanos() - t0;
        if let Some(p) = &self.probes {
            p.profiler.add_event(p.fil_flush, t0, dur);
        }
        self.fsync_hist.record(dur);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        st.flushed_lsn = st.flushed_lsn.max(target_lsn);
    }

    /// Durable LSN (for tests and recovery assertions).
    pub fn flushed_lsn(&self) -> Lsn {
        Lsn(self.state.lock().flushed_lsn)
    }

    /// Snapshot of the fsync-latency histogram (ns per flush).
    pub fn fsync_histogram(&self) -> HistogramSnapshot {
        self.fsync_hist.snapshot()
    }

    /// Snapshot of the flush batch-size histogram (bytes per flush).
    pub fn batch_histogram(&self) -> HistogramSnapshot {
        self.batch_hist.snapshot()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RedoStats {
        RedoStats {
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            commit_wait_ns: self.commit_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Stop the background flusher (if any), flushing once more first.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let (lock, cvar) = &*self.shutdown_cv;
        let mut stop = lock.lock();
        *stop = true;
        cvar.notify_all();
    }
}

impl Drop for RedoLog {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpd_common::dist::ServiceTime;
    use tpd_common::DiskConfig;

    fn fast_disk() -> Arc<SimDisk> {
        Arc::new(SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(50_000),
            ns_per_byte: 0.0,
            seed: 3,
        }))
    }

    #[test]
    fn eager_commit_is_durable() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(100);
        let waited = log.commit(lsn);
        assert!(waited >= 50_000, "commit waited for I/O: {waited}");
        assert!(log.flushed_lsn() >= lsn);
        let s = log.stats();
        assert_eq!(s.commits, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.bytes_written, 100);
    }

    #[test]
    fn group_commit_batches_concurrent_flushes() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let mut handles = Vec::new();
        for _ in 0..8 {
            let log = log.clone();
            handles.push(std::thread::spawn(move || {
                let lsn = log.append(64);
                log.commit(lsn);
                assert!(log.flushed_lsn() >= lsn);
            }));
        }
        for h in handles {
            h.join().expect("committer");
        }
        let s = log.stats();
        assert_eq!(s.commits, 8);
        assert!(
            s.flushes < 8,
            "grouping must reduce flushes: {} flushes",
            s.flushes
        );
        assert!(s.flushes + s.group_commits >= 8 - s.flushes);
    }

    #[test]
    fn lazy_flush_commit_writes_but_does_not_fsync() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyFlush,
                flush_interval: Duration::from_millis(5),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(128);
        log.commit(lsn);
        // Written but (likely) not yet flushed by the committer itself.
        assert_eq!(log.stats().bytes_written, 128);
        // The background flusher catches up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "flusher never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        log.shutdown();
    }

    #[test]
    fn lazy_write_commit_touches_nothing() {
        let disk = fast_disk();
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_millis(5),
                ..Default::default()
            },
            disk.clone(),
            None,
        );
        let lsn = log.append(256);
        let waited = log.commit(lsn);
        assert!(waited < 5_000_000, "lazy-write commit must be fast");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "flusher never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(log.stats().bytes_written, 256);
        log.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_secs(3600), // effectively never
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(64);
        log.commit(lsn);
        log.shutdown();
        // Drop joins the flusher, which flushes one final time.
        let log2 = log.clone();
        drop(log);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log2.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "final flush missing");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn manual_flush_spawns_no_thread_and_flushes_on_demand() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_micros(1), // would race if spawned
                manual_flush: true,
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.commit(lsn);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(log.flushed_lsn(), Lsn(0), "nothing flushes on its own");
        log.flush_now();
        assert!(log.flushed_lsn() >= lsn);
        assert_eq!(log.simulate_crash().len(), 1);
    }

    #[test]
    fn torn_tail_appears_past_flushed_prefix() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                manual_flush: true,
                faults: Some(crate::WalFaultPlan {
                    torn_tail: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let flushed = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.flush_now();
        log.append_records(
            vec![
                LogRecord::Update {
                    txn: 2,
                    table: 0,
                    key: 9,
                    after: vec![1, 2],
                },
                LogRecord::Commit { txn: 2 },
            ],
            0,
        );
        let snap = log.simulate_crash();
        assert_eq!(snap.len(), 2, "flushed commit + torn tail");
        assert!(matches!(snap[1].record, LogRecord::Torn { .. }));
        assert!(snap[1].end > flushed);
        let c = crate::committed_txns(&snap);
        assert!(c.contains(&1) && !c.contains(&2));
    }

    #[test]
    fn no_torn_tail_when_everything_flushed() {
        let log = RedoLog::new(
            RedoLogConfig {
                faults: Some(crate::WalFaultPlan {
                    torn_tail: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.commit(lsn);
        let snap = log.simulate_crash();
        assert_eq!(snap.len(), 1, "no record in flight, no tear");
    }

    #[test]
    fn crash_at_lsn_arms_when_log_grows_past_it() {
        let log = RedoLog::new(
            RedoLogConfig {
                faults: Some(crate::WalFaultPlan {
                    crash_at_lsn: Some(50),
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        assert!(!log.crash_armed());
        log.append(40);
        assert!(!log.crash_armed());
        log.append(40);
        assert!(log.crash_armed());
    }

    #[test]
    fn ack_before_flush_bug_loses_acked_commits() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                faults: Some(crate::WalFaultPlan {
                    ack_before_flush: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.commit(lsn); // "eager" commit acks without fsync
        assert!(log.flushed_lsn() < lsn, "fsync was skipped");
        assert!(
            crate::committed_txns(&log.simulate_crash()).is_empty(),
            "the acked commit is gone after a crash"
        );
    }

    #[test]
    fn append_assigns_monotone_lsns() {
        let log = RedoLog::new(RedoLogConfig::default(), fast_disk(), None);
        let a = log.append(10);
        let b = log.append(20);
        assert!(b > a);
        assert_eq!(b, Lsn(30));
    }

    #[test]
    fn already_durable_commit_is_free() {
        let log = RedoLog::new(RedoLogConfig::default(), fast_disk(), None);
        let lsn = log.append(10);
        log.commit(lsn);
        let waited = log.commit(lsn); // second commit of same lsn
        assert!(waited < 1_000_000, "no second flush: {waited}");
        assert_eq!(log.stats().group_commits, 1);
    }
}
