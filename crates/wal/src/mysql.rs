//! InnoDB-style redo logging.
//!
//! Transactions append redo bytes to a shared log buffer during execution;
//! at commit, durability is governed by [`FlushPolicy`] (MySQL's
//! `innodb_flush_log_at_trx_commit`, studied in Section 7.5 / Appendix B):
//!
//! * [`FlushPolicy::Eager`] — the committing thread writes and fsyncs
//!   before acknowledging. The fsync is the paper's `fil_flush` probe site.
//!   Concurrent committers group-commit: whoever holds the flush baton
//!   flushes everything buffered, and the rest observe their LSN is already
//!   durable.
//! * [`FlushPolicy::LazyFlush`] — the committer writes (into the OS cache)
//!   but fsync is deferred to a background flusher thread.
//! * [`FlushPolicy::LazyWrite`] — both write and fsync are deferred; commit
//!   never touches the device.
//!
//! Both lazy modes risk losing the last interval's commits on a crash, as
//! the paper notes.
//!
//! Two append paths coexist (see [`AppendMode`]):
//!
//! * **Mutex** — every append serializes through `Mutex<BufferState>`,
//!   faithful to the contention pathology the paper measured (Table 1).
//! * **Lockfree** — reserve-then-copy (see [`crate::lockfree`]): appends
//!   claim LSN ranges with one `fetch_add` and publish through a
//!   sequence-word ring; committers share fsyncs via a flush baton and a
//!   parked waiter list. [`RedoLogConfig::writers`] > 1 stripes records
//!   across K parallel logs by transaction id, with **epoch-ordered
//!   commit acks**: each fsync closes a global epoch, and a commit is
//!   acknowledged only once every stripe's flush epoch has caught up with
//!   the epoch observed at its own flush — so an ack implies every
//!   earlier-epoch commit on every log is durable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use tpd_common::clock::now_nanos;
use tpd_common::disk::DiskDevice;
use tpd_metrics::{Histogram, HistogramSnapshot};
use tpd_profiler::{FuncId, Profiler};

use crate::lockfree::{make_lsn, offset_of, stripe_of, AppendMode, Reservation, Stripe};
use crate::record::{LogRecord, StampedRecord};
use crate::Lsn;

/// Commit durability policy (`innodb_flush_log_at_trx_commit`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Write + fsync on the commit path (fully durable).
    Eager,
    /// Write on commit; fsync by the background flusher.
    LazyFlush,
    /// Write and fsync both deferred to the background flusher.
    LazyWrite,
}

/// Redo log configuration.
#[derive(Debug, Clone)]
pub struct RedoLogConfig {
    /// Durability policy.
    pub policy: FlushPolicy,
    /// Background flusher period for the lazy policies (MySQL uses ~1 s;
    /// scaled down to suit microsecond-scale transactions).
    pub flush_interval: Duration,
    /// Injected WAL faults (crash points, torn tails, ack-before-flush).
    pub faults: Option<crate::WalFaultPlan>,
    /// Suppress the background flusher for the lazy policies; the owner
    /// drives flushing via [`RedoLog::flush_now`]. The deterministic
    /// harness needs this: with no second thread, every flush happens at a
    /// seeded point on the driver thread and the run is replayable.
    pub manual_flush: bool,
    /// Append path: mutex-serialized (paper-faithful) or reserve-then-copy.
    pub append: AppendMode,
    /// Parallel log count for the lockfree path (records striped by txn
    /// id, one flush baton each). Ignored by the mutex path, which always
    /// runs a single log.
    pub writers: usize,
    /// Allow committers to park and share another committer's fsync. When
    /// false, a committer that loses the baton race spins for the baton
    /// and flushes itself (still correct, no batching).
    pub group_commit: bool,
    /// File-backed log sink (`disk_backend = file`). When set, the write
    /// path persists typed records as CRC-framed segments through the
    /// [`crate::FileWal`] instead of byte-count device writes, and the
    /// commit-path fsync routes through [`crate::FileWal::sync`] so the
    /// crash-injection gate applies. The stripe devices should be the
    /// wal's own [`tpd_common::FileDisk`]s so stats stay on one surface.
    pub sink: Option<Arc<crate::FileWal>>,
}

impl Default for RedoLogConfig {
    fn default() -> Self {
        RedoLogConfig {
            policy: FlushPolicy::Eager,
            flush_interval: Duration::from_millis(10),
            faults: None,
            manual_flush: false,
            append: AppendMode::Lockfree,
            writers: 1,
            group_commit: true,
            sink: None,
        }
    }
}

/// Profiler hookup for the redo log's paper-named probe site.
#[derive(Debug, Clone)]
pub struct MysqlWalProbes {
    /// The engine's profiler.
    pub profiler: Arc<Profiler>,
    /// `fil_flush` — the commit-path fsync.
    pub fil_flush: FuncId,
}

/// Cumulative redo-log statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedoStats {
    /// Bytes appended to the log buffer.
    pub bytes_appended: u64,
    /// Commit calls.
    pub commits: u64,
    /// Device flush operations.
    pub flushes: u64,
    /// Commits satisfied by another transaction's flush (group commit).
    pub group_commits: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Total ns commit paths spent achieving durability.
    pub commit_wait_ns: u64,
}

#[derive(Debug, Default)]
struct BufferState {
    next_lsn: u64,
    /// Bytes appended but not yet written to the device.
    unwritten: u64,
    written_lsn: u64,
    flushed_lsn: u64,
    /// Typed records retained for crash/recovery simulation (all appended
    /// records; durability is judged against `flushed_lsn` at crash time).
    records: Vec<StampedRecord>,
    /// How many of `records` the file sink has framed out (file backend
    /// only; the record's index doubles as its global seq here, since the
    /// mutex path serializes every append).
    persisted: usize,
}

/// One parallel log: its device plus the lock-free stripe state.
#[derive(Debug)]
struct StripeLog {
    disk: Arc<dyn DiskDevice>,
    stripe: Stripe,
    /// This log's stripe index (the file sink's chain id).
    idx: usize,
    /// Retained records already framed out to the file sink. Only read or
    /// written under the stripe's flush baton.
    persisted: AtomicU64,
}

/// The append-path implementation behind a [`RedoLog`].
#[derive(Debug)]
enum Backend {
    /// Mutex-serialized buffer (paper-faithful pathology).
    Mutex {
        disk: Arc<dyn DiskDevice>,
        state: Mutex<BufferState>,
        /// Serializes device write+fsync so committers group-commit
        /// behind the current flusher.
        flush_lock: Mutex<()>,
    },
    /// Reserve-then-copy stripes (see [`crate::lockfree`]).
    Lockfree { stripes: Vec<StripeLog> },
}

/// The redo log. See module docs.
#[derive(Debug)]
pub struct RedoLog {
    config: RedoLogConfig,
    backend: Backend,
    shutdown: Arc<AtomicBool>,
    shutdown_cv: Arc<(Mutex<bool>, Condvar)>,
    flusher: Option<std::thread::JoinHandle<()>>,
    probes: Option<MysqlWalProbes>,
    bytes_appended: AtomicU64,
    commits: AtomicU64,
    flushes: AtomicU64,
    group_commits: AtomicU64,
    bytes_written: AtomicU64,
    commit_wait_ns: AtomicU64,
    /// Eager committers waiting on durability (mutex backend; the
    /// lockfree backend tracks this per stripe). Swapped to zero at each
    /// fsync to size the group-commit batch.
    acks_pending: AtomicU64,
    /// Global append sequence, stamped on every typed record so crash
    /// snapshots merge stripes in true append order.
    global_seq: AtomicU64,
    /// Global flush epoch: bumped once per fsync (any stripe). Drives the
    /// K-way epoch-ordered commit-ack rule.
    epoch: AtomicU64,
    /// Round-robin cursor for striping record-less appends.
    append_rr: AtomicU64,
    /// Fsync latency per flush (ns).
    fsync_hist: Histogram,
    /// Bytes made durable per flush batch.
    batch_hist: Histogram,
    /// Append-path reservation latency (ns) — the cost of claiming and
    /// publishing log space, in either append mode.
    reserve_hist: Histogram,
    /// Commits acknowledged per fsync (group-commit batch size).
    group_batch_hist: Histogram,
}

impl RedoLog {
    /// Create a single-log redo log; lazy policies spawn the background
    /// flusher unless `manual_flush` is set.
    pub fn new(
        config: RedoLogConfig,
        disk: Arc<dyn DiskDevice>,
        probes: Option<MysqlWalProbes>,
    ) -> Arc<Self> {
        Self::with_disks(config, vec![disk], probes)
    }

    /// Create a redo log over one device per parallel log writer. The
    /// mutex append path always runs a single log (extra devices are
    /// rejected); the lockfree path requires `disks.len() == writers`.
    pub fn with_disks(
        config: RedoLogConfig,
        disks: Vec<Arc<dyn DiskDevice>>,
        probes: Option<MysqlWalProbes>,
    ) -> Arc<Self> {
        let writers = config.writers.max(1);
        let backend = match config.append {
            AppendMode::Mutex => {
                assert_eq!(
                    disks.len(),
                    1,
                    "the mutex append path runs a single log (one device)"
                );
                Backend::Mutex {
                    disk: disks.into_iter().next().expect("one device"),
                    state: Mutex::new(BufferState::default()),
                    flush_lock: Mutex::new(()),
                }
            }
            AppendMode::Lockfree => {
                assert!(writers <= 256, "stripe index must fit the LSN top byte");
                assert_eq!(disks.len(), writers, "one device per log writer required");
                Backend::Lockfree {
                    stripes: disks
                        .into_iter()
                        .enumerate()
                        .map(|(idx, disk)| StripeLog {
                            disk,
                            stripe: Stripe::new(),
                            idx,
                            persisted: AtomicU64::new(0),
                        })
                        .collect(),
                }
            }
        };
        let mut log = RedoLog {
            config: config.clone(),
            backend,
            shutdown: Arc::new(AtomicBool::new(false)),
            shutdown_cv: Arc::new((Mutex::new(false), Condvar::new())),
            flusher: None,
            probes,
            bytes_appended: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            commit_wait_ns: AtomicU64::new(0),
            acks_pending: AtomicU64::new(0),
            global_seq: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            append_rr: AtomicU64::new(0),
            fsync_hist: Histogram::new(),
            batch_hist: Histogram::new(),
            reserve_hist: Histogram::new(),
            group_batch_hist: Histogram::new(),
        };
        if matches!(config.policy, FlushPolicy::Eager) || config.manual_flush {
            return Arc::new(log);
        }
        // Lazy policies: cyclic Arc via a placeholder then spawn.
        Arc::new_cyclic(|weak: &std::sync::Weak<RedoLog>| {
            let weak = weak.clone();
            let shutdown = log.shutdown.clone();
            let cv = log.shutdown_cv.clone();
            let interval = config.flush_interval;
            log.flusher = Some(std::thread::spawn(move || loop {
                {
                    let (lock, cvar) = &*cv;
                    let mut stop = lock.lock();
                    if !*stop {
                        cvar.wait_for(&mut stop, interval);
                    }
                }
                if shutdown.load(Ordering::Acquire) {
                    // One final flush so shutdown is durable.
                    if let Some(log) = weak.upgrade() {
                        log.write_and_flush_pending();
                    }
                    return;
                }
                if let Some(log) = weak.upgrade() {
                    log.write_and_flush_pending();
                } else {
                    return;
                }
            }));
            log
        })
    }

    /// The active policy.
    pub fn policy(&self) -> FlushPolicy {
        self.config.policy
    }

    /// The active append mode.
    pub fn append_mode(&self) -> AppendMode {
        self.config.append
    }

    /// Number of parallel logs (1 for the mutex path).
    pub fn writers(&self) -> usize {
        match &self.backend {
            Backend::Mutex { .. } => 1,
            Backend::Lockfree { stripes } => stripes.len(),
        }
    }

    /// Append `bytes` of redo for a transaction; returns the end LSN that
    /// commit must make durable (eager) or acknowledge (lazy).
    pub fn append(&self, bytes: u64) -> Lsn {
        let t0 = now_nanos();
        let lsn = match &self.backend {
            Backend::Mutex { state, .. } => {
                let mut st = state.lock();
                st.next_lsn += bytes;
                st.unwritten += bytes;
                Lsn(st.next_lsn)
            }
            Backend::Lockfree { stripes } => {
                let idx = if stripes.len() == 1 {
                    0
                } else {
                    self.append_rr.fetch_add(1, Ordering::Relaxed) as usize % stripes.len()
                };
                self.append_to_stripe(stripes, idx, Vec::new(), bytes)
            }
        };
        self.bytes_appended.fetch_add(bytes, Ordering::Relaxed);
        self.reserve_hist.record(now_nanos() - t0);
        lsn
    }

    /// Append typed records (retained for recovery) plus `extra_bytes` of
    /// untyped payload (e.g. amplification modeling index/page images).
    /// Returns the end LSN of the batch. With parallel logs the whole
    /// batch lands on one stripe chosen by the records' transaction id,
    /// so a transaction's redo (and its commit marker) share a log.
    pub fn append_records(&self, records: Vec<LogRecord>, extra_bytes: u64) -> Lsn {
        let t0 = now_nanos();
        let mut total = extra_bytes;
        for r in &records {
            total += r.encoded_len();
        }
        let lsn = match &self.backend {
            Backend::Mutex { state, .. } => {
                let mut st = state.lock();
                for r in records {
                    st.next_lsn += r.encoded_len();
                    let end = Lsn(st.next_lsn);
                    st.records.push(StampedRecord { end, record: r });
                }
                st.next_lsn += extra_bytes;
                st.unwritten += total;
                Lsn(st.next_lsn)
            }
            Backend::Lockfree { stripes } => {
                let idx = if stripes.len() == 1 {
                    0
                } else {
                    match records.iter().find_map(|r| r.txn()) {
                        Some(txn) => txn as usize % stripes.len(),
                        None => {
                            self.append_rr.fetch_add(1, Ordering::Relaxed) as usize % stripes.len()
                        }
                    }
                };
                self.append_to_stripe(stripes, idx, records, extra_bytes)
            }
        };
        self.bytes_appended.fetch_add(total, Ordering::Relaxed);
        self.reserve_hist.record(now_nanos() - t0);
        lsn
    }

    /// Lockfree append: reserve the range with one `fetch_add`, stamp the
    /// records against it outside any lock, publish through the ring.
    fn append_to_stripe(
        &self,
        stripes: &[StripeLog],
        idx: usize,
        records: Vec<LogRecord>,
        extra_bytes: u64,
    ) -> Lsn {
        let s = &stripes[idx];
        let typed: u64 = records.iter().map(|r| r.encoded_len()).sum();
        let bytes = typed + extra_bytes;
        let start = s.stripe.reserve(bytes);
        // Copy phase: no lock held. Stamp each record with its end offset
        // inside the claimed range and a global sequence number (crash
        // snapshots merge stripes by it).
        let mut off = start;
        let stamped: Vec<(u64, StampedRecord)> = records
            .into_iter()
            .map(|record| {
                off += record.encoded_len();
                let seq = self.global_seq.fetch_add(1, Ordering::SeqCst);
                (
                    seq,
                    StampedRecord {
                        end: make_lsn(idx, off),
                        record,
                    },
                )
            })
            .collect();
        s.stripe.publish(Reservation {
            start,
            end: start + bytes,
            records: stamped,
        });
        make_lsn(idx, start + bytes)
    }

    /// Simulate a crash: return exactly the records that were durable
    /// (end-LSN within the flushed prefix) at this instant, merged across
    /// stripes in append order. Lazy policies can lose recently-committed
    /// transactions — the trade-off the paper's flush-policy tuning
    /// accepts.
    ///
    /// With [`crate::WalFaultPlan::torn_tail`] armed and a record in
    /// flight past a flushed prefix, the snapshot ends with partial
    /// [`LogRecord::Torn`] tails (one per affected stripe): the crash
    /// interrupted those records' writes, and a recovery reader sees
    /// garbage where their checksums should be.
    pub fn simulate_crash(&self) -> Vec<StampedRecord> {
        let torn = self.config.faults.as_ref().is_some_and(|f| f.torn_tail);
        match &self.backend {
            Backend::Mutex { state, .. } => {
                let st = state.lock();
                let mut durable: Vec<StampedRecord> = st
                    .records
                    .iter()
                    .filter(|r| r.end.0 <= st.flushed_lsn)
                    .cloned()
                    .collect();
                if torn {
                    if let Some(first_lost) = st.records.iter().find(|r| r.end.0 > st.flushed_lsn) {
                        // Half the record (header included) made it out.
                        let bytes = (first_lost.record.encoded_len() / 2).max(1);
                        durable.push(StampedRecord {
                            end: Lsn(st.flushed_lsn + bytes),
                            record: LogRecord::Torn { bytes },
                        });
                    }
                }
                durable
            }
            Backend::Lockfree { stripes } => {
                let mut durable: Vec<(u64, StampedRecord)> = Vec::new();
                let mut tears: Vec<(u64, StampedRecord)> = Vec::new();
                for (idx, s) in stripes.iter().enumerate() {
                    let flushed = s.stripe.flushed();
                    s.stripe.with_records(|records| {
                        for (seq, r) in records {
                            if offset_of(r.end) <= flushed {
                                durable.push((*seq, r.clone()));
                            } else {
                                if torn {
                                    let bytes = (r.record.encoded_len() / 2).max(1);
                                    tears.push((
                                        *seq,
                                        StampedRecord {
                                            end: make_lsn(idx, flushed + bytes),
                                            record: LogRecord::Torn { bytes },
                                        },
                                    ));
                                }
                                break;
                            }
                        }
                    });
                }
                // Durable records in append order; tears last so readers
                // stop at the first unreadable record.
                durable.sort_by_key(|(seq, _)| *seq);
                tears.sort_by_key(|(seq, _)| *seq);
                durable.into_iter().chain(tears).map(|(_, r)| r).collect()
            }
        }
    }

    /// Whether an armed [`crate::WalFaultPlan::crash_at_lsn`] point has
    /// been reached. The harness polls this between operations and calls
    /// the engine's crash path when it fires.
    pub fn crash_armed(&self) -> bool {
        match self.config.faults.as_ref().and_then(|f| f.crash_at_lsn) {
            Some(lsn) => self.bytes_appended.load(Ordering::SeqCst) >= lsn,
            None => false,
        }
    }

    /// Write + fsync everything pending. The manual-flush analogue of one
    /// background-flusher tick, called by the harness at seeded points.
    pub fn flush_now(&self) {
        self.write_and_flush_pending();
    }

    /// Commit: make `lsn` durable according to the policy. Returns the time
    /// spent waiting on durability (0 for the lazy policies' fast paths).
    pub fn commit(&self, lsn: Lsn) -> u64 {
        self.commits.fetch_add(1, Ordering::Relaxed);
        let start = now_nanos();
        match self.config.policy {
            FlushPolicy::Eager => {
                if self
                    .config
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.ack_before_flush)
                {
                    // Seeded bug: write, skip the fsync, acknowledge. The
                    // torture checker must flag the resulting losses.
                    self.ensure_written(lsn);
                } else {
                    self.ensure_flushed(lsn);
                    self.epoch_ordered_ack(lsn);
                }
            }
            FlushPolicy::LazyFlush => {
                // Write into the OS cache on the commit path; no fsync.
                self.ensure_written(lsn);
            }
            FlushPolicy::LazyWrite => {
                // Nothing: the flusher does both.
            }
        }
        let waited = now_nanos() - start;
        self.commit_wait_ns.fetch_add(waited, Ordering::Relaxed);
        waited
    }

    /// Under the state lock: take the records the file sink has not framed
    /// out yet, paired with their index — the mutex path serializes every
    /// append, so a record's position is its global seq. Empty in sim mode.
    fn take_unpersisted(&self, st: &mut BufferState) -> Vec<(u64, StampedRecord)> {
        if self.config.sink.is_none() {
            return Vec::new();
        }
        let from = st.persisted;
        st.persisted = st.records.len();
        st.records[from..]
            .iter()
            .enumerate()
            .map(|(i, r)| ((from + i) as u64, r.clone()))
            .collect()
    }

    /// Device write for the mutex path: byte-count in sim mode, CRC frames
    /// through the sink in file mode (zero fill would corrupt the stream).
    fn write_mutex_bytes(
        &self,
        disk: &Arc<dyn DiskDevice>,
        to_write: u64,
        frames: &[(u64, StampedRecord)],
    ) {
        match &self.config.sink {
            Some(sink) => {
                for (seq, r) in frames {
                    sink.append(0, *seq, r);
                }
            }
            None => {
                if to_write > 0 {
                    disk.write(to_write);
                }
            }
        }
        self.bytes_written.fetch_add(to_write, Ordering::Relaxed);
    }

    /// Write buffered bytes up to at least `lsn` into the device cache.
    fn ensure_written(&self, lsn: Lsn) {
        match &self.backend {
            Backend::Mutex { state, disk, .. } => loop {
                let (to_write, frames) = {
                    let mut st = state.lock();
                    if st.written_lsn >= lsn.0 {
                        return;
                    }
                    let n = st.unwritten;
                    st.written_lsn = st.next_lsn;
                    st.unwritten = 0;
                    (n, self.take_unpersisted(&mut st))
                };
                if to_write > 0 || !frames.is_empty() {
                    self.write_mutex_bytes(disk, to_write, &frames);
                }
                // Loop re-checks in case new bytes raced in below our lsn —
                // cannot happen since lsn was assigned before, but stay safe.
                let st = state.lock();
                if st.written_lsn >= lsn.0 {
                    return;
                }
            },
            Backend::Lockfree { stripes } => {
                let s = &stripes[stripe_of(lsn)];
                let off = offset_of(lsn);
                loop {
                    if s.stripe.written() >= off {
                        return;
                    }
                    if let Some(_baton) = s.stripe.try_baton() {
                        // May fall short if an unpublished lower
                        // reservation blocks the watermark; loop.
                        self.write_stripe_pending(s);
                    } else {
                        // The baton holder may have drained before our
                        // publish; retry after it releases.
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Write + fsync everything up to at least `lsn` (group commit).
    fn ensure_flushed(&self, lsn: Lsn) {
        match &self.backend {
            Backend::Mutex {
                state, flush_lock, ..
            } => {
                {
                    let st = state.lock();
                    if st.flushed_lsn >= lsn.0 {
                        self.group_commits.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                self.acks_pending.fetch_add(1, Ordering::SeqCst);
                let _g = flush_lock.lock();
                // Re-check: the previous holder may have flushed us.
                {
                    let st = state.lock();
                    if st.flushed_lsn >= lsn.0 {
                        self.group_commits.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                self.flush_mutex_locked();
            }
            Backend::Lockfree { stripes } => {
                let s = &stripes[stripe_of(lsn)];
                let off = offset_of(lsn);
                if s.stripe.flushed() >= off {
                    self.group_commits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                s.stripe.acks_pending.fetch_add(1, Ordering::SeqCst);
                // A flush round (even our own) may not cover our bytes: a
                // concurrent appender holding a lower reservation that has
                // not yet published blocks the watermark below us. Loop
                // until some round lands past our offset.
                let mut flushed_self = false;
                loop {
                    if s.stripe.flushed() >= off {
                        if !flushed_self {
                            self.group_commits.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }
                    if let Some(_baton) = s.stripe.try_baton() {
                        self.flush_stripe_round(s);
                        flushed_self = true;
                    } else if self.config.group_commit {
                        // Lose the baton race → park; the holder wakes us
                        // when its round completes. Re-check and retry: the
                        // round only covers publishes it drained.
                        s.stripe.park_round(|| s.stripe.flushed() >= off);
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// K-way epoch rule: a commit is acknowledged only when every other
    /// stripe's flush epoch has reached the epoch current at (or after)
    /// this commit's own flush — so the ack implies every commit flushed
    /// in an earlier epoch, on any log, is durable. Single-threaded
    /// callers flush lagging stripes themselves (the baton is free);
    /// concurrent callers usually just observe other committers' rounds.
    fn epoch_ordered_ack(&self, lsn: Lsn) {
        let Backend::Lockfree { stripes } = &self.backend else {
            return;
        };
        if stripes.len() == 1 {
            return;
        }
        let my = stripe_of(lsn);
        let e0 = self.epoch.load(Ordering::SeqCst);
        for (i, s) in stripes.iter().enumerate() {
            if i == my {
                continue;
            }
            loop {
                if s.stripe.flushed_epoch() >= e0 {
                    break;
                }
                if let Some(_baton) = s.stripe.try_baton() {
                    self.flush_stripe_round(s);
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Background entry point: flush all pending bytes on every log.
    fn write_and_flush_pending(&self) {
        match &self.backend {
            Backend::Mutex { flush_lock, .. } => {
                let _g = flush_lock.lock();
                self.flush_mutex_locked();
            }
            Backend::Lockfree { stripes } => {
                for s in stripes {
                    let _baton = s.stripe.baton();
                    self.flush_stripe_round(s);
                }
            }
        }
    }

    /// Requires the flush lock. Writes all unwritten bytes, then fsyncs.
    fn flush_mutex_locked(&self) {
        let Backend::Mutex { disk, state, .. } = &self.backend else {
            unreachable!("mutex flush on lockfree backend");
        };
        let (to_write, target_lsn, frames) = {
            let mut st = state.lock();
            let n = st.unwritten;
            st.written_lsn = st.next_lsn;
            st.unwritten = 0;
            let frames = self.take_unpersisted(&mut st);
            (n, st.next_lsn, frames)
        };
        if to_write > 0 || !frames.is_empty() {
            self.write_mutex_bytes(disk, to_write, &frames);
        }
        {
            let st = state.lock();
            if st.flushed_lsn >= target_lsn {
                return;
            }
        }
        self.batch_hist.record(to_write);
        // The fsync: the paper's `fil_flush` (crash-gated in file mode).
        let t0 = now_nanos();
        match &self.config.sink {
            Some(sink) => {
                sink.sync(0);
            }
            None => {
                disk.flush(0);
            }
        }
        let dur = now_nanos() - t0;
        if let Some(p) = &self.probes {
            p.profiler.add_event(p.fil_flush, t0, dur);
        }
        self.fsync_hist.record(dur);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = state.lock();
            st.flushed_lsn = st.flushed_lsn.max(target_lsn);
        }
        let acked = self.acks_pending.swap(0, Ordering::SeqCst);
        if acked > 0 {
            self.group_batch_hist.record(acked);
        }
    }

    /// Requires the stripe's baton: write `published − written`, fsync if
    /// anything new, account the group-commit batch, close an epoch, and
    /// wake parked committers.
    fn write_stripe_pending(&self, s: &StripeLog) {
        s.stripe.drain();
        let target = s.stripe.published();
        let written = s.stripe.written();
        if target > written {
            if let Some(sink) = &self.config.sink {
                // File backend: frame the newly-drained records out as
                // CRC-framed segments (they land on this stripe's own
                // FileDisk, so byte accounting stays on one surface). The
                // byte-count write below would interleave zero fill with
                // the frame stream, so it is skipped.
                let from = s.persisted.load(Ordering::Relaxed) as usize;
                let upto = s.stripe.with_records(|records| {
                    for (seq, r) in &records[from..] {
                        sink.append(s.idx, *seq, r);
                    }
                    records.len()
                });
                s.persisted.store(upto as u64, Ordering::Relaxed);
            } else {
                s.disk.write(target - written);
            }
            self.bytes_written
                .fetch_add(target - written, Ordering::Relaxed);
            s.stripe.set_written(target);
        }
    }

    /// Requires the stripe's baton. One full flush round.
    fn flush_stripe_round(&self, s: &StripeLog) {
        self.write_stripe_pending(s);
        let target = s.stripe.written();
        if s.stripe.flushed() >= target {
            // Clean round: nothing new to fsync, but the stripe is now
            // provably caught up with every epoch closed before this
            // point — no fsync needed to advance its epoch.
            s.stripe
                .raise_flushed_epoch(self.epoch.load(Ordering::SeqCst));
            s.stripe.wake_all();
            return;
        }
        self.batch_hist.record(target - s.stripe.flushed());
        // The fsync: the paper's `fil_flush`. The file sink's barrier is
        // the same device flush, but gated so an injected crash drops it.
        let t0 = now_nanos();
        match &self.config.sink {
            Some(sink) => {
                sink.sync(s.idx);
            }
            None => {
                s.disk.flush(0);
            }
        }
        let dur = now_nanos() - t0;
        if let Some(p) = &self.probes {
            p.profiler.add_event(p.fil_flush, t0, dur);
        }
        self.fsync_hist.record(dur);
        self.flushes.fetch_add(1, Ordering::Relaxed);
        s.stripe.set_flushed(target);
        let acked = s.stripe.acks_pending.swap(0, Ordering::SeqCst);
        if acked > 0 {
            self.group_batch_hist.record(acked);
        }
        // Every fsync closes a global epoch; this stripe is caught up to
        // the epoch it just closed.
        let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        s.stripe.raise_flushed_epoch(e);
        s.stripe.wake_all();
    }

    /// Durable LSN (for tests and recovery assertions). With parallel
    /// logs this reports stripe 0's durable offset; per-stripe cursors
    /// are available via [`RedoLog::stripe_cursors`].
    pub fn flushed_lsn(&self) -> Lsn {
        match &self.backend {
            Backend::Mutex { state, .. } => Lsn(state.lock().flushed_lsn),
            Backend::Lockfree { stripes } => make_lsn(0, stripes[0].stripe.flushed()),
        }
    }

    /// Per-stripe `(reserved, published, written, flushed)` cursors for
    /// invariant checks (empty for the mutex backend).
    pub fn stripe_cursors(&self) -> Vec<(u64, u64, u64, u64)> {
        match &self.backend {
            Backend::Mutex { .. } => Vec::new(),
            Backend::Lockfree { stripes } => stripes.iter().map(|s| s.stripe.cursors()).collect(),
        }
    }

    /// Snapshot of the fsync-latency histogram (ns per flush).
    pub fn fsync_histogram(&self) -> HistogramSnapshot {
        self.fsync_hist.snapshot()
    }

    /// Snapshot of the flush batch-size histogram (bytes per flush).
    pub fn batch_histogram(&self) -> HistogramSnapshot {
        self.batch_hist.snapshot()
    }

    /// Snapshot of the append-path reservation latency histogram (ns).
    pub fn reserve_histogram(&self) -> HistogramSnapshot {
        self.reserve_hist.snapshot()
    }

    /// Snapshot of the commits-acked-per-fsync histogram.
    pub fn group_commit_batch_histogram(&self) -> HistogramSnapshot {
        self.group_batch_hist.snapshot()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> RedoStats {
        RedoStats {
            bytes_appended: self.bytes_appended.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            commit_wait_ns: self.commit_wait_ns.load(Ordering::Relaxed),
        }
    }

    /// Stop the background flusher (if any), flushing once more first.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        let (lock, cvar) = &*self.shutdown_cv;
        let mut stop = lock.lock();
        *stop = true;
        cvar.notify_all();
    }
}

impl Drop for RedoLog {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpd_common::dist::ServiceTime;
    use tpd_common::{DiskConfig, SimDisk};

    fn fast_disk() -> Arc<dyn DiskDevice> {
        Arc::new(SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(50_000),
            ns_per_byte: 0.0,
            seed: 3,
        }))
    }

    fn seeded_disk(seed: u64) -> Arc<dyn DiskDevice> {
        Arc::new(SimDisk::new(DiskConfig {
            service: ServiceTime::Fixed(50_000),
            ns_per_byte: 0.0,
            seed,
        }))
    }

    #[test]
    fn eager_commit_is_durable() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let log = RedoLog::new(
                RedoLogConfig {
                    policy: FlushPolicy::Eager,
                    append,
                    ..Default::default()
                },
                fast_disk(),
                None,
            );
            let lsn = log.append(100);
            let waited = log.commit(lsn);
            assert!(waited >= 50_000, "commit waited for I/O: {waited}");
            assert!(log.flushed_lsn() >= lsn);
            let s = log.stats();
            assert_eq!(s.commits, 1);
            assert_eq!(s.flushes, 1);
            assert_eq!(s.bytes_written, 100);
        }
    }

    #[test]
    fn group_commit_batches_concurrent_flushes() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let log = RedoLog::new(
                RedoLogConfig {
                    policy: FlushPolicy::Eager,
                    append,
                    ..Default::default()
                },
                fast_disk(),
                None,
            );
            let mut handles = Vec::new();
            for _ in 0..8 {
                let log = log.clone();
                handles.push(std::thread::spawn(move || {
                    let lsn = log.append(64);
                    log.commit(lsn);
                    assert!(log.flushed_lsn() >= lsn);
                }));
            }
            for h in handles {
                h.join().expect("committer");
            }
            let s = log.stats();
            assert_eq!(s.commits, 8);
            assert!(
                s.flushes < 8,
                "grouping must reduce flushes ({append:?}): {} flushes",
                s.flushes
            );
            assert!(s.flushes + s.group_commits >= 8 - s.flushes);
        }
    }

    #[test]
    fn lazy_flush_commit_writes_but_does_not_fsync() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyFlush,
                flush_interval: Duration::from_millis(5),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(128);
        log.commit(lsn);
        // Written but (likely) not yet flushed by the committer itself.
        assert_eq!(log.stats().bytes_written, 128);
        // The background flusher catches up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "flusher never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        log.shutdown();
    }

    #[test]
    fn lazy_write_commit_touches_nothing() {
        let disk = fast_disk();
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_millis(5),
                ..Default::default()
            },
            disk.clone(),
            None,
        );
        let lsn = log.append(256);
        let waited = log.commit(lsn);
        assert!(waited < 5_000_000, "lazy-write commit must be fast");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "flusher never ran");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(log.stats().bytes_written, 256);
        log.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_secs(3600), // effectively never
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(64);
        log.commit(lsn);
        log.shutdown();
        // Drop joins the flusher, which flushes one final time.
        let log2 = log.clone();
        drop(log);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while log2.flushed_lsn() < lsn {
            assert!(std::time::Instant::now() < deadline, "final flush missing");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn manual_flush_spawns_no_thread_and_flushes_on_demand() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                flush_interval: Duration::from_micros(1), // would race if spawned
                manual_flush: true,
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.commit(lsn);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(log.flushed_lsn(), Lsn(0), "nothing flushes on its own");
        log.flush_now();
        assert!(log.flushed_lsn() >= lsn);
        assert_eq!(log.simulate_crash().len(), 1);
    }

    #[test]
    fn torn_tail_appears_past_flushed_prefix() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let log = RedoLog::new(
                RedoLogConfig {
                    policy: FlushPolicy::LazyWrite,
                    manual_flush: true,
                    faults: Some(crate::WalFaultPlan {
                        torn_tail: true,
                        ..Default::default()
                    }),
                    append,
                    ..Default::default()
                },
                fast_disk(),
                None,
            );
            let flushed = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
            log.flush_now();
            log.append_records(
                vec![
                    LogRecord::Update {
                        txn: 2,
                        table: 0,
                        key: 9,
                        after: vec![1, 2],
                    },
                    LogRecord::Commit { txn: 2 },
                ],
                0,
            );
            let snap = log.simulate_crash();
            assert_eq!(snap.len(), 2, "flushed commit + torn tail ({append:?})");
            assert!(matches!(snap[1].record, LogRecord::Torn { .. }));
            assert!(snap[1].end > flushed);
            let c = crate::committed_txns(&snap);
            assert!(c.contains(&1) && !c.contains(&2));
        }
    }

    #[test]
    fn no_torn_tail_when_everything_flushed() {
        let log = RedoLog::new(
            RedoLogConfig {
                faults: Some(crate::WalFaultPlan {
                    torn_tail: true,
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        log.commit(lsn);
        let snap = log.simulate_crash();
        assert_eq!(snap.len(), 1, "no record in flight, no tear");
    }

    #[test]
    fn crash_at_lsn_arms_when_log_grows_past_it() {
        let log = RedoLog::new(
            RedoLogConfig {
                faults: Some(crate::WalFaultPlan {
                    crash_at_lsn: Some(50),
                    ..Default::default()
                }),
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        assert!(!log.crash_armed());
        log.append(40);
        assert!(!log.crash_armed());
        log.append(40);
        assert!(log.crash_armed());
    }

    #[test]
    fn ack_before_flush_bug_loses_acked_commits() {
        for append in [AppendMode::Mutex, AppendMode::Lockfree] {
            let log = RedoLog::new(
                RedoLogConfig {
                    policy: FlushPolicy::Eager,
                    faults: Some(crate::WalFaultPlan {
                        ack_before_flush: true,
                        ..Default::default()
                    }),
                    append,
                    ..Default::default()
                },
                fast_disk(),
                None,
            );
            let lsn = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
            log.commit(lsn); // "eager" commit acks without fsync
            assert!(log.flushed_lsn() < lsn, "fsync was skipped ({append:?})");
            assert!(
                crate::committed_txns(&log.simulate_crash()).is_empty(),
                "the acked commit is gone after a crash"
            );
        }
    }

    #[test]
    fn append_assigns_monotone_lsns() {
        let log = RedoLog::new(RedoLogConfig::default(), fast_disk(), None);
        let a = log.append(10);
        let b = log.append(20);
        assert!(b > a);
        assert_eq!(b, Lsn(30));
    }

    #[test]
    fn already_durable_commit_is_free() {
        let log = RedoLog::new(RedoLogConfig::default(), fast_disk(), None);
        let lsn = log.append(10);
        log.commit(lsn);
        let waited = log.commit(lsn); // second commit of same lsn
        assert!(waited < 1_000_000, "no second flush: {waited}");
        assert_eq!(log.stats().group_commits, 1);
    }

    #[test]
    fn group_commit_batch_histogram_counts_acks() {
        let log = RedoLog::new(RedoLogConfig::default(), fast_disk(), None);
        for _ in 0..3 {
            let lsn = log.append(32);
            log.commit(lsn);
        }
        let h = log.group_commit_batch_histogram();
        assert_eq!(h.count, 3, "each solo commit is a batch of one");
        assert_eq!(h.sum, 3);
        assert!(log.reserve_histogram().count >= 3);
    }

    #[test]
    fn two_writers_stripe_by_txn_and_recover_everything() {
        let log = RedoLog::with_disks(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                writers: 2,
                ..Default::default()
            },
            vec![seeded_disk(1), seeded_disk(2)],
            None,
        );
        assert_eq!(log.writers(), 2);
        // Odd txns land on stripe 1, even on stripe 0.
        for txn in 1..=6u64 {
            let lsn = log.append_records(
                vec![
                    LogRecord::Update {
                        txn,
                        table: 0,
                        key: txn,
                        after: vec![txn as i64],
                    },
                    LogRecord::Commit { txn },
                ],
                0,
            );
            assert_eq!(
                crate::lockfree::stripe_of(lsn),
                txn as usize % 2,
                "records stripe by txn id"
            );
            log.commit(lsn);
        }
        let committed = crate::committed_txns(&log.simulate_crash());
        assert_eq!(committed, (1..=6).collect());
        let cursors = log.stripe_cursors();
        assert_eq!(cursors.len(), 2);
        for (reserved, published, written, flushed) in cursors {
            assert!(flushed <= written && written <= published && published <= reserved);
            assert!(flushed > 0, "both stripes saw commits");
        }
    }

    #[test]
    fn epoch_ack_makes_other_stripes_durable() {
        // Txn 2's records land on stripe 0, txn 1's on stripe 1. Only
        // txn 1 commits — but its epoch-ordered ack must force stripe 0
        // to catch up, so txn 2's already-appended commit record becomes
        // durable too.
        let log = RedoLog::with_disks(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                writers: 2,
                ..Default::default()
            },
            vec![seeded_disk(3), seeded_disk(4)],
            None,
        );
        let l2 = log.append_records(vec![LogRecord::Commit { txn: 2 }], 0);
        assert_eq!(crate::lockfree::stripe_of(l2), 0);
        let l1 = log.append_records(vec![LogRecord::Commit { txn: 1 }], 0);
        assert_eq!(crate::lockfree::stripe_of(l1), 1);
        log.commit(l1);
        let committed = crate::committed_txns(&log.simulate_crash());
        assert!(committed.contains(&1));
        assert!(
            committed.contains(&2),
            "epoch rule: stripe 0 must be flushed before txn 1's ack"
        );
    }

    #[test]
    fn group_commit_disabled_still_durable() {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                group_commit: false,
                ..Default::default()
            },
            fast_disk(),
            None,
        );
        let lsn = log.append(64);
        log.commit(lsn);
        assert!(log.flushed_lsn() >= lsn);
    }

    #[test]
    #[should_panic(expected = "one device per log writer")]
    fn wrong_disk_count_rejected() {
        RedoLog::with_disks(
            RedoLogConfig {
                writers: 2,
                ..Default::default()
            },
            vec![fast_disk()],
            None,
        );
    }
}
