//! Equivalence of the two append paths, and safety of the lock-free one.
//!
//! The reserve-then-copy buffer must be a pure performance change: for
//! any single-threaded schedule of appends, commits, and flush points,
//! the crash-recovered state must be byte-identical to the mutex path's.
//! With K parallel logs the LSN spaces differ by construction, so there
//! the *recovered database state* (committed set + replayed rows) must
//! match the single-log run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use tpd_common::dist::ServiceTime;
use tpd_common::{DiskConfig, DiskDevice, SimDisk};
use tpd_wal::{
    committed_txns, durable_prefix, AppendMode, FlushPolicy, LogRecord, RedoLog, RedoLogConfig,
    RedoStats, StampedRecord, WalFaultPlan,
};

fn disk(seed: u64) -> Arc<dyn DiskDevice> {
    Arc::new(SimDisk::new(DiskConfig {
        service: ServiceTime::Fixed(500),
        ns_per_byte: 0.0,
        seed,
    }))
}

/// One step of a schedule: a transaction appending `rows` update rows
/// (plus a commit marker iff `commit`), optionally followed by a manual
/// flush tick.
#[derive(Debug, Clone)]
struct Step {
    rows: usize,
    commit: bool,
    flush_after: bool,
}

/// Raw schedule strategy: `(rows, commit, flush_after)` per step (the
/// vendored proptest stand-in has no `prop_map`, so [`Step`]s are built
/// in the test body).
fn schedule() -> proptest::collection::VecStrategy<(
    std::ops::Range<usize>,
    proptest::Any<bool>,
    proptest::Any<bool>,
)> {
    proptest::collection::vec((1usize..5, any::<bool>(), any::<bool>()), 1..20)
}

fn steps_of(raw: Vec<(usize, bool, bool)>) -> Vec<Step> {
    raw.into_iter()
        .map(|(rows, commit, flush_after)| Step {
            rows,
            commit,
            flush_after,
        })
        .collect()
}

/// Run `steps` against a fresh log and return its crash snapshot + stats.
fn run(
    append: AppendMode,
    writers: usize,
    eager: bool,
    steps: &[Step],
) -> (Vec<StampedRecord>, RedoStats) {
    let disks = (0..writers.max(1)).map(|i| disk(100 + i as u64)).collect();
    let log = RedoLog::with_disks(
        RedoLogConfig {
            policy: if eager {
                FlushPolicy::Eager
            } else {
                FlushPolicy::LazyWrite
            },
            manual_flush: true,
            faults: Some(WalFaultPlan {
                torn_tail: true,
                ..Default::default()
            }),
            append,
            writers,
            ..Default::default()
        },
        disks,
        None,
    );
    for (i, step) in steps.iter().enumerate() {
        let txn = i as u64 + 1;
        let mut records = vec![LogRecord::Update {
            txn,
            table: 0,
            key: txn % 7,
            after: vec![txn as i64; step.rows],
        }];
        if step.commit {
            records.push(LogRecord::Commit { txn });
        }
        let lsn = log.append_records(records, 0);
        if step.commit {
            log.commit(lsn);
        }
        if step.flush_after {
            log.flush_now();
        }
    }
    (log.simulate_crash(), log.stats())
}

/// Redo recovery: replay committed transactions' updates from the
/// readable prefix, in log order.
fn replay(snapshot: &[StampedRecord]) -> HashMap<u64, Vec<i64>> {
    let committed = committed_txns(snapshot);
    let mut state = HashMap::new();
    for r in durable_prefix(snapshot) {
        if let LogRecord::Update {
            txn, key, after, ..
        } = &r.record
        {
            if committed.contains(txn) {
                state.insert(*key, after.clone());
            }
        }
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single log: the lock-free path must produce a byte-identical crash
    /// snapshot (same records, same stamped LSNs, same torn tail) and the
    /// same I/O accounting as the mutex path, for any schedule and both
    /// the eager and manual-flush regimes.
    #[test]
    fn lockfree_matches_mutex_byte_for_byte(raw in schedule(), eager in any::<bool>()) {
        let steps = steps_of(raw);
        let (snap_mutex, stats_mutex) = run(AppendMode::Mutex, 1, eager, &steps);
        let (snap_lf, stats_lf) = run(AppendMode::Lockfree, 1, eager, &steps);
        prop_assert_eq!(snap_mutex, snap_lf, "crash snapshots must be identical");
        prop_assert_eq!(stats_mutex.bytes_appended, stats_lf.bytes_appended);
        prop_assert_eq!(stats_mutex.bytes_written, stats_lf.bytes_written);
        prop_assert_eq!(stats_mutex.commits, stats_lf.commits);
        prop_assert_eq!(stats_mutex.flushes, stats_lf.flushes);
    }

    /// K parallel logs: LSN spaces differ, but the recovered database
    /// state (committed set + replayed rows) must match the single-log
    /// run for any schedule.
    #[test]
    fn two_writers_recover_the_same_state(raw in schedule(), eager in any::<bool>()) {
        let steps = steps_of(raw);
        let (snap_one, _) = run(AppendMode::Lockfree, 1, eager, &steps);
        let (snap_two, _) = run(AppendMode::Lockfree, 2, eager, &steps);
        prop_assert_eq!(
            committed_txns(&snap_one),
            committed_txns(&snap_two),
            "same committed set regardless of striping"
        );
        prop_assert_eq!(replay(&snap_one), replay(&snap_two), "same replayed rows");
    }
}

/// Concurrent soak hammering the publish watermark: many threads
/// reserving, publishing, and committing against 1 and 2 stripes while
/// asserting the durability contract at every commit. Run with
/// `TPD_SOAK=1 cargo test -p tpd-wal -- --ignored`.
#[test]
#[ignore = "long soak; enable with TPD_SOAK=1"]
fn concurrent_append_soak() {
    if std::env::var("TPD_SOAK").as_deref() != Ok("1") {
        eprintln!("concurrent_append_soak: set TPD_SOAK=1 to run");
        return;
    }
    for writers in [1usize, 2] {
        let disks = (0..writers).map(|i| disk(7000 + i as u64)).collect();
        let log = RedoLog::with_disks(
            RedoLogConfig {
                policy: FlushPolicy::Eager,
                writers,
                ..Default::default()
            },
            disks,
            None,
        );
        let next_txn = AtomicU64::new(1);
        let threads = 8;
        let per_thread = 2_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let log = log.clone();
                let next_txn = &next_txn;
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        let txn = next_txn.fetch_add(1, Ordering::Relaxed);
                        let lsn = log.append_records(
                            vec![
                                LogRecord::Update {
                                    txn,
                                    table: 0,
                                    key: txn,
                                    after: vec![txn as i64],
                                },
                                LogRecord::Commit { txn },
                            ],
                            8,
                        );
                        log.commit(lsn);
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        let stats = log.stats();
        assert_eq!(stats.commits, total);
        assert!(
            stats.flushes < total,
            "group commit must batch: {} flushes for {total} commits",
            stats.flushes
        );
        for (reserved, published, written, flushed) in log.stripe_cursors() {
            assert!(
                flushed <= written && written <= published && published <= reserved,
                "cursor invariant violated"
            );
            assert_eq!(reserved, published, "every reservation was published");
        }
        let committed = committed_txns(&log.simulate_crash());
        assert_eq!(
            committed.len() as u64,
            total,
            "every acked commit must be recoverable ({writers} writers)"
        );
    }
}
