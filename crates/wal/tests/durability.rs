//! Concurrency/durability properties of the logging substrates: an eager
//! commit must never return before its LSN is durable, group commit must
//! batch but never skip, and the Postgres writer's tickets must be covered
//! by flushes in order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tpd_common::dist::ServiceTime;
use tpd_common::{DiskConfig, DiskDevice, SimDisk};
use tpd_wal::{
    committed_txns, durable_prefix, FileWal, FlushPolicy, LogRecord, Lsn, RedoLog, RedoLogConfig,
    StampedRecord, WalFaultPlan, WalWriter, WalWriterConfig,
};

fn disk(seed: u64, service_ns: u64) -> Arc<dyn DiskDevice> {
    Arc::new(SimDisk::new(DiskConfig {
        service: ServiceTime::Fixed(service_ns),
        ns_per_byte: 0.0,
        seed,
    }))
}

#[test]
fn eager_commits_are_durable_at_return_under_concurrency() {
    let log = RedoLog::new(
        RedoLogConfig {
            policy: FlushPolicy::Eager,
            ..Default::default()
        },
        disk(1, 30_000),
        None,
    );
    let violations = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let log = log.clone();
            let violations = violations.clone();
            scope.spawn(move || {
                for _ in 0..40 {
                    let lsn = log.append(128);
                    log.commit(lsn);
                    if log.flushed_lsn() < lsn {
                        violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    let s = log.stats();
    assert_eq!(s.commits, 320);
    assert!(
        s.flushes < s.commits,
        "group commit must batch: {} flushes for {} commits",
        s.flushes,
        s.commits
    );
}

#[test]
fn lsns_are_strictly_monotonic_under_concurrency() {
    let log = RedoLog::new(RedoLogConfig::default(), disk(2, 0), None);
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let log = log.clone();
            let seen = seen.clone();
            scope.spawn(move || {
                let mut local = Vec::new();
                for _ in 0..200 {
                    local.push(log.append(8));
                }
                seen.lock().extend(local);
            });
        }
    });
    let mut all = seen.lock().clone();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 1600, "no two appends share an end-LSN");
}

#[test]
fn pg_writer_group_commit_correctness() {
    // Slow flushes force waiters to pile on the WALWriteLock; every commit
    // must still return only after its ticket was covered by some flush.
    let w = Arc::new(WalWriter::new(
        WalWriterConfig {
            sets: 1,
            block_size: 4096,
            per_block_overhead: Duration::ZERO,
            ..Default::default()
        },
        vec![disk(3, 100_000)],
        None,
    ));
    std::thread::scope(|scope| {
        for _ in 0..12 {
            let w = w.clone();
            scope.spawn(move || {
                for _ in 0..15 {
                    w.commit(512);
                }
            });
        }
    });
    let s = w.stats();
    assert_eq!(s.commits, 180);
    assert!(s.flushes + s.group_commits >= 180 - s.flushes);
    assert!(
        s.group_commits > 0,
        "contention must produce group commits: {s:?}"
    );
    assert!(s.flushes < 180, "flushes batched: {}", s.flushes);
}

#[test]
fn pg_parallel_sets_split_load() {
    let d0 = disk(4, 50_000);
    let d1 = disk(5, 50_000);
    let (s0, s1) = (d0.clone(), d1.clone());
    let w = Arc::new(WalWriter::new(
        WalWriterConfig {
            sets: 2,
            block_size: 8192,
            per_block_overhead: Duration::ZERO,
            ..Default::default()
        },
        vec![d0, d1],
        None,
    ));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let w = w.clone();
            scope.spawn(move || {
                for _ in 0..30 {
                    w.commit(256);
                }
            });
        }
    });
    let (f0, f1) = (s0.stats().flushes, s1.stats().flushes);
    assert!(f0 > 0 && f1 > 0, "both devices used: {f0} vs {f1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash with a torn tail: recovery reads exactly the flushed prefix —
    /// every record appended before the flush point survives, nothing at
    /// or past the tear is readable, and the readers never panic no matter
    /// where the tear (or an arbitrary truncation) lands.
    #[test]
    fn torn_tail_recovery_is_exactly_the_flushed_prefix(
        seed in 0u64..1_000,
        row_lens in proptest::collection::vec(1usize..6, 1..24),
        flush_at in 0usize..24,
        cut in 0usize..64,
    ) {
        let log = RedoLog::new(
            RedoLogConfig {
                policy: FlushPolicy::LazyWrite,
                manual_flush: true,
                faults: Some(WalFaultPlan { torn_tail: true, ..Default::default() }),
                ..Default::default()
            },
            disk(seed, 500),
            None,
        );
        let total = row_lens.len();
        let flush_at = flush_at.min(total);
        for (t, &row_len) in row_lens.iter().enumerate() {
            let txn = t as u64 + 1;
            let lsn = log.append_records(
                vec![
                    LogRecord::Update { txn, table: 0, key: t as u64, after: vec![t as i64; row_len] },
                    LogRecord::Commit { txn },
                ],
                0,
            );
            log.commit(lsn);
            if t + 1 == flush_at {
                log.flush_now();
            }
        }
        let snapshot = log.simulate_crash();

        // Every transaction committed before the tear recovers; none after.
        let recovered = committed_txns(&snapshot);
        let expected: std::collections::HashSet<u64> = (1..=flush_at as u64).collect();
        prop_assert_eq!(&recovered, &expected, "flushed prefix must recover exactly");

        // The readable prefix holds exactly the flushed records, none torn.
        let prefix = durable_prefix(&snapshot);
        prop_assert_eq!(prefix.len(), flush_at * 2, "two records per flushed txn");
        for r in prefix {
            prop_assert!(!matches!(r.record, LogRecord::Torn { .. }));
        }

        // A torn tail appears iff a record was in flight past the flush,
        // and only ever as the last element of the snapshot.
        let torn_positions: Vec<usize> = snapshot
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.record, LogRecord::Torn { .. }))
            .map(|(i, _)| i)
            .collect();
        if flush_at < total {
            prop_assert_eq!(torn_positions.as_slice(), &[snapshot.len() - 1]);
        } else {
            prop_assert!(torn_positions.is_empty());
        }

        // Truncated tail: chop the snapshot anywhere (a crash mid-write of
        // the file itself). The readers must still produce a clean prefix
        // without panicking, and only ever a *prefix* of the commits.
        let truncated = &snapshot[..cut.min(snapshot.len())];
        let partial = committed_txns(truncated);
        prop_assert!(
            partial.iter().all(|t| expected.contains(t)),
            "a truncated log can only shrink the recovered set"
        );
        let max = partial.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(
            partial.len() as u64, max,
            "recovered commits form a contiguous prefix 1..=max"
        );
    }
}

/// The segment files of one stripe, in chain order, with their sizes.
fn stripe_files(dir: &std::path::Path) -> Vec<(std::path::PathBuf, u64)> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("read_dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let len = std::fs::metadata(&p).expect("metadata").len();
            (p, len)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Damage a real segment chain at an arbitrary byte offset — either
    /// truncate the file there (a crash mid-`write`) or flip the byte
    /// (bit rot) — and reopen. Recovery must yield exactly the longest
    /// valid frame prefix: a prefix of what was appended, cut at a frame
    /// boundary, never a partial frame, never a panic; and a second open
    /// must see the same thing.
    #[test]
    fn file_segments_recover_longest_valid_prefix_under_damage(
        seed in 0u64..1_000,
        row_lens in proptest::collection::vec(1usize..6, 1..24),
        rotate_sel in 0usize..3,
        damage_at in 0u64..8_192,
        truncate in any::<bool>(),
    ) {
        // Small sizes force rotation mid-stream; the large one never rotates.
        let rotate_bytes = [256u64, 1024, 1 << 20][rotate_sel];
        let dir = std::env::temp_dir().join(format!(
            "tpd-wal-prop-{}-{seed}-{}", std::process::id(), row_lens.len()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let (wal, recovered) = FileWal::open(&dir, 1, rotate_bytes).expect("open");
        prop_assert!(recovered.records.is_empty());
        let mut appended = Vec::new();
        for (t, &row_len) in row_lens.iter().enumerate() {
            let txn = t as u64 + 1;
            for record in [
                LogRecord::Update { txn, table: 0, key: t as u64, after: vec![t as i64; row_len] },
                LogRecord::Commit { txn },
            ] {
                let rec = StampedRecord { end: Lsn(0), record };
                wal.append_auto(0, &rec);
                appended.push(rec);
            }
        }
        wal.sync(0);
        drop(wal);

        // Damage one byte position across the whole chain.
        let files = stripe_files(&dir);
        let total: u64 = files.iter().map(|(_, len)| len).sum();
        prop_assert!(total > 0);
        let mut offset = damage_at % total;
        for (path, len) in &files {
            if offset < *len {
                if truncate {
                    let f = std::fs::OpenOptions::new().write(true).open(path).expect("open");
                    f.set_len(offset).expect("truncate");
                } else {
                    use std::io::{Read, Seek, SeekFrom, Write};
                    let mut f = std::fs::OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(path)
                        .expect("open");
                    f.seek(SeekFrom::Start(offset)).expect("seek");
                    let mut b = [0u8; 1];
                    f.read_exact(&mut b).expect("read");
                    f.seek(SeekFrom::Start(offset)).expect("seek");
                    f.write_all(&[b[0] ^ 0x40]).expect("flip");
                }
                break;
            }
            offset -= len;
        }

        // Reopen: the longest valid prefix, cut at a frame boundary.
        let (wal, recovered) = FileWal::open(&dir, 1, rotate_bytes).expect("reopen");
        drop(wal);
        let n = recovered.records.len();
        prop_assert!(n <= appended.len());
        prop_assert_eq!(&recovered.records[..], &appended[..n],
            "recovered records must be a byte-exact prefix of what was appended");
        prop_assert!(
            recovered.records.iter().all(|r| !matches!(r.record, LogRecord::Torn { .. })),
            "no partial frame may surface as a record"
        );
        // Segments are pure frame concatenations, so single-byte damage
        // anywhere kills at least the frame it landed in.
        prop_assert!(n < appended.len(), "damage went undetected");

        // The first open truncated the damage away; a second open agrees.
        let (_, again) = FileWal::open(&dir, 1, rotate_bytes).expect("third open");
        prop_assert_eq!(&again.records[..], &recovered.records[..],
            "recovery must be idempotent across opens");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn lazy_write_loses_nothing_after_shutdown() {
    let log = RedoLog::new(
        RedoLogConfig {
            policy: FlushPolicy::LazyWrite,
            flush_interval: Duration::from_millis(2),
            ..Default::default()
        },
        disk(6, 1000),
        None,
    );
    let mut last = tpd_wal::Lsn(0);
    for _ in 0..50 {
        last = log.append(64);
        log.commit(last);
    }
    log.shutdown();
    let log2 = log.clone();
    drop(log); // joins the flusher, which flushes once more
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while log2.flushed_lsn() < last {
        assert!(std::time::Instant::now() < deadline, "final flush missing");
        std::thread::sleep(Duration::from_millis(2));
    }
}
