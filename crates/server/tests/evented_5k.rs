//! The connection-scaling acceptance test: thousands of concurrent
//! connections against the evented server, driven by the multiplexed
//! client ([`tpd_server::run_mux`]) from a single thread.
//!
//! This is the scenario the thread-per-connection baseline falls off a
//! cliff on — one OS thread per connection means thousands of stacks
//! and a scheduler meltdown. The reactor serves the same population on
//! one poller thread plus a bounded worker pool.
//!
//! Scale is gated: `TPD_E2E=1` runs the full 5,000-connection
//! acceptance matrix (CI's server-e2e job); the default tier-1 run uses
//! 512 connections so `cargo test` stays fast everywhere.

use std::time::Duration;

use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, Policy};
use tpd_server::{spawn, AdmissionConfig, Conn, MuxConfig, ServerConfig, ServerMode, WireTatp};
use tpd_workloads::Tatp;

fn full_scale() -> bool {
    std::env::var("TPD_E2E").as_deref() == Ok("1")
}

#[test]
fn evented_sustains_thousands_of_connections() {
    // 5k conns needs ~10k fds (client + server end per conn, one
    // process). Raise the soft limit toward the hard limit; if the
    // environment cannot give us headroom, drop to the reduced scale
    // rather than drowning in EMFILE.
    let want_conns: usize = if full_scale() { 5_000 } else { 512 };
    let needed_fds = (want_conns as u64) * 2 + 256;
    let got = tpd_common::poll::raise_nofile_limit(needed_fds).unwrap_or(0);
    let conns = if got >= needed_fds {
        want_conns
    } else {
        eprintln!("nofile limit {got} < {needed_fds}; reducing scale");
        512.min(want_conns)
    };

    let quick = DiskConfig {
        service: ServiceTime::Fixed(5_000),
        ns_per_byte: 0.0,
        seed: 0x5CA1E,
    };
    let engine = Engine::new(EngineConfig {
        data_disk: quick.clone(),
        log_disks: vec![quick],
        lock_timeout: Some(Duration::from_secs(5)),
        seed: 0x5CA1E,
        ..EngineConfig::mysql(Policy::Fcfs)
    });
    let subscribers = 4096;
    let tatp = Tatp::install(&engine, subscribers);
    let ids = tatp.table_ids();
    let wire = WireTatp {
        subscriber: ids[0].0,
        access_info: ids[1].0,
        special_facility: ids[2].0,
        call_forwarding: ids[3].0,
        subscribers,
    };
    let handle = spawn(
        engine.clone(),
        ServerConfig {
            mode: ServerMode::Evented,
            admission: AdmissionConfig {
                slots: 64,
                queue_cap: 256,
                queue_deadline: Duration::from_millis(250),
                ..AdmissionConfig::default()
            },
            max_conns: conns + 16,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let report = tpd_server::run_mux(
        handle.local_addr(),
        &wire,
        &MuxConfig {
            conns,
            txns_per_conn: 3,
            seed: 0xD15C0,
            deadline: Some(Duration::from_secs(if full_scale() { 600 } else { 120 })),
            ..MuxConfig::default()
        },
    )
    .expect("mux run");

    let (p50, p99, p999) = report.latency_percentiles();
    eprintln!(
        "conns={conns} issued={} commits={} aborts={} sheds={} \
         p50={:.2}ms p99={:.2}ms p999={:.2}ms",
        report.issued,
        report.commits,
        report.aborts,
        report.sheds,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6,
    );

    // Zero protocol errors across the whole population, and every
    // connection completed its script.
    assert_eq!(report.protocol_errors, 0, "no protocol errors");
    assert_eq!(report.completed_conns, conns as u64, "every conn finished");
    assert_eq!(
        report.commits + report.aborts + report.sheds,
        report.issued,
        "every attempt reached exactly one terminal outcome"
    );
    assert_eq!(
        report.issued,
        (conns as u64) * 3,
        "every conn issued its whole script"
    );
    assert!(report.commits > 0, "the population made real progress");

    // Tally reconciliation: the server's own counters agree with the
    // client-side ledger.
    let mut probe = Conn::connect(handle.local_addr()).expect("probe conn");
    let m = probe.metrics().expect("metrics");
    assert_eq!(m.counter("txn.commits"), report.commits);
    assert_eq!(m.counter("txn.aborts"), report.aborts);
    assert_eq!(m.counter("server.shed_total"), report.sheds);

    // After the drain: no leaked locks, and every admission permit is
    // back (in_flight would show up as lock-queue leftovers or a
    // nonzero open-conn gauge once the probe closes).
    assert_eq!(engine.locks().outstanding(), (0, 0), "no leaked locks");
    assert_eq!(engine.active_snapshots(), 0, "no leaked snapshot pins");
    assert_eq!(handle.protocol_errors(), 0, "server saw clean framing");

    // Permit accounting: with the population gone, a BEGIN must admit
    // instantly — impossible if any of the 5k conns leaked its permit
    // (slots would still be occupied).
    for _ in 0..4 {
        assert!(matches!(
            probe.begin(0).expect("begin"),
            tpd_server::BeginOutcome::Started { .. }
        ));
        probe.commit().expect("commit");
    }
}
