//! Admission-order properties for the defer-hot scheduler.
//!
//! Three contracts, checked over generated hot/cool arrival streams:
//!
//! 1. **Degenerate equivalence** — with `defer_hot` off the hot flags
//!    are inert and the grant stream is exactly FIFO arrival order.
//! 2. **Bounded bypass** — with `defer_hot` on, every waiter is granted
//!    within `defer_max` bypasses of its FIFO position: waiter `i` is
//!    granted no later than position `i + defer_max`, cool waiters no
//!    later than position `i`, and nobody is lost.
//! 3. **Starvation freedom under adversarial arrivals** — a hot waiter
//!    facing an endless stream of fresh cool arrivals (the worst case
//!    for deferral) is still granted after exactly `defer_max`
//!    bypasses.
//!
//! Method: one slot, one long-lived permit holder, async waiters whose
//! grant callbacks ship the permit over a channel so the test controls
//! exactly when each grant's slot frees — the drain order *is* the
//! scheduler's decision sequence, with no thread races.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use tpd_metrics::{Counter, Histogram};
use tpd_server::{AdmissionConfig, AdmissionController, AdmitAttempt, Permit};

struct Rig {
    controller: Arc<AdmissionController>,
    deferred_total: Arc<Counter>,
}

fn rig(defer_hot: bool, defer_max: u32) -> Rig {
    let deferred_total = Arc::new(Counter::new());
    let controller = AdmissionController::new(
        AdmissionConfig {
            slots: 1,
            queue_cap: 1024,
            queue_deadline: Duration::from_secs(30),
            defer_hot,
            defer_max,
        },
        Arc::new(Counter::new()),
        Arc::new(Histogram::new()),
        deferred_total.clone(),
    );
    Rig {
        controller,
        deferred_total,
    }
}

/// Enqueue an async waiter that reports `(id, permit)` on grant.
fn park(
    controller: &Arc<AdmissionController>,
    tx: &mpsc::Sender<(usize, Permit)>,
    id: usize,
    hot: bool,
) {
    let tx = tx.clone();
    match controller.try_admit_or_enqueue_hot(
        Box::new(move |permit| tx.send((id, permit)).expect("test receiver alive")),
        hot,
    ) {
        AdmitAttempt::Queued(_) => {}
        other => panic!("expected waiter {id} to queue, got {other:?}"),
    }
}

/// Park one waiter per hot flag behind a held slot, release the slot,
/// and return the ids in grant order (each grant's permit is dropped
/// only after it is recorded, so grants are strictly sequential).
fn grant_order(r: &Rig, hots: &[bool]) -> Vec<usize> {
    let holder = match r.controller.try_admit_or_enqueue_hot(Box::new(|_| ()), false) {
        AdmitAttempt::Admitted(p) => p,
        other => panic!("empty controller must admit, got {other:?}"),
    };
    let (tx, rx) = mpsc::channel();
    for (id, &hot) in hots.iter().enumerate() {
        park(&r.controller, &tx, id, hot);
    }
    drop(tx);
    drop(holder);
    let mut order = Vec::with_capacity(hots.len());
    while let Ok((id, permit)) = rx.recv() {
        order.push(id);
        drop(permit);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `defer_hot = false` ⇒ hot flags are inert: the grant stream is
    /// the arrival stream, whatever the flags say, and nothing defers.
    #[test]
    fn defer_disabled_grant_stream_is_fifo(
        hots in proptest::collection::vec(any::<bool>(), 1..24)
    ) {
        let r = rig(false, 4);
        let order = grant_order(&r, &hots);
        let fifo: Vec<usize> = (0..hots.len()).collect();
        prop_assert_eq!(order, fifo);
        prop_assert_eq!(r.deferred_total.get(), 0);
        prop_assert_eq!(r.controller.in_flight(), 0);
        prop_assert_eq!(r.controller.queued(), 0);
    }

    /// `defer_hot = true` ⇒ every waiter is granted, within the aging
    /// bound: waiter `i` no later than grant position `i + defer_max`
    /// (cool waiters no later than `i`), and the deferral counter never
    /// exceeds `defer_max` charges per hot waiter.
    #[test]
    fn defer_enabled_grants_everyone_within_aging_bound(
        hots in proptest::collection::vec(any::<bool>(), 1..24),
        defer_max in 1u32..4
    ) {
        let r = rig(true, defer_max);
        let order = grant_order(&r, &hots);

        let mut sorted = order.clone();
        sorted.sort_unstable();
        let everyone: Vec<usize> = (0..hots.len()).collect();
        prop_assert_eq!(&sorted, &everyone, "every waiter must be granted");

        for (pos, &id) in order.iter().enumerate() {
            let bound = if hots[id] { id + defer_max as usize } else { id };
            prop_assert!(
                pos <= bound,
                "waiter {} (hot={}) granted at position {} > bound {}",
                id, hots[id], pos, bound
            );
        }

        let hot_count = hots.iter().filter(|&&h| h).count() as u64;
        prop_assert!(r.deferred_total.get() <= hot_count * u64::from(defer_max));
        prop_assert_eq!(r.controller.in_flight(), 0);
        prop_assert_eq!(r.controller.queued(), 0);
    }
}

/// Adversarial arrival stream: after every grant a *fresh cool* waiter
/// arrives behind the queue — the configuration most favourable to
/// starving a hot head. The hot waiter is bypassed exactly `defer_max`
/// times, then ages out of deferral and wins the next slot even though
/// cool work keeps arriving.
#[test]
fn adversarial_cool_stream_cannot_starve_a_hot_waiter() {
    const DEFER_MAX: u32 = 3;
    let r = rig(true, DEFER_MAX);
    let holder = match r.controller.try_admit_or_enqueue_hot(Box::new(|_| ()), false) {
        AdmitAttempt::Admitted(p) => p,
        other => panic!("empty controller must admit, got {other:?}"),
    };
    let (tx, rx) = mpsc::channel();
    // id 0: the hot victim; ids 1.. : the adversarial cool stream.
    park(&r.controller, &tx, 0, true);
    let mut next_id = 1;
    park(&r.controller, &tx, next_id, false);
    drop(holder);

    let mut order = Vec::new();
    while order.last() != Some(&0) {
        let (id, permit) = rx.recv_timeout(Duration::from_secs(10)).expect("no starvation");
        order.push(id);
        // The adversary refills the queue before the slot frees.
        next_id += 1;
        park(&r.controller, &tx, next_id, false);
        drop(permit);
    }
    // Exactly defer_max cool grants jumped the hot waiter, then aging
    // put it back at its FIFO (head) position.
    assert_eq!(order, vec![1, 2, 3, 0]);
    assert_eq!(r.deferred_total.get(), u64::from(DEFER_MAX));

    // Drain the remaining adversaries so the controller winds down idle.
    drop(tx);
    while let Ok((_, permit)) = rx.recv() {
        drop(permit);
    }
    assert_eq!(r.controller.in_flight(), 0);
    assert_eq!(r.controller.queued(), 0);
}
