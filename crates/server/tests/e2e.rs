//! End-to-end protocol tests: a live server on an ephemeral port, real
//! TCP clients, mixed TATP traffic, and a single-threaded replay oracle
//! over the committed transactions.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use tpd_common::dist::ServiceTime;
use tpd_common::DiskConfig;
use tpd_engine::{Engine, EngineConfig, Policy, Session, TableId};
use tpd_server::wire_tatp::{txn_type, SF_PER_SUB};
use tpd_server::{
    spawn, AdmissionConfig, BeginOutcome, Conn, ErrorCode, Frame, Outcome, ServerConfig,
    ServerHandle, ServerMode, WireSpec, WireTatp,
};
use tpd_workloads::Tatp;

fn quick_engine(seed: u64) -> Arc<Engine> {
    let quick = DiskConfig {
        service: ServiceTime::Fixed(10_000),
        ns_per_byte: 0.0,
        seed,
    };
    Engine::new(EngineConfig {
        data_disk: quick.clone(),
        log_disks: vec![quick],
        lock_timeout: Some(Duration::from_secs(5)),
        seed,
        ..EngineConfig::mysql(Policy::Fcfs)
    })
}

fn start_server_cfg(
    subscribers: u64,
    config: ServerConfig,
) -> (Arc<Engine>, Tatp, ServerHandle, WireTatp) {
    let engine = quick_engine(0xE2E);
    let tatp = Tatp::install(&engine, subscribers);
    let ids = tatp.table_ids();
    let wire = WireTatp {
        subscriber: ids[0].0,
        access_info: ids[1].0,
        special_facility: ids[2].0,
        call_forwarding: ids[3].0,
        subscribers,
    };
    let handle = spawn(engine.clone(), config).expect("bind ephemeral port");
    (engine, tatp, handle, wire)
}

fn start_server_in(
    mode: ServerMode,
    subscribers: u64,
    admission: AdmissionConfig,
) -> (Arc<Engine>, Tatp, ServerHandle, WireTatp) {
    start_server_cfg(
        subscribers,
        ServerConfig {
            mode,
            admission,
            ..ServerConfig::default()
        },
    )
}

/// Replay one wire spec directly against an engine — the oracle's
/// single-threaded equivalent of `WireTatp::execute`.
fn apply_direct(session: &mut Session, w: &WireTatp, spec: &WireSpec) {
    use txn_type::*;
    let t = |id: u32| TableId(id);
    let (s, sf, val) = (spec.s, spec.sf, spec.val);
    session.begin(spec.ty).expect("oracle begin");
    match spec.ty {
        GET_SUBSCRIBER => {
            session.read(t(w.subscriber), s).expect("oracle read");
        }
        GET_NEW_DEST => {
            session
                .read(t(w.special_facility), s * SF_PER_SUB + sf)
                .expect("oracle read");
            session
                .read(t(w.call_forwarding), s * SF_PER_SUB + sf)
                .expect("oracle read");
        }
        GET_ACCESS => {
            session
                .read(t(w.access_info), s * 4 + (sf % 4))
                .expect("oracle read");
        }
        UPD_SUBSCRIBER => {
            let mut row = session.read(t(w.subscriber), s).expect("oracle read");
            row[1] ^= 1;
            session
                .update_row(t(w.subscriber), s, row)
                .expect("oracle update");
            let mut fac = session
                .read(t(w.special_facility), s * SF_PER_SUB + sf)
                .expect("oracle read");
            fac[2] = val;
            session
                .update_row(t(w.special_facility), s * SF_PER_SUB + sf, fac)
                .expect("oracle update");
        }
        UPD_LOCATION => {
            let mut row = session.read(t(w.subscriber), s).expect("oracle read");
            row[3] = val;
            session
                .update_row(t(w.subscriber), s, row)
                .expect("oracle update");
        }
        INS_CALL_FWD => {
            session.read(t(w.subscriber), s).expect("oracle read");
            session
                .read(t(w.special_facility), s * SF_PER_SUB + sf)
                .expect("oracle read");
            session
                .insert(t(w.call_forwarding), vec![s as i64, sf as i64, 1])
                .expect("oracle insert");
        }
        DEL_CALL_FWD => {
            let mut row = session
                .read(t(w.call_forwarding), s * SF_PER_SUB + sf)
                .expect("oracle read");
            row[2] = 0;
            session
                .update_row(t(w.call_forwarding), s * SF_PER_SUB + sf, row)
                .expect("oracle update");
        }
        other => panic!("unknown type {other}"),
    }
    session.commit().expect("oracle commit");
}

fn table_rows(engine: &Arc<Engine>, id: u32) -> BTreeMap<u64, Vec<i64>> {
    let t = engine.catalog().table(TableId(id));
    t.range_keys(0, u64::MAX, usize::MAX)
        .into_iter()
        .map(|k| (k, t.get(k).expect("row")))
        .collect()
}

/// The tentpole e2e: N concurrent client threads of mixed TATP over the
/// wire, every request accounted for (commit + abort + shed == issued),
/// engine row state equal to a single-threaded replay of the committed
/// transactions, and a METRICS frame whose commit counters match the
/// client-side tally.
#[test]
fn concurrent_tatp_matches_replay_oracle_and_metrics() {
    concurrent_tatp_matches_replay_oracle_and_metrics_in(ServerMode::Threads);
}

#[test]
fn concurrent_tatp_matches_replay_oracle_and_metrics_evented() {
    concurrent_tatp_matches_replay_oracle_and_metrics_in(ServerMode::Evented);
}

fn concurrent_tatp_matches_replay_oracle_and_metrics_in(mode: ServerMode) {
    const THREADS: u64 = 6;
    const SLICE: u64 = 8;
    const TXNS_PER_THREAD: u64 = 30;
    // One extra subscriber shared by every thread as a write hotspot; its
    // updates use a constant value, so any serialization order yields the
    // same final state (toggle parity + constant overwrite) and the
    // oracle may replay commits in any order.
    const HOT: u64 = THREADS * SLICE;
    const HOT_VAL: i64 = 7;

    let (engine, _tatp, handle, wire) = start_server_in(
        mode,
        HOT + 1,
        AdmissionConfig {
            slots: 3,
            queue_cap: 4,
            queue_deadline: Duration::from_millis(200),
            ..AdmissionConfig::default()
        },
    );
    let addr = handle.local_addr();

    struct ThreadReport {
        committed: Vec<WireSpec>,
        commits: u64,
        aborts: u64,
        sheds: u64,
        issued: u64,
    }

    let mut workers = Vec::new();
    for ti in 0..THREADS {
        workers.push(std::thread::spawn(move || {
            let mut conn = Conn::connect(addr).expect("connect");
            let mut rng = SmallRng::seed_from_u64(0xC11E47 + ti);
            let mut report = ThreadReport {
                committed: Vec::new(),
                commits: 0,
                aborts: 0,
                sheds: 0,
                issued: 0,
            };
            for i in 0..TXNS_PER_THREAD {
                // Mostly traffic on this thread's private slice (an exact
                // oracle needs per-row total order; disjoint slices give
                // it for free), plus a shared hotspot every 5th txn.
                let spec = if i % 5 == 4 {
                    WireSpec {
                        ty: txn_type::UPD_SUBSCRIBER,
                        s: HOT,
                        sf: ti % SF_PER_SUB,
                        val: HOT_VAL,
                    }
                } else {
                    let mut spec = wire.sample(&mut rng);
                    spec.s = ti * SLICE + (spec.s % SLICE);
                    spec
                };
                let mut attempts = 0;
                loop {
                    attempts += 1;
                    assert!(attempts < 1000, "txn never terminated: {spec:?}");
                    report.issued += 1;
                    match wire.execute(&mut conn, &spec).expect("no protocol errors") {
                        Outcome::Committed => {
                            report.commits += 1;
                            report.committed.push(spec);
                            break;
                        }
                        Outcome::Aborted => report.aborts += 1,
                        Outcome::Shed => {
                            report.sheds += 1;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                }
            }
            report
        }));
    }
    let reports: Vec<ThreadReport> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // Every issued request reached exactly one terminal outcome.
    let commits: u64 = reports.iter().map(|r| r.commits).sum();
    let aborts: u64 = reports.iter().map(|r| r.aborts).sum();
    let sheds: u64 = reports.iter().map(|r| r.sheds).sum();
    let issued: u64 = reports.iter().map(|r| r.issued).sum();
    assert_eq!(commits + aborts + sheds, issued);
    assert_eq!(commits, THREADS * TXNS_PER_THREAD);

    // The METRICS frame agrees with the client-side tally.
    let mut conn = Conn::connect(addr).expect("metrics conn");
    let metrics = conn.metrics().expect("metrics frame parses");
    assert_eq!(metrics.counter("txn.commits"), commits);
    assert_eq!(metrics.counter("txn.aborts"), aborts);
    assert_eq!(metrics.counter("server.shed_total"), sheds);
    let wait = metrics
        .histograms
        .get("server.admission_wait_ns")
        .expect("admission wait histogram present");
    assert!(
        wait.count >= commits,
        "every admitted BEGIN recorded a wait sample"
    );

    // The scalable-WAL instruments ride the same frame.
    let reserve = metrics
        .histograms
        .get("wal.reserve_ns")
        .expect("wal.reserve_ns histogram present");
    assert!(reserve.count > 0, "appends recorded reservation timings");
    let batch = metrics
        .histograms
        .get("wal.group_commit_batch")
        .expect("wal.group_commit_batch histogram present");
    assert!(batch.count > 0, "eager commits recorded fsync batch sizes");
    assert!(
        batch.sum >= batch.count,
        "each fsync acknowledged at least one commit"
    );

    // No lock-queue entry or snapshot pin outlived its transaction.
    assert_eq!(engine.locks().outstanding(), (0, 0), "no leaked locks");
    assert_eq!(engine.active_snapshots(), 0, "no leaked snapshot pins");
    assert_eq!(handle.protocol_errors(), 0);

    // Single-threaded replay oracle: same install, every committed spec
    // replayed thread-by-thread (disjoint slices make cross-thread order
    // irrelevant; the hotspot is order-independent by construction).
    let oracle_engine = quick_engine(0x0AC1E);
    let _oracle_tatp = Tatp::install(&oracle_engine, HOT + 1);
    let mut oracle = Session::new(oracle_engine.clone());
    for r in &reports {
        for spec in &r.committed {
            apply_direct(&mut oracle, &wire, spec);
        }
    }
    for id in [wire.subscriber, wire.access_info, wire.special_facility] {
        assert_eq!(
            table_rows(&engine, id),
            table_rows(&oracle_engine, id),
            "table {id} diverged from the oracle"
        );
    }
    // call_forwarding receives inserts whose keys depend on arrival
    // order; compare it as a multiset of rows.
    let mut served: Vec<Vec<i64>> = table_rows(&engine, wire.call_forwarding)
        .into_values()
        .collect();
    let mut replayed: Vec<Vec<i64>> = table_rows(&oracle_engine, wire.call_forwarding)
        .into_values()
        .collect();
    served.sort();
    replayed.sort();
    assert_eq!(served, replayed, "call_forwarding multiset diverged");
}

/// A killed client (socket dropped mid-transaction) must roll back and
/// leak no lock-queue entries — the regression test for the `Txn`
/// drop/abort audit.
#[test]
fn killed_client_releases_locks_and_rolls_back() {
    killed_client_releases_locks_and_rolls_back_in(ServerMode::Threads);
}

#[test]
fn killed_client_releases_locks_and_rolls_back_evented() {
    killed_client_releases_locks_and_rolls_back_in(ServerMode::Evented);
}

fn killed_client_releases_locks_and_rolls_back_in(mode: ServerMode) {
    let (engine, _tatp, handle, wire) = start_server_in(mode, 16, AdmissionConfig::default());
    let addr = handle.local_addr();

    let mut victim = Conn::connect(addr).expect("connect");
    assert!(matches!(
        victim.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    // Take an X lock and leave the transaction open.
    let mut row = victim.read(wire.subscriber, 3).expect("read");
    row[3] = 999;
    victim.update(wire.subscriber, 3, row).expect("update");
    let aborts_before = engine.stats().aborts;
    assert_ne!(engine.locks().outstanding(), (0, 0), "locks held");

    // Kill the client without COMMIT/ABORT.
    drop(victim);

    // The server must notice, roll back, and drain the lock table.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.locks().outstanding() != (0, 0) {
        assert!(
            Instant::now() < deadline,
            "lock-queue entries leaked: {}",
            { engine.locks().debug_dump() }
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(engine.stats().aborts, aborts_before + 1, "rolled back");

    // The row is untouched and immediately writable by a new client.
    let mut fresh = Conn::connect(addr).expect("connect");
    assert!(matches!(
        fresh.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    let row = fresh.read(wire.subscriber, 3).expect("read");
    assert_eq!(row[3], 0, "dead client's update rolled back");
    fresh
        .update(wire.subscriber, 3, vec![3, 1, 0, 5])
        .expect("row lock free for the next client");
    fresh.commit().expect("commit");
    assert_eq!(engine.locks().outstanding(), (0, 0));
    assert_eq!(engine.active_snapshots(), 0, "no leaked snapshot pins");
}

/// Admission behaviour observed over the wire: with one slot and no
/// queue, a second concurrent BEGIN is shed with `RETRY_LATER`, and the
/// slot frees on COMMIT.
#[test]
fn admission_sheds_over_the_wire() {
    admission_sheds_over_the_wire_in(ServerMode::Threads);
}

#[test]
fn admission_sheds_over_the_wire_evented() {
    admission_sheds_over_the_wire_in(ServerMode::Evented);
}

fn admission_sheds_over_the_wire_in(mode: ServerMode) {
    let (_engine, _tatp, handle, _wire) = start_server_in(
        mode,
        8,
        AdmissionConfig {
            slots: 1,
            queue_cap: 0,
            queue_deadline: Duration::from_millis(100),
            ..AdmissionConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut a = Conn::connect(addr).expect("connect a");
    let mut b = Conn::connect(addr).expect("connect b");
    assert!(matches!(
        a.begin(0).expect("begin a"),
        BeginOutcome::Started { .. }
    ));
    assert_eq!(b.begin(0).expect("begin b"), BeginOutcome::Shed);
    a.commit().expect("commit a");
    assert!(matches!(
        b.begin(0).expect("begin b after slot freed"),
        BeginOutcome::Started { .. }
    ));
    b.commit().expect("commit b");

    let metrics = a.metrics().expect("metrics");
    assert_eq!(metrics.counter("server.shed_total"), 1);
}

/// The malformed / truncated / oversized corpus, fired at a live server:
/// each entry must produce a typed error (or a clean close) — never a
/// crash — and the server must keep serving well-formed clients.
#[test]
fn malformed_corpus_never_kills_the_server() {
    malformed_corpus_never_kills_the_server_in(ServerMode::Threads);
}

#[test]
fn malformed_corpus_never_kills_the_server_evented() {
    malformed_corpus_never_kills_the_server_in(ServerMode::Evented);
}

fn malformed_corpus_never_kills_the_server_in(mode: ServerMode) {
    let (_engine, _tatp, handle, _wire) = start_server_in(mode, 8, AdmissionConfig::default());
    let addr = handle.local_addr();

    // (name, raw bytes, server may keep the connection)
    let corpus: Vec<(&str, Vec<u8>, bool)> = vec![
        ("zero length prefix", 0u32.to_le_bytes().to_vec(), false),
        (
            "one-byte payload",
            {
                let mut b = 1u32.to_le_bytes().to_vec();
                b.push(1);
                b
            },
            false,
        ),
        (
            "oversized length prefix",
            (u32::MAX).to_le_bytes().to_vec(),
            false,
        ),
        (
            "over-cap length prefix",
            ((1u32 << 20) + 1).to_le_bytes().to_vec(),
            false,
        ),
        (
            "bad version",
            {
                let mut b = 2u32.to_le_bytes().to_vec();
                b.extend_from_slice(&[99, 0x05]); // version 99, COMMIT
                b
            },
            true,
        ),
        (
            "unknown kind",
            {
                let mut b = 2u32.to_le_bytes().to_vec();
                b.extend_from_slice(&[1, 0x55]);
                b
            },
            true,
        ),
        (
            "trailing bytes after commit",
            {
                let mut b = 3u32.to_le_bytes().to_vec();
                b.extend_from_slice(&[1, 0x05, 0xAB]);
                b
            },
            true,
        ),
        (
            "truncated read body",
            {
                let mut b = 4u32.to_le_bytes().to_vec();
                b.extend_from_slice(&[1, 0x02, 0x01, 0x00]); // READ with 2 body bytes
                b
            },
            true,
        ),
        (
            "insert with lying row count",
            {
                // INSERT, table 0, claims 1000 columns, carries none.
                let mut body = vec![1u8, 0x04];
                body.extend_from_slice(&0u32.to_le_bytes());
                body.extend_from_slice(&1000u32.to_le_bytes());
                let mut b = (body.len() as u32).to_le_bytes().to_vec();
                b.extend_from_slice(&body);
                b
            },
            true,
        ),
        (
            "insert with absurd row count",
            {
                let mut body = vec![1u8, 0x04];
                body.extend_from_slice(&0u32.to_le_bytes());
                body.extend_from_slice(&u32::MAX.to_le_bytes());
                let mut b = (body.len() as u32).to_le_bytes().to_vec();
                b.extend_from_slice(&body);
                b
            },
            true,
        ),
        (
            "reply frame as request",
            {
                let mut b = Vec::new();
                Frame::Committed.encode(&mut b);
                b
            },
            true,
        ),
    ];

    for (name, bytes, conn_survives) in corpus {
        let mut conn = Conn::connect(addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        conn.send_raw(&bytes)
            .unwrap_or_else(|e| panic!("{name}: send: {e}"));
        match conn.recv() {
            Ok(Frame::Error { code, .. }) => {
                assert_eq!(code, ErrorCode::Malformed, "{name}: typed error code");
            }
            Ok(other) => panic!("{name}: unexpected reply {other:?}"),
            // A torn stream may only close; that is acceptable for
            // length-layer poison but not for recoverable errors.
            Err(_) if !conn_survives => {}
            Err(e) => panic!("{name}: expected typed error, got {e}"),
        }
        if conn_survives {
            // The same connection still serves well-formed traffic.
            let m = conn
                .metrics()
                .unwrap_or_else(|e| panic!("{name}: follow-up: {e}"));
            assert!(m.counters.contains_key("txn.commits"), "{name}: snapshot");
        }
    }

    // A partial frame followed by a hangup must not wedge anything.
    {
        let mut conn = Conn::connect(addr).expect("connect");
        conn.send_raw(&[10, 0, 0]).expect("partial length prefix");
        drop(conn);
    }

    // The server still accepts and serves full transactions.
    let mut conn = Conn::connect(addr).expect("connect after corpus");
    assert!(matches!(
        conn.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    conn.read(0, 1).expect("read");
    conn.commit().expect("commit");
    assert!(handle.protocol_errors() > 0, "corpus was counted");
}

/// Versioned header: today's decoder must reject a frame from a
/// hypothetical future protocol version with a typed error, keeping the
/// path open for version negotiation instead of silent misparses.
#[test]
fn future_version_is_rejected_not_misparsed() {
    future_version_is_rejected_not_misparsed_in(ServerMode::Threads);
}

#[test]
fn future_version_is_rejected_not_misparsed_evented() {
    future_version_is_rejected_not_misparsed_in(ServerMode::Evented);
}

fn future_version_is_rejected_not_misparsed_in(mode: ServerMode) {
    let (_engine, _tatp, handle, _wire) = start_server_in(mode, 8, AdmissionConfig::default());
    let mut conn = Conn::connect(handle.local_addr()).expect("connect");
    let mut bytes = 2u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[tpd_server::VERSION + 1, 0x05]);
    conn.send_raw(&bytes).expect("send");
    match conn.recv() {
        Ok(Frame::Error { code, detail }) => {
            assert_eq!(code, ErrorCode::Malformed);
            assert!(
                detail.contains("version"),
                "detail names the version: {detail}"
            );
        }
        other => panic!("expected version error, got {other:?}"),
    }
}

/// Disconnect matrix: a client that vanishes mid-transaction — cleanly
/// (FIN) or abruptly (RST) — must have its transaction rolled back, its
/// locks drained, and its admission permit returned, in both server
/// modes. With one slot and no queue, the next client's BEGIN only
/// succeeds if the permit actually came back.
fn disconnect_matrix(mode: ServerMode, rst: bool) {
    let (engine, _tatp, handle, wire) = start_server_in(
        mode,
        8,
        AdmissionConfig {
            slots: 1,
            queue_cap: 0,
            queue_deadline: Duration::from_millis(100),
            ..AdmissionConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut victim = Conn::connect(addr).expect("connect victim");
    assert!(matches!(
        victim.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    let mut row = victim.read(wire.subscriber, 2).expect("read");
    row[3] = 4242;
    victim.update(wire.subscriber, 2, row).expect("update");
    assert_ne!(engine.locks().outstanding(), (0, 0), "X lock held");
    if rst {
        victim.arm_rst().expect("arm RST");
    }
    drop(victim);

    // Locks drain once the server notices the disconnect.
    let deadline = Instant::now() + Duration::from_secs(5);
    while engine.locks().outstanding() != (0, 0) {
        assert!(
            Instant::now() < deadline,
            "{mode}/{}: lock-queue entries leaked: {}",
            if rst { "rst" } else { "fin" },
            engine.locks().debug_dump()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The single admission slot must come back: a fresh BEGIN admits.
    let mut fresh = Conn::connect(addr).expect("connect fresh");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match fresh.begin(0).expect("begin fresh") {
            BeginOutcome::Started { .. } => break,
            BeginOutcome::Shed => {
                assert!(Instant::now() < deadline, "admission permit leaked");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    let row = fresh.read(wire.subscriber, 2).expect("read");
    assert_eq!(row[3], 0, "dead client's update rolled back");
    fresh.commit().expect("commit");
    assert_eq!(engine.locks().outstanding(), (0, 0));
    assert_eq!(engine.active_snapshots(), 0, "no leaked snapshot pins");
}

#[test]
fn fin_disconnect_releases_locks_and_permit_threads() {
    disconnect_matrix(ServerMode::Threads, false);
}

#[test]
fn fin_disconnect_releases_locks_and_permit_evented() {
    disconnect_matrix(ServerMode::Evented, false);
}

#[test]
fn rst_disconnect_releases_locks_and_permit_threads() {
    disconnect_matrix(ServerMode::Threads, true);
}

#[test]
fn rst_disconnect_releases_locks_and_permit_evented() {
    disconnect_matrix(ServerMode::Evented, true);
}

/// The admission-permit leak fix: a slow-loris client (connects, opens a
/// transaction, then sends nothing — no FIN, no RST) must hit the idle
/// deadline, get force-disconnected with its session rolled back, and
/// return its permit. Before the fix such a client pinned a slot (and
/// its row locks) forever.
fn slow_loris_reaped(mode: ServerMode) {
    let (engine, _tatp, handle, wire) = start_server_cfg(
        8,
        ServerConfig {
            mode,
            admission: AdmissionConfig {
                slots: 1,
                queue_cap: 0,
                queue_deadline: Duration::from_millis(100),
                ..AdmissionConfig::default()
            },
            read_timeout: Some(Duration::from_millis(300)),
            ..ServerConfig::default()
        },
    );
    let addr = handle.local_addr();

    let mut loris = Conn::connect(addr).expect("connect loris");
    assert!(matches!(
        loris.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    let mut row = loris.read(wire.subscriber, 5).expect("read");
    row[3] = 777;
    loris.update(wire.subscriber, 5, row).expect("update");
    assert_ne!(engine.locks().outstanding(), (0, 0), "X lock held");
    // ... and then silence. The socket stays open; only the idle
    // deadline can reclaim the slot.

    let mut fresh = Conn::connect(addr).expect("connect fresh");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match fresh.begin(0).expect("begin fresh") {
            BeginOutcome::Started { .. } => break,
            BeginOutcome::Shed => {
                assert!(
                    Instant::now() < deadline,
                    "idle deadline never reclaimed the permit"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    assert_eq!(
        engine.locks().outstanding(),
        (0, 0),
        "loris locks drained with the permit"
    );
    let row = fresh.read(wire.subscriber, 5).expect("read");
    assert_eq!(row[3], 0, "loris update rolled back");
    fresh.commit().expect("commit");
    assert_eq!(engine.active_snapshots(), 0, "no leaked snapshot pins");

    if mode == ServerMode::Evented {
        let m = fresh.metrics().expect("metrics");
        assert!(
            m.counter("server.idle_reaped_total") >= 1,
            "reap was counted"
        );
    }
    drop(loris); // kept alive until here: the server reaped it, not us
}

#[test]
fn slow_loris_is_reaped_and_permit_returned_threads() {
    slow_loris_reaped(ServerMode::Threads);
}

#[test]
fn slow_loris_is_reaped_and_permit_returned_evented() {
    slow_loris_reaped(ServerMode::Evented);
}

/// Accept-loop hardening: transient accept failures (EMFILE et al.,
/// injected via the test hook) must be counted and backed off — never
/// tear down the listener. The client connected below can only have been
/// accepted after the fault budget drained, so serving it proves the
/// loop survived every synthetic failure.
fn accept_errors_survived(mode: ServerMode) {
    let budget = Arc::new(std::sync::atomic::AtomicU64::new(5));
    let (_engine, _tatp, handle, wire) = start_server_cfg(
        8,
        ServerConfig {
            mode,
            inject_accept_errors: Some(budget.clone()),
            ..ServerConfig::default()
        },
    );

    let mut conn = Conn::connect(handle.local_addr()).expect("connect");
    assert!(matches!(
        conn.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    conn.read(wire.subscriber, 1).expect("read");
    conn.commit().expect("commit");

    assert_eq!(budget.load(std::sync::atomic::Ordering::SeqCst), 0);
    assert_eq!(handle.accept_errors(), 5, "every fault counted");
    let m = conn.metrics().expect("metrics");
    assert_eq!(m.counter("server.accept_err_total"), 5);
}

#[test]
fn accept_errors_back_off_and_keep_serving_threads() {
    accept_errors_survived(ServerMode::Threads);
}

#[test]
fn accept_errors_back_off_and_keep_serving_evented() {
    accept_errors_survived(ServerMode::Evented);
}

/// The reactor's own instruments ride the METRICS frame: wakeup count,
/// open-connection gauge, and the write-stall histogram.
#[test]
fn reactor_instruments_are_exposed() {
    let (_engine, _tatp, handle, wire) =
        start_server_in(ServerMode::Evented, 8, AdmissionConfig::default());
    let mut conn = Conn::connect(handle.local_addr()).expect("connect");
    assert!(matches!(
        conn.begin(0).expect("begin"),
        BeginOutcome::Started { .. }
    ));
    conn.read(wire.subscriber, 1).expect("read");
    conn.commit().expect("commit");

    let m = conn.metrics().expect("metrics");
    assert!(m.counter("server.reactor_wakeups") >= 1, "reactor woke up");
    assert!(m.counter("server.conns_open") >= 1, "this conn is open");
    assert!(
        m.histograms.contains_key("server.write_stall_ns"),
        "write-stall histogram registered"
    );
}
