//! Codec property tests: encode→decode is the identity for every frame
//! kind, and the decoder is total (typed errors, never a panic) over
//! mutated and random byte soup.

use proptest::prelude::*;
use std::collections::BTreeMap;

use tpd_server::protocol::{Frame, HistSummary, MAX_FRAME_LEN};
use tpd_server::ErrorCode;

/// Build a frame of kind index `k` (0..15) from raw entropy.
fn frame_from(k: u8, a: u64, b: u64, row: Vec<i64>, s: String, names: Vec<u64>) -> Frame {
    match k {
        0 => Frame::Begin { ty: a as u8 },
        1 => Frame::Read {
            table: a as u32,
            key: b,
        },
        2 => Frame::Update {
            table: a as u32,
            key: b,
            row,
        },
        3 => Frame::Insert {
            table: a as u32,
            row,
        },
        4 => Frame::Commit,
        5 => Frame::Abort,
        6 => Frame::Metrics,
        7 => Frame::TxnBegun { txn_id: a },
        8 => Frame::Row { row },
        9 => Frame::Updated,
        10 => Frame::Inserted { key: a },
        11 => Frame::Committed,
        12 => Frame::Aborted,
        13 => {
            let mut counters = BTreeMap::new();
            let mut histograms = BTreeMap::new();
            for (i, v) in names.iter().enumerate() {
                let name = format!("fam.{i}.{s}");
                if i % 2 == 0 {
                    counters.insert(name, *v);
                } else {
                    histograms.insert(
                        name,
                        HistSummary {
                            count: *v,
                            sum: v.wrapping_mul(3),
                            p50: a,
                            p95: b,
                            p99: a ^ b,
                            p999: v.wrapping_add(a),
                        },
                    );
                }
            }
            Frame::MetricsSnapshot {
                counters,
                histograms,
            }
        }
        _ => Frame::Error {
            code: match a % 7 {
                0 => ErrorCode::RetryLater,
                1 => ErrorCode::Deadlock,
                2 => ErrorCode::LockTimeout,
                3 => ErrorCode::RowNotFound,
                4 => ErrorCode::TxnState,
                5 => ErrorCode::Malformed,
                _ => ErrorCode::Shutdown,
            },
            detail: s,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(
        k in 0u8..15,
        ab in (any::<u64>(), any::<u64>()),
        row in collection::vec(any::<i64>(), 0..32),
        s in ".*",
        names in collection::vec(any::<u64>(), 0..6),
    ) {
        // Strings cross the wire as UTF-8 with a byte-length prefix;
        // the generator already emits ASCII, keep it that way.
        let frame = frame_from(k, ab.0, ab.1, row, s, names);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
        prop_assert_eq!(len, buf.len() - 4, "length prefix covers payload");
        prop_assert!(len <= MAX_FRAME_LEN);
        let decoded = Frame::decode(&buf[4..]);
        prop_assert_eq!(decoded, Ok(frame));
    }

    #[test]
    fn decoder_is_total_on_truncations(
        k in 0u8..15,
        ab in (any::<u64>(), any::<u64>()),
        row in collection::vec(any::<i64>(), 0..8),
        cut in 0usize..64,
    ) {
        // Every proper prefix of a valid payload must decode to a typed
        // error (or, for nested variable-length fields, a shorter valid
        // frame is impossible because lengths are explicit).
        let frame = frame_from(k, ab.0, ab.1, row, "x".to_string(), vec![1, 2]);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let payload = &buf[4..];
        if !payload.is_empty() {
            let cut = cut % payload.len();
            // Must not panic; prefix decode may legitimately succeed only
            // if it equals the whole payload (cut == len is excluded).
            let _ = Frame::decode(&payload[..cut]);
        }
    }

    #[test]
    fn decoder_is_total_on_mutations(
        k in 0u8..15,
        ab in (any::<u64>(), any::<u64>()),
        row in collection::vec(any::<i64>(), 0..8),
        flips in collection::vec((0usize..4096, any::<u8>()), 1..8),
    ) {
        let frame = frame_from(k, ab.0, ab.1, row, "y".to_string(), vec![3]);
        let mut buf = Vec::new();
        frame.encode(&mut buf);
        let mut payload = buf[4..].to_vec();
        for (pos, byte) in flips {
            let idx = pos % payload.len();
            payload[idx] ^= byte;
        }
        // Typed result either way; never a panic, never an allocation
        // blow-up (bounded fields).
        let _ = Frame::decode(&payload);
    }

    #[test]
    fn decoder_is_total_on_random_bytes(
        soup in collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = Frame::decode(&soup);
    }
}
